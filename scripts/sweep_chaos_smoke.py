"""CI smoke test: crash a sweep mid-run, resume it, demand bit-identity.

Three legs, all compared array-by-array (``result_arrays`` /
``diff_arrays``) against one uninterrupted ``jobs=1`` reference sweep
of the same spec:

0. **shm leg** -- the grid runs with ``jobs=2`` over zero-copy
   shared-memory substrates (:mod:`repro.sweep.shm`) while a chaos
   directive kills a worker mid-run; the healed run must be
   bit-identical, the respawned pool must have reattached the
   parent's segments, ``/dev/shm`` must be empty afterwards, and a
   ``REPRO_SWEEP_SHM=0`` control must run the same grid without
   exporting anything.

1. **kill leg** -- a six-cell grid runs with ``jobs=2`` and a chaos
   directive (``REPRO_SWEEP_CHAOS=kill:cell4``) that makes the worker
   about to simulate cell 4 die like an OOM-kill.  With
   ``max_retries=0`` the cell is quarantined, every other cell lands
   in the checkpoint, and the run completes with one flagged summary
   instead of aborting.  A second run with the chaos cleared resumes
   from the checkpoint, restores the healthy cells without re-running
   them, simulates only the quarantined one, and must match the
   reference bit for bit.

2. **interrupt leg** -- the same grid runs via the ``anycast-ddos
   sweep`` CLI in a subprocess with a ``stall:cell5`` chaos directive;
   once the checkpoint shows progress, the process gets SIGINT, must
   drain gracefully (exit code 130, resume hint on stderr), and a
   ``--resume`` invocation must complete the sweep bit-identically.

Exit status 0 = every check passed.

Usage::

    PYTHONPATH=src python scripts/sweep_chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

from repro import nov2015_config
from repro.scenario import diff_arrays, result_arrays
from repro.sweep import (
    CHAOS_ENV,
    SweepSpec,
    leaked_segments,
    load_checkpoint,
    run_sweep,
)

#: Small but multi-chunk grid: 3 points x 2 seeds = 6 cells.
AXES = {"baseline_days": [1, 2, 3]}
REPLICATES = 2

#: Kill leg: the victim is late in the grid, so earlier cells are
#: already durable in the checkpoint when the worker dies.
KILL_CELL = 4

#: Interrupt leg: one cell stalls long enough for the parent to be
#: SIGINT'd while the sweep is demonstrably mid-flight.
STALL_CELL = 5
STALL_SECONDS = 120


def base_config():
    # Must match what `anycast-ddos sweep --seed 7 --stubs 50 --vps 30
    # --letters A,K` builds, or the interrupt leg's in-process spec
    # would digest differently from the CLI subprocess's.
    return nov2015_config(
        seed=7, n_stubs=50, n_vps=30, letters=("A", "K")
    )


def build_spec() -> SweepSpec:
    return SweepSpec.grid(
        base_config(), AXES, replicates=REPLICATES
    )


def check_identical(result, reference, label: str) -> None:
    assert not result.failures, (
        f"{label}: unexpected quarantined cells {result.failures}"
    )
    for index, (got, want) in enumerate(
        zip(result.results, reference.results)
    ):
        mismatches = diff_arrays(result_arrays(got), result_arrays(want))
        assert not mismatches, (
            f"{label}: cell {index} diverged from the uninterrupted "
            f"reference: {mismatches}"
        )
    print(f"ok: {label} is bit-identical to the reference")


def shm_leg(spec, reference) -> None:
    assert leaked_segments() == [], (
        f"/dev/shm not clean before the shm leg: {leaked_segments()}"
    )
    os.environ[CHAOS_ENV] = f"kill:cell{KILL_CELL}"
    try:
        healed = run_sweep(
            spec, jobs=2, chunk_size=2, shm=True,
            max_retries=2, backoff_base_s=0.0,
        )
    finally:
        del os.environ[CHAOS_ENV]
    check_identical(healed, reference, "shm leg (healed)")
    # 2 replicate seeds -> 2 substrate signatures, each shared by 3
    # cells -> both exported; the respawned pool reattached them.
    assert healed.shm_segments == 2, (
        f"expected 2 exported segments, got {healed.shm_segments}"
    )
    assert healed.routing_stats.get("shm/cell", 0) == spec.n_cells, (
        f"not every cell was served from shared memory: "
        f"{healed.routing_stats}"
    )
    assert "shm/fallback" not in healed.routing_stats, (
        f"unexpected attach fallbacks: {healed.routing_stats}"
    )
    assert leaked_segments() == [], (
        f"segments leaked after the shm leg: {leaked_segments()}"
    )
    print(
        "ok: shm leg healed a worker kill over shared segments "
        "with no /dev/shm residue"
    )

    os.environ["REPRO_SWEEP_SHM"] = "0"
    try:
        control = run_sweep(spec, jobs=2, chunk_size=2)
    finally:
        del os.environ["REPRO_SWEEP_SHM"]
    check_identical(control, reference, "shm leg (disabled control)")
    assert control.shm_segments == 0, (
        "REPRO_SWEEP_SHM=0 still exported segments"
    )
    print("ok: REPRO_SWEEP_SHM=0 control matched on the pickled path")


def kill_leg(spec, reference, workdir: pathlib.Path) -> None:
    ckpt = workdir / "kill.ckpt"
    os.environ[CHAOS_ENV] = f"kill:cell{KILL_CELL}"
    try:
        crashed = run_sweep(
            spec, jobs=2, chunk_size=2, checkpoint=ckpt,
            max_retries=0, backoff_base_s=0.0,
        )
    finally:
        del os.environ[CHAOS_ENV]
    assert KILL_CELL in crashed.failures, (
        f"expected cell {KILL_CELL} quarantined, got "
        f"{crashed.failures}"
    )
    flagged = crashed.summaries[spec.cell(KILL_CELL).point_index]
    assert any(
        f.metric == "cell-failed" for f in flagged.quality.flags
    ), "quarantined cell did not flag its summary"
    durable = load_checkpoint(ckpt, spec).results
    assert durable, "no cells were checkpointed before the crash"
    print(
        f"ok: kill leg quarantined cell {KILL_CELL}, "
        f"{len(durable)} cell(s) durable in the checkpoint"
    )

    resumed = run_sweep(spec, jobs=2, chunk_size=2, checkpoint=ckpt)
    assert resumed.restored, "resume re-ran cells it should restore"
    check_identical(resumed, reference, "kill-leg resume")


def interrupt_leg(spec, reference, workdir: pathlib.Path) -> None:
    ckpt = workdir / "sigint.ckpt"
    argv = [
        sys.executable, "-m", "repro.cli", "sweep",
        "--seed", "7", "--stubs", "50", "--vps", "30",
        "--letters", "A,K",
        "--axis", "baseline_days=1,2,3",
        "--replicates", str(REPLICATES),
        "--jobs", "2", "--checkpoint", str(ckpt),
        "--out", str(workdir / "unused.json"),
    ]
    env = dict(os.environ)
    env[CHAOS_ENV] = f"stall:cell{STALL_CELL}:{STALL_SECONDS}"
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.Popen(
        argv, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    # Wait until some cells are durable (the stalled cell guarantees
    # the sweep is still mid-flight), then interrupt the parent.
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        try:
            if load_checkpoint(ckpt, spec).results:
                break
        except Exception:
            pass
        if proc.poll() is not None:
            break
        time.sleep(0.2)
    assert proc.poll() is None, (
        "sweep CLI exited before it could be interrupted:\n"
        + proc.communicate()[1]
    )
    proc.send_signal(signal.SIGINT)
    try:
        _, stderr = proc.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("interrupted sweep CLI failed to drain")
    assert proc.returncode == 130, (
        f"expected exit 130 after SIGINT, got {proc.returncode}:\n"
        f"{stderr}"
    )
    assert "--resume" in stderr, (
        f"no resume hint on stderr after SIGINT:\n{stderr}"
    )
    print(
        "ok: interrupt leg drained with exit 130 and a resume hint"
    )

    out = workdir / "resumed.json"
    done = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "sweep",
            "--resume", str(ckpt), "--jobs", "2",
            "--out", str(out), "--quiet",
        ],
        env={k: v for k, v in env.items() if k != CHAOS_ENV},
        capture_output=True, text=True, timeout=600,
    )
    assert done.returncode == 0, (
        f"resume run failed ({done.returncode}):\n{done.stderr}"
    )
    payload = json.loads(out.read_text())
    assert not payload["failed_cells"], (
        f"resume run quarantined cells: {payload['failed_cells']}"
    )
    # The CLI only surfaces summaries; full per-cell bit-identity
    # comes from re-loading the finished checkpoint in-process.
    finished = load_checkpoint(ckpt, spec).results
    assert sorted(finished) == list(range(spec.n_cells)), (
        "resume left cells missing from the checkpoint"
    )
    for index, want in enumerate(reference.results):
        mismatches = diff_arrays(
            result_arrays(finished[index]), result_arrays(want)
        )
        assert not mismatches, (
            f"interrupt-leg cell {index} diverged: {mismatches}"
        )
    print("ok: interrupt-leg resume is bit-identical to the reference")


def main() -> int:
    spec = build_spec()
    print(
        f"reference sweep: {spec.n_cells} cells, jobs=1, no faults",
        file=sys.stderr,
    )
    reference = run_sweep(spec, jobs=1)
    shm_leg(spec, reference)
    with tempfile.TemporaryDirectory(prefix="sweep-chaos-") as tmp:
        workdir = pathlib.Path(tmp)
        kill_leg(spec, reference, workdir)
        interrupt_leg(spec, reference, workdir)
    print("sweep chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
