#!/usr/bin/env python
"""Wrapper for the repo's determinism/correctness linter.

Equivalent to ``PYTHONPATH=src python -m repro.devtools.lint`` but
runnable from anywhere without setting the path by hand::

    python scripts/lint_repro.py            # lints src and tests
    python scripts/lint_repro.py --format json src
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.devtools.lint import main  # noqa: E402

if __name__ == "__main__":
    os.chdir(REPO_ROOT)
    sys.exit(main())
