"""Regenerate the golden-equivalence fixture for the engine fast path.

The fixture pins the *exact* simulated outputs (truth series, Atlas
matrices, RSSAC counters, BGPmon route changes) of a small scenario.
``tests/scenario/test_golden_equivalence.py`` compares a fresh
``simulate()`` run against it bit for bit, proving that performance
work on the engine does not change simulated behaviour.

Only regenerate the fixture when a PR *intentionally* changes
simulation semantics; never to paper over an unexplained diff.

Usage::

    PYTHONPATH=src python scripts/make_golden.py
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.scenario.config import ScenarioConfig
from repro.scenario.engine import simulate

FIXTURE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests" / "scenario" / "golden" / "golden_engine.npz"
)

#: The pinned scenario: small but covering every policy class --
#: A (30-minute probing cadence), F (withdraw), H (withdraw +
#: standby activation), K (partial withdrawal + absorb).
GOLDEN_CONFIG = dict(
    seed=7,
    n_stubs=100,
    n_vps=60,
    letters=("A", "F", "H", "K"),
    include_nl=True,
)


def golden_config() -> ScenarioConfig:
    return ScenarioConfig(**GOLDEN_CONFIG)


def result_arrays(result) -> dict[str, np.ndarray]:
    """Flatten a ScenarioResult into named arrays for exact comparison."""
    out: dict[str, np.ndarray] = {}
    for letter in result.letters:
        t = result.truth[letter]
        p = f"{letter}/truth"
        out[f"{p}/offered_qps"] = t.offered_qps
        out[f"{p}/loss"] = t.loss
        out[f"{p}/delay_ms"] = t.delay_ms
        out[f"{p}/announced"] = t.announced
        out[f"{p}/legit_offered_qps"] = t.legit_offered_qps
        out[f"{p}/legit_served_qps"] = t.legit_served_qps
        out[f"{p}/epoch_of_bin"] = t.epoch_of_bin
        out[f"{p}/stub_site_by_epoch"] = t.stub_site_by_epoch

        obs = result.atlas.letters[letter]
        out[f"{letter}/atlas/site_idx"] = obs.site_idx
        out[f"{letter}/atlas/rtt_ms"] = obs.rtt_ms
        out[f"{letter}/atlas/server"] = obs.server

        out[f"{letter}/route_changes"] = result.route_changes[letter]

        reports = result.rssac[letter]
        out[f"{letter}/rssac/queries"] = np.array(
            [r.queries for r in reports]
        )
        out[f"{letter}/rssac/responses"] = np.array(
            [r.responses for r in reports]
        )
        out[f"{letter}/rssac/unique_sources"] = np.array(
            [r.unique_sources for r in reports]
        )
        out[f"{letter}/rssac/query_hist"] = np.array(
            [
                (i, edge, count)
                for i, r in enumerate(reports)
                for edge, count in sorted(r.query_size_hist.items())
            ],
            dtype=np.float64,
        ).reshape(-1, 3)
        out[f"{letter}/rssac/response_hist"] = np.array(
            [
                (i, edge, count)
                for i, r in enumerate(reports)
                for edge, count in sorted(r.response_size_hist.items())
            ],
            dtype=np.float64,
        ).reshape(-1, 3)
    if result.nl is not None:
        out["nl/served"] = result.nl.served
    return out


def main() -> None:
    result = simulate(golden_config())
    arrays = result_arrays(result)
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(FIXTURE, **arrays)
    print(f"wrote {FIXTURE} ({len(arrays)} arrays)")


if __name__ == "__main__":
    main()
