"""Regenerate the golden-equivalence fixture for the engine fast path.

The fixture pins the *exact* simulated outputs (truth series, Atlas
matrices, RSSAC counters, BGPmon route changes) of a small scenario.
``tests/scenario/test_golden_equivalence.py`` compares a fresh
``simulate()`` run against it bit for bit, proving that performance
work on the engine does not change simulated behaviour.

Only regenerate the fixture when a PR *intentionally* changes
simulation semantics; never to paper over an unexplained diff.

Usage::

    PYTHONPATH=src python scripts/make_golden.py
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.scenario.arrays import result_arrays
from repro.scenario.config import ScenarioConfig
from repro.scenario.engine import simulate

__all__ = ["FIXTURE", "GOLDEN_CONFIG", "golden_config", "result_arrays"]

FIXTURE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests" / "scenario" / "golden" / "golden_engine.npz"
)

#: The pinned scenario: small but covering every policy class --
#: A (30-minute probing cadence), F (withdraw), H (withdraw +
#: standby activation), K (partial withdrawal + absorb).
GOLDEN_CONFIG = dict(
    seed=7,
    n_stubs=100,
    n_vps=60,
    letters=("A", "F", "H", "K"),
    include_nl=True,
)


def golden_config() -> ScenarioConfig:
    return ScenarioConfig(**GOLDEN_CONFIG)


def main() -> None:
    result = simulate(golden_config())
    arrays = result_arrays(result)
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(FIXTURE, **arrays)
    print(f"wrote {FIXTURE} ({len(arrays)} arrays)")


if __name__ == "__main__":
    main()
