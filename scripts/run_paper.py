"""Reproduce every figure and table of the paper with one command.

Runs the paper's three scenarios -- the canonical Nov 30 / Dec 1 2015
event, the §3.3.1 quiet control, and the 2016-06-25 follow-up -- as
one deterministic sweep (``repro.sweep``), optionally across several
worker processes, then renders Figures 3-15 and Tables 2-3 from the
results.  Output is bit-identical for any ``--jobs`` value.

Usage::

    PYTHONPATH=src python scripts/run_paper.py --jobs 4
    PYTHONPATH=src python scripts/run_paper.py --jobs 4 \
        --out-dir paper_out --stubs 600 --vps 1500
    PYTHONPATH=src python scripts/run_paper.py --jobs 4 \
        --checkpoint paper_out/sweep.ckpt     # crash-safe
    PYTHONPATH=src python scripts/run_paper.py --jobs 4 \
        --resume paper_out/sweep.ckpt         # after an interrupt

Writes one text file per figure/table plus ``summaries.json`` (the
sweep's per-cell metric summaries, replicates folded) into
``--out-dir``.  With ``--checkpoint``, completed cells are fsynced to
an append-only log as they finish; Ctrl-C exits with code 130 and the
run resumes bit-identically with ``--resume`` (cells are pure
functions of their configs, so re-running only the missing ones
cannot change any output).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

from repro import ScenarioConfig
from repro.core import (
    behaviour_census,
    clean_dataset,
    collateral_figure,
    collateral_sites,
    correlation_table,
    event_size_table,
    flip_destinations,
    flips_figure,
    nl_figure,
    observed_sites_table,
    reachability_figure,
    route_change_series,
    rtt_figure,
    rtt_significantly_changed,
    server_reachability,
    server_rtt_series,
    site_minmax_table,
    site_rtt_figure,
    site_timeseries,
    sites_vs_resilience,
    vp_timelines,
    worst_responsiveness,
)
from repro.rootdns import (
    ATTACKED_LETTERS,
    LETTERS_SPEC,
    RSSAC_REPORTING_LETTERS,
)
from repro.scenario.presets import (
    JUNE2016_BOTNET,
    JUNE2016_EVENTS,
    JUNE2016_WINDOW_START,
    QUIET_WINDOW_START,
)
from repro.sweep import (
    SweepInterrupted,
    SweepSpec,
    run_sweep,
    summaries_records,
)
from repro.util import EVENT_1

#: Sweep points, in cell order: the canonical event scenario first,
#: then the quiet control, then the June 2016 follow-up.
NOV2015, QUIET, JUNE2016 = 0, 1, 2

#: Fig. 10's event-1 interval in hours since window start.
EVENT1_HOURS = (6.8, 9.5)


def paper_spec(args: argparse.Namespace) -> SweepSpec:
    base = ScenarioConfig(
        seed=args.seed, n_stubs=args.stubs, n_vps=args.vps
    )
    points = [
        {},  # NOV2015: the canonical scenario
        {   # QUIET: same topology/VPs, two normal days
            "events": (),
            "window_start": QUIET_WINDOW_START,
        },
        {   # JUNE2016: different event, same pipeline (§2.3)
            "events": JUNE2016_EVENTS,
            "window_start": JUNE2016_WINDOW_START,
            "botnet": JUNE2016_BOTNET,
            "letters": ("B", "H", "K", "L"),
            "include_nl": False,
        },
    ]
    return SweepSpec.from_points(
        base,
        points,
        replicates=args.replicates if args.replicates > 1 else None,
    )


def render_all(result, quiet_result, june_result) -> dict[str, str]:
    """Every figure/table as rendered text, keyed by output name."""
    cleaned, _ = clean_dataset(result.atlas)
    quiet_cleaned, _ = clean_dataset(quiet_result.atlas)
    june_cleaned, _ = clean_dataset(june_result.atlas)
    site_counts = {L: s.n_sites for L, s in LETTERS_SPEC.items()}
    rssac_reports = {
        L: result.rssac[L] for L in RSSAC_REPORTING_LETTERS
    }
    changed = [
        L for L in sorted(cleaned.letters)
        if rtt_significantly_changed(cleaned, L)
    ]
    timelines = vp_timelines(
        cleaned, "K", ["LHR", "FRA"], EVENT_1, 300,
        np.random.default_rng(0),
    )
    census = behaviour_census(timelines)
    out: dict[str, str] = {}
    out["table2_observed_sites"] = observed_sites_table(cleaned).render()
    out["fig3_reachability"] = "\n\n".join(
        (
            reachability_figure(cleaned).render(),
            correlation_table(
                sites_vs_resilience(cleaned, site_counts)
            ).render(),
        )
    )
    out["fig4_letter_rtt"] = "\n".join(
        (
            rtt_figure(cleaned, changed).render(),
            f"letters with significant RTT change: {changed}",
        )
    )
    out["fig5_site_minmax"] = "\n\n".join(
        site_minmax_table(cleaned, letter).render()
        for letter in ("E", "K")
    )
    out["fig6_site_timeseries"] = "\n\n".join(
        site_timeseries(cleaned, letter, True).render()
        for letter in ("E", "K")
    )
    out["fig7_k_site_rtt"] = site_rtt_figure(
        cleaned, "K", ["AMS", "NRT", "LHR", "FRA"]
    ).render()
    out["fig8_flips"] = flips_figure(cleaned).render()
    out["fig9_route_changes"] = route_change_series(
        result.route_changes, result.grid
    ).render()
    out["fig10_flip_destinations"] = "\n".join(
        str(dest)
        for dest in flip_destinations(cleaned, "K", "LHR", EVENT1_HOURS)
    )
    out["fig11_behaviour_census"] = "\n".join(
        f"{behaviour}: {count}"
        for behaviour, count in census.most_common()
    )
    out["fig12_server_reachability"] = "\n\n".join(
        server_reachability(cleaned, "K", site).render()
        for site in ("FRA", "NRT")
    )
    out["fig13_server_rtt"] = "\n\n".join(
        server_rtt_series(cleaned, "K", site).render()
        for site in ("FRA", "NRT")
    )
    out["fig14_collateral"] = "\n".join(
        [collateral_figure(cleaned, "D").render()]
        + [
            f"{site.site}: median {site.median_vps:.0f} VPs"
            for site in collateral_sites(cleaned, "D")
        ]
    )
    out["fig15_nl"] = nl_figure(result.nl).render()
    out["table3_event_size"] = "\n\n".join(
        event_size_table(
            rssac_reports, ATTACKED_LETTERS, date, len(ATTACKED_LETTERS)
        ).render()
        for date in ("2015-11-30", "2015-12-01")
    )
    out["quiet_control"] = "\n\n".join(
        site_minmax_table(quiet_cleaned, letter).render()
        for letter in ("E", "K")
    )
    out["june2016"] = "\n".join(
        f"{letter} worst/median responsiveness: "
        f"{worst_responsiveness(june_cleaned, letter):.2f}"
        for letter in june_result.letters
    )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--stubs", type=int, default=600)
    parser.add_argument("--vps", type=int, default=1500)
    parser.add_argument("--replicates", type=int, default=1,
                        help="replicate seeds folded into summaries.json")
    parser.add_argument("--out-dir", default="paper_out",
                        help="directory for rendered figures/tables")
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="crash-safe log of completed cells; a killed run "
             "re-invoked with the same flags resumes from it",
    )
    parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from an existing checkpoint (config flags must "
             "match the original run)",
    )
    args = parser.parse_args(argv)

    checkpoint = args.resume or args.checkpoint
    if args.resume and not pathlib.Path(args.resume).exists():
        print(f"error: no checkpoint at {args.resume}", file=sys.stderr)
        return 2

    spec = paper_spec(args)
    print(
        f"running {spec.n_cells} scenario cell(s) with "
        f"--jobs {args.jobs} ...",
        file=sys.stderr,
    )
    try:
        sweep = run_sweep(
            spec,
            jobs=args.jobs,
            progress=lambda event: print(str(event), file=sys.stderr),
            checkpoint=checkpoint,
        )
    except (SweepInterrupted, KeyboardInterrupt) as exc:
        # Completed cells are already durable in the checkpoint (each
        # is fsynced as it finishes); nothing renders from a partial
        # sweep, so report what survived and exit like a SIGINT'd
        # shell command would.
        print(f"\ninterrupted: {exc}", file=sys.stderr)
        if checkpoint is not None:
            print(
                "completed cells are saved; resume with: "
                f"{sys.executable} {sys.argv[0]} --resume {checkpoint} "
                f"--jobs {args.jobs}",
                file=sys.stderr,
            )
        else:
            print(
                "no --checkpoint was given, so completed cells were "
                "not saved; re-run with --checkpoint PATH to make "
                "interrupted runs resumable",
                file=sys.stderr,
            )
        return 130

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    summary_path = out_dir / "summaries.json"
    summary_path.write_text(
        json.dumps(
            {
                "jobs": args.jobs,
                "n_cells": spec.n_cells,
                "points": ["nov2015", "quiet", "june2016"],
                "summaries": summaries_records(sweep.summaries),
                "failed_cells": {
                    str(i): reason
                    for i, reason in sorted(sweep.failures.items())
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    # Figures render from the first replicate of each scenario point
    # (cell index == point index, seeds being outermost).  A
    # quarantined cell (crashed past its retry budget) leaves a None
    # slot: summaries.json above carries the failure flags, but the
    # figures need the full per-cell results.
    needed = {NOV2015: "nov2015", QUIET: "quiet", JUNE2016: "june2016"}
    missing = [
        f"{name} (cell {index}): {sweep.failures[index]}"
        for index, name in needed.items()
        if sweep.results[index] is None
    ]
    if missing:
        for line in missing:
            print(f"error: scenario failed: {line}", file=sys.stderr)
        print(
            f"wrote {summary_path} (with failure flags); cannot "
            "render figures from a partial sweep -- fix the failure "
            "and re-run (with --resume to keep healthy cells)",
            file=sys.stderr,
        )
        return 1
    rendered = render_all(
        sweep.results[NOV2015],
        sweep.results[QUIET],
        sweep.results[JUNE2016],
    )

    for name, text in rendered.items():
        (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(
        f"wrote {len(rendered)} figure/table file(s) and "
        f"{summary_path} to {out_dir}/ "
        f"({sweep.elapsed_s:.1f}s, jobs={args.jobs})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
