"""Determinism gate: a faulted scenario must reproduce bit for bit.

Runs one scenario carrying every fault type twice with the same seed
and compares every simulated output array (truth, Atlas, RSSAC,
BGPmon, .nl) plus the quality report exactly.  Any diff means the
fault machinery leaked nondeterminism into the engine -- the CI
determinism job fails on it.

``--save-arrays PATH`` additionally writes every result array of the
first run to an ``.npz``; ``--check-against PATH`` diffs the current
run against such a file array by array.  The CI determinism job uses
the pair to prove the segment-batched engine (REPRO_ENGINE_BATCH=1,
the default) and the per-bin reference loop (REPRO_ENGINE_BATCH=0)
produce bit-identical faulted scenarios.

Usage::

    PYTHONPATH=src python scripts/check_determinism.py \
        [--save-arrays PATH] [--check-against PATH]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.scenario.arrays import diff_arrays, result_arrays
from repro.scenario.engine import ScenarioResult
from repro.faults import (
    BgpSessionReset,
    ControllerOutage,
    FaultPlan,
    PeerChurn,
    RssacOutage,
    SiteFailure,
    VpDropout,
)
from repro.scenario.config import ScenarioConfig
from repro.scenario.engine import simulate
from repro.util.timegrid import EVENT_WINDOW_START as W

HOUR = 3600

#: One of everything: the plan exercises every fault resolver and both
#: randomized scopes (VP dropout, peer churn).
FAULT_PLAN = FaultPlan(
    specs=(
        SiteFailure(
            letter="K", site="AMS", start=W + 12 * HOUR,
            duration_s=2 * HOUR, severity=1.0,
        ),
        BgpSessionReset(
            letter="K", site="LHR", start=W + 15 * HOUR, duration_s=1800,
        ),
        VpDropout(start=W + 18 * HOUR, duration_s=HOUR, fraction=0.5),
        ControllerOutage(start=W + 21 * HOUR, duration_s=1800),
        PeerChurn(start=W + 6 * HOUR, duration_s=2 * HOUR, fraction=0.5),
        RssacOutage(letter="K", start=W, duration_s=86_400),
    )
)


def faulted_config() -> ScenarioConfig:
    return ScenarioConfig(
        seed=7,
        n_stubs=100,
        n_vps=60,
        letters=("A", "F", "H", "K"),
        include_nl=True,
        faults=FAULT_PLAN,
    )


def compare_runs(first: ScenarioResult, second: ScenarioResult) -> list[str]:
    """Names of every output that differs between two runs.

    Empty means the runs are bit-identical across all simulated
    arrays (truth, Atlas, RSSAC, BGPmon, .nl), the quality report,
    and the published RSSAC report dates.  This is the diff logic the
    CI determinism gate and ``tests/test_check_determinism.py`` share.
    """
    a, b = result_arrays(first), result_arrays(second)
    mismatches = []
    for name in sorted(a):
        if name not in b or not np.array_equal(
            a[name], b[name], equal_nan=True
        ):
            mismatches.append(name)
    mismatches.extend(sorted(set(b) - set(a)))
    if first.quality != second.quality:
        mismatches.append("quality")
    if [r.date for L in first.letters for r in first.rssac[L]] != [
        r.date for L in second.letters for r in second.rssac[L]
    ]:
        mismatches.append("rssac dates")
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--save-arrays",
        type=Path,
        default=None,
        help="write the faulted run's result arrays to this .npz",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        default=None,
        help="diff the faulted run against a saved .npz, array by array",
    )
    args = parser.parse_args(argv)

    first = simulate(faulted_config())
    second = simulate(faulted_config())
    mismatches = compare_runs(first, second)

    if mismatches:
        print("DETERMINISM FAILURE: outputs differ between identical runs")
        for name in mismatches:
            print(f"  - {name}")
        return 1

    arrays = result_arrays(first)
    print(
        f"determinism ok: {len(arrays)} arrays "
        f"bit-identical across two faulted runs "
        f"({len(first.quality)} quality flag(s))"
    )

    if args.save_arrays is not None:
        np.savez_compressed(args.save_arrays, **arrays)
        print(f"saved {len(arrays)} arrays to {args.save_arrays}")

    if args.check_against is not None:
        with np.load(args.check_against) as saved:
            cross = diff_arrays(
                {name: saved[name] for name in saved.files}, arrays
            )
        if cross:
            print(
                f"CROSS-RUN FAILURE: outputs differ from "
                f"{args.check_against}"
            )
            for name in cross:
                print(f"  - {name}")
            return 1
        print(
            f"cross-run ok: {len(arrays)} arrays bit-identical to "
            f"{args.check_against}"
        )

    return 0


if __name__ == "__main__":
    sys.exit(main())
