#!/usr/bin/env python3
"""Generate the paper-vs-measured numbers recorded in EXPERIMENTS.md.

Runs the reference benchmark scenario (seed 42, 600 stubs, 1500 VPs)
and prints the headline quantity for every table and figure.
"""

import numpy as np

from repro import ScenarioConfig, simulate
from repro.core import (
    behaviour_census,
    clean_dataset,
    collateral_sites,
    count_flips,
    event_size_table,
    flip_destinations,
    letter_rtt_series,
    letters_with_event_churn,
    nl_event_minimum,
    observed_site_count,
    answering_servers_per_bin,
    site_minmax,
    site_rtt_series,
    sites_vs_resilience,
    vp_timelines,
    worst_responsiveness,
)
from repro.rootdns import ATTACKED_LETTERS, LETTERS_SPEC, RSSAC_REPORTING_LETTERS
from repro.util import EVENT_1


def main() -> None:
    result = simulate(ScenarioConfig(seed=42, n_stubs=600, n_vps=1500))
    ds, cleaning = clean_dataset(result.atlas)

    print("== cleaning ==")
    print(f"kept {cleaning.kept_fraction:.3f}; hijacked {cleaning.n_hijacked}"
          f" of {int(result.atlas.vps.hijacked.sum())} true")

    print("== table2 ==")
    for L in sorted(ds.letters):
        print(f"{L} deployed {len(ds.letter(L).site_codes)} observed "
              f"{observed_site_count(ds, L)}")

    print("== table3 ==")
    rssac = {L: result.rssac[L] for L in RSSAC_REPORTING_LETTERS}
    for date in ("2015-11-30", "2015-12-01"):
        table = event_size_table(rssac, ATTACKED_LETTERS, date,
                                 len(ATTACKED_LETTERS))
        print(table.render())

    print("== fig3 ==")
    for L in sorted(ds.letters):
        print(f"{L} worst {worst_responsiveness(ds, L):.2f}")
    fit = sites_vs_resilience(
        ds, {L: s.n_sites for L, s in LETTERS_SPEC.items()}
    )
    print(f"R2 {fit.r_squared:.2f}")

    print("== fig4 ==")
    for L in "BGHK":
        s = letter_rtt_series(ds, L)
        print(f"{L} quiet {s.at_hour(20):.0f} ms, event {s.at_hour(8):.0f} ms")

    print("== fig5/6 K ==")
    for s in site_minmax(ds, "K")[:6]:
        print(f"{s.site} med {s.median:.0f} min/med {s.min_normalized:.2f} "
              f"max/med {s.max_normalized:.2f}")

    print("== fig7 ==")
    for code in ("AMS", "NRT"):
        s = site_rtt_series(ds, "K", code)
        print(f"K-{code} quiet {s.at_hour(20):.0f} ms "
              f"peak {float(np.nanmax(s.values)):.0f} ms")

    print("== fig8 ==")
    for L in "CEHIJK":
        flips = count_flips(ds, L)
        mask = ds.grid.event_mask()
        print(f"{L} event-bin flips {flips.values[mask].sum():.0f} "
              f"quiet {flips.values[~mask].sum():.0f}")

    print("== fig9 ==")
    print("churners:", letters_with_event_churn(result.route_changes,
                                                result.grid))

    print("== fig10 ==")
    for origin in ("LHR", "FRA"):
        dest = flip_destinations(ds, "K", origin, (6.8, 9.5))
        print(f"K-{origin}:", dict(dest.most_common(4)))

    print("== fig11 ==")
    census = behaviour_census(
        vp_timelines(ds, "K", ["LHR", "FRA"], event=EVENT_1)
    )
    print(dict(census))

    print("== fig12 ==")
    for code in ("FRA", "NRT"):
        s = answering_servers_per_bin(ds, "K", code)
        print(f"K-{code} servers quiet {s.at_hour(20):.0f} "
              f"event {s.at_hour(8):.0f}")

    print("== fig14 ==")
    for c in collateral_sites(ds, "D"):
        print(f"{c.site} dip {c.dip_fraction:.2f} median {c.median_vps:.0f}")

    print("== fig15 ==")
    for node in result.nl.node_labels:
        print(f"{node} event-min {nl_event_minimum(result.nl, node):.2f}")

    print("== extension: whole root ==")
    from repro.resolver import WholeRootConfig, run_whole_root

    outcome = run_whole_root(
        result, WholeRootConfig(n_resolvers=100),
        np.random.default_rng(5),
    )
    mask = result.event_mask()
    latency = outcome.mean_lookup_latency_ms
    print(f"end-user failures {outcome.overall_failure_fraction():.5f}")
    print(f"cache hits {outcome.cache_hits.sum() / outcome.user_queries.sum():.3f}")
    print(f"lookup latency quiet {float(np.nanmedian(latency[~mask])):.0f} "
          f"events {float(np.nanmedian(latency[mask])):.0f}")

    print("== extension: provisioning K ==")
    from repro.defense import aggregate_vs_placed, provisioning_plan

    plan = provisioning_plan(result.deployments["K"], result.truth["K"])
    aggregate, worst = aggregate_vs_placed(
        result.deployments["K"], result.truth["K"]
    )
    print(f"extra servers {plan.total_extra_servers}; "
          f"aggregate rho {aggregate:.2f} worst-site rho {worst:.2f}")


if __name__ == "__main__":
    main()
