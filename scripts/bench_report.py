"""Record benchmark wall times in BENCH_*.json reports.

The default (engine) mode runs the same size grid as
``benchmarks/bench_engine_scaling.py`` plus the acceptance scenario
(seed=1, 300 stubs, 500 VPs), timing the acceptance run under both
engine paths -- segment-batched (REPRO_ENGINE_BATCH=1, the default)
and the per-bin reference loop (REPRO_ENGINE_BATCH=0) -- and writes
the results to ``BENCH_engine.json`` at the repo root.  The batched
wall time must clear the 2x floor against the recorded pre-batching
baseline (0.754 s); the report keeps both paths' timings so the file
documents the trade.

``--routing`` instead runs ``benchmarks/bench_routing.py`` (churn,
faulted end-to-end, and the churn-delta suite on 50k/100k-AS as-rel2
graphs) and writes ``BENCH_routing.json``; add ``--smoke`` to shrink
it to the CI equality-only sizes.

``--profile`` runs the acceptance scenario once under cProfile and
writes the top 25 functions by cumulative time to
``BENCH_profile.json`` instead of timing the grid.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--reps 3]
    PYTHONPATH=src python scripts/bench_report.py --profile
    PYTHONPATH=src python scripts/bench_report.py --routing [--smoke]
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import importlib.util
import json
import os
import platform
import pstats
import time
from pathlib import Path

from repro.scenario.config import ScenarioConfig
from repro.scenario.engine import simulate
from repro.util.env import ENGINE_BATCH

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (n_stubs, n_vps) grid mirrored by benchmarks/bench_engine_scaling.py.
SCALING_SIZES = [
    (200, 300),
    (200, 1500),
    (600, 300),
    (600, 1500),
]

#: The PR acceptance scenario.
ACCEPTANCE = {"seed": 1, "n_stubs": 300, "n_vps": 500}

#: Acceptance wall time recorded before segment batching landed; the
#: batched path must beat it by BATCH_FLOOR.
PRE_BATCH_BASELINE_S = 0.754
BATCH_FLOOR = 2.0


def host_metadata() -> dict:
    """The ``host`` block shared by every BENCH_* report writer.

    ``usable_cpus`` is the scheduler-visible core count (cgroup/
    affinity limits included), which is what wall-clock comparisons
    actually ran on; ``cpu_count`` is the raw machine size.
    """
    return {
        "cpu_count": os.cpu_count(),
        "usable_cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count() or 1,
    }


def time_simulate(**kwargs) -> float:
    """Wall time of one full simulate() call, in seconds.

    The collector is paused around the timed region (the
    pytest-benchmark convention) so a GC pause landing inside one rep
    does not masquerade as engine work.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        simulate(ScenarioConfig(**kwargs))
        return time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def time_acceptance_once(batch: bool) -> float:
    """One acceptance wall time under one engine path.

    The previous env value is restored so the report run cannot leak
    mode into later timings.
    """
    previous = os.environ.get(ENGINE_BATCH)
    os.environ[ENGINE_BATCH] = "1" if batch else "0"
    try:
        return time_simulate(**ACCEPTANCE)
    finally:
        if previous is None:
            del os.environ[ENGINE_BATCH]
        else:
            os.environ[ENGINE_BATCH] = previous


def time_acceptance(reps: int) -> tuple[float, float]:
    """Best-of-*reps* acceptance wall times, ``(batched, per_bin)``.

    The two paths alternate within each rep so scheduler / host noise
    hits both equally instead of skewing whichever ran later; best-of
    keeps transient slowdowns out of the recorded numbers.
    """
    walls_batched = []
    walls_per_bin = []
    for _ in range(reps):
        walls_batched.append(time_acceptance_once(True))
        walls_per_bin.append(time_acceptance_once(False))
    return min(walls_batched), min(walls_per_bin)


def profile_acceptance(top_n: int = 25) -> list[dict]:
    """Top-*top_n* functions by cumulative time for one acceptance run."""
    profiler = cProfile.Profile()
    profiler.enable()
    simulate(ScenarioConfig(**ACCEPTANCE))
    profiler.disable()
    stats = pstats.Stats(profiler)
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda kv: kv[1][3],
        reverse=True,
    )[:top_n]
    return [
        {
            "function": f"{Path(filename).name}:{line}:{name}",
            "ncalls": ncalls,
            "tottime_s": round(tottime, 4),
            "cumtime_s": round(cumtime, 4),
        }
        for (filename, line, name), (
            _cc, ncalls, tottime, cumtime, _callers,
        ) in entries
    ]


def run_routing(output: Path, smoke: bool) -> None:
    """Delegate to benchmarks/bench_routing.py and write *output*.

    The benchmark module lives outside the package tree, so it is
    loaded by file path; its own CLI handles sizing and the speedup
    floors (skipped in smoke mode).
    """
    bench_path = REPO_ROOT / "benchmarks" / "bench_routing.py"
    spec = importlib.util.spec_from_file_location("bench_routing", bench_path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    argv = ["--out", str(output)]
    if smoke:
        argv.append("--smoke")
    raise SystemExit(module.main(argv))


def run_profile(output: Path) -> None:
    """Write the cProfile report for the acceptance scenario."""
    top = profile_acceptance()
    report = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "host": host_metadata(),
        "acceptance": dict(ACCEPTANCE),
        "note": (
            "one acceptance simulate() under cProfile, top 25 by "
            "cumulative time; profiling overhead inflates wall times "
            "-- compare shapes, not absolute seconds"
        ),
        "top_cumulative": top,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    for row in top[:10]:
        print(
            f"{row['cumtime_s']:8.3f}s cum {row['tottime_s']:8.3f}s tot "
            f"{row['ncalls']:>8}  {row['function']}"
        )
    print(f"wrote {output}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=float,
        default=PRE_BATCH_BASELINE_S,
        help="pre-batching wall time (s) of the acceptance scenario",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="repetitions per acceptance timing (best-of is recorded)",
    )
    parser.add_argument(
        "--routing",
        action="store_true",
        help="run the routing benchmarks into BENCH_routing.json instead",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="with --routing: tiny sizes, equality asserts only",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the acceptance scenario into BENCH_profile.json",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the report",
    )
    args = parser.parse_args()

    if args.routing:
        run_routing(
            args.output or REPO_ROOT / "BENCH_routing.json", args.smoke
        )
    if args.profile:
        run_profile(args.output or REPO_ROOT / "BENCH_profile.json")
        return
    if args.output is None:
        args.output = REPO_ROOT / "BENCH_engine.json"

    report: dict = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "host": host_metadata(),
        "scaling": [],
    }

    for n_stubs, n_vps in SCALING_SIZES:
        wall = time_simulate(seed=1, n_stubs=n_stubs, n_vps=n_vps)
        report["scaling"].append(
            {"n_stubs": n_stubs, "n_vps": n_vps, "wall_s": round(wall, 3)}
        )
        print(f"stubs={n_stubs:4d} vps={n_vps:4d}: {wall:6.2f}s")

    batched, per_bin = time_acceptance(args.reps)
    speedup = args.baseline / batched
    acceptance = {
        **ACCEPTANCE,
        "wall_s": round(batched, 3),
        "wall_s_batched": round(batched, 3),
        "wall_s_per_bin": round(per_bin, 3),
        "baseline_wall_s": args.baseline,
        "speedup": round(speedup, 2),
        "reps": args.reps,
    }
    report["acceptance"] = acceptance
    print(
        f"acceptance {ACCEPTANCE}: batched {batched:.3f}s, "
        f"per-bin {per_bin:.3f}s "
        f"({speedup:.2f}x vs {args.baseline}s baseline)"
    )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if speedup < BATCH_FLOOR:
        raise SystemExit(
            f"batched acceptance {batched:.3f}s misses the "
            f"{BATCH_FLOOR}x floor vs the {args.baseline}s baseline "
            f"({speedup:.2f}x)"
        )


if __name__ == "__main__":
    main()
