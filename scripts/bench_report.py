"""Record benchmark wall times in BENCH_*.json reports.

The default (engine) mode runs the same size grid as
``benchmarks/bench_engine_scaling.py`` plus the acceptance scenario
(seed=1, 300 stubs, 500 VPs) and writes the results to
``BENCH_engine.json`` at the repo root.  Pass ``--baseline SECONDS``
to record a pre-change wall time for the acceptance scenario alongside
the measured one (the speedup is derived from the pair).

``--routing`` instead runs ``benchmarks/bench_routing.py`` (churn,
faulted end-to-end, and the churn-delta suite on 50k/100k-AS as-rel2
graphs) and writes ``BENCH_routing.json``; add ``--smoke`` to shrink
it to the CI equality-only sizes.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--baseline 13.75]
    PYTHONPATH=src python scripts/bench_report.py --routing [--smoke]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import platform
import time
from pathlib import Path

from repro.scenario.config import ScenarioConfig
from repro.scenario.engine import simulate

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (n_stubs, n_vps) grid mirrored by benchmarks/bench_engine_scaling.py.
SCALING_SIZES = [
    (200, 300),
    (200, 1500),
    (600, 300),
    (600, 1500),
]

#: The PR acceptance scenario.
ACCEPTANCE = {"seed": 1, "n_stubs": 300, "n_vps": 500}


def time_simulate(**kwargs) -> float:
    """Wall time of one full simulate() call, in seconds."""
    start = time.perf_counter()
    simulate(ScenarioConfig(**kwargs))
    return time.perf_counter() - start


def run_routing(output: Path, smoke: bool) -> None:
    """Delegate to benchmarks/bench_routing.py and write *output*.

    The benchmark module lives outside the package tree, so it is
    loaded by file path; its own CLI handles sizing and the speedup
    floors (skipped in smoke mode).
    """
    bench_path = REPO_ROOT / "benchmarks" / "bench_routing.py"
    spec = importlib.util.spec_from_file_location("bench_routing", bench_path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    argv = ["--out", str(output)]
    if smoke:
        argv.append("--smoke")
    raise SystemExit(module.main(argv))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=float,
        default=None,
        help="pre-change wall time (s) of the acceptance scenario",
    )
    parser.add_argument(
        "--routing",
        action="store_true",
        help="run the routing benchmarks into BENCH_routing.json instead",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="with --routing: tiny sizes, equality asserts only",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the report",
    )
    args = parser.parse_args()

    if args.routing:
        run_routing(
            args.output or REPO_ROOT / "BENCH_routing.json", args.smoke
        )
    if args.output is None:
        args.output = REPO_ROOT / "BENCH_engine.json"

    report: dict = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scaling": [],
    }

    for n_stubs, n_vps in SCALING_SIZES:
        wall = time_simulate(seed=1, n_stubs=n_stubs, n_vps=n_vps)
        report["scaling"].append(
            {"n_stubs": n_stubs, "n_vps": n_vps, "wall_s": round(wall, 3)}
        )
        print(f"stubs={n_stubs:4d} vps={n_vps:4d}: {wall:6.2f}s")

    wall = time_simulate(**ACCEPTANCE)
    acceptance = {**ACCEPTANCE, "wall_s": round(wall, 3)}
    if args.baseline is not None:
        acceptance["baseline_wall_s"] = args.baseline
        acceptance["speedup"] = round(args.baseline / wall, 2)
    report["acceptance"] = acceptance
    print(
        f"acceptance {ACCEPTANCE}: {wall:.2f}s"
        + (
            f" ({args.baseline / wall:.2f}x vs {args.baseline}s baseline)"
            if args.baseline is not None
            else ""
        )
    )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
