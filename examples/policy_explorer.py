#!/usr/bin/env python3
"""Explore the section-2.2 policy space: withdraw vs absorb.

Sweeps attack strength through the paper's five cases and compares
three defender postures on the Figure-2 deployment:

* absorb -- do nothing, let BGP's default catchments stand;
* withdraw -- pick the best set of sites to take offline;
* re-route -- full control over where each upstream lands.

Then it builds a larger custom deployment to show the same structure
holds beyond the toy example.
"""

import numpy as np

from repro.core import (
    AnycastModel,
    LinkGroup,
    best_withdrawal,
    classify_case,
    default_assignment,
    expected_happiness,
    figure2_model,
    happiness,
    optimal_assignment,
)


def sweep_paper_model() -> None:
    print("Figure-2 deployment (s1 = s2 = 1, S3 = 10), A0 = A1 = a")
    print()
    print("      a  case   absorb  withdraw  re-route  (paper H)")
    for a in np.linspace(0.25, 12.0, 24):
        model = figure2_model(a, a)
        case = classify_case(a, a)
        absorb = happiness(model, default_assignment(model))
        withdrawn, withdraw = best_withdrawal(model)
        _, optimal = optimal_assignment(model)
        note = f"withdraw {sorted(withdrawn)}" if withdrawn else ""
        print(
            f"  {a:5.2f}     {case}        {absorb}         {withdraw}"
            f"         {optimal}        ({expected_happiness(case)})  {note}"
        )
    print()
    print("cases 2-3: withdrawing can serve everyone ('less is more');")
    print("case 4: only a targeted re-route saves the third client;")
    print("case 5: absorb and contain -- no strategy saves s1's clients.")


def custom_deployment() -> None:
    print()
    print("a 5-site continental deployment under a concentrated attack:")
    model = AnycastModel(
        capacities={
            "ams": 3.0, "lhr": 1.0, "fra": 1.0, "iad": 2.0, "nrt": 1.0,
        },
        groups=(
            LinkGroup("eu-isp-1", attack=2.5, clients=3,
                      site_options=("lhr", "ams", "fra")),
            LinkGroup("eu-isp-2", attack=0.4, clients=2,
                      site_options=("fra", "ams")),
            LinkGroup("us-isp", attack=0.8, clients=3,
                      site_options=("iad", "ams")),
            LinkGroup("apnic-isp", attack=1.8, clients=2,
                      site_options=("nrt", "iad")),
        ),
    )
    absorb = happiness(model, default_assignment(model))
    withdrawn, withdraw_h = best_withdrawal(model)
    assignment, optimal = optimal_assignment(model)
    print(f"  absorb (status quo):      H = {absorb}/{model.total_clients}")
    print(
        f"  best withdrawal {sorted(withdrawn)}: "
        f"H = {withdraw_h}/{model.total_clients}"
    )
    print(f"  full routing control:     H = {optimal}/{model.total_clients}")
    for group, site in assignment.items():
        print(f"    {group} -> {site}")


def main() -> None:
    sweep_paper_model()
    custom_deployment()


if __name__ == "__main__":
    main()
