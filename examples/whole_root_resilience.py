#!/usr/bin/env python3
"""Did anyone actually notice?  The Root DNS as a whole, under attack.

The paper shows individual letters losing up to ~95 % of queries, yet
"there were no known reports of end-user visible errors" (§2.3).  This
example closes the loop the paper leaves to future work (§3.2.2, §5):
a population of recursive resolvers -- with delegation caches and
smoothed-RTT letter selection -- rides through the simulated events,
and we measure what their users saw.

Also compares automated defense controllers on K-Root (the paper's
§2.2 closing speculation).
"""

import numpy as np

from repro import ScenarioConfig, simulate
from repro.core import Series, worst_responsiveness
from repro.defense import (
    GreedyShedController,
    NullController,
    OracleController,
    compare_controllers,
)
from repro.resolver import ResolverConfig, WholeRootConfig, run_whole_root


def whole_root(result) -> None:
    print("driving 150 recursive resolvers through the events ...")
    outcome = run_whole_root(
        result, WholeRootConfig(n_resolvers=150),
        np.random.default_rng(5),
    )
    mask = result.event_mask()
    latency = outcome.mean_lookup_latency_ms
    print()
    print("per-letter damage vs end-user experience:")
    for letter in ("B", "H", "K"):
        worst = worst_responsiveness(result.atlas, letter)
        print(f"  {letter}-Root worst responsiveness: {worst:.2f}")
    print(f"  end-user failure fraction:  "
          f"{outcome.overall_failure_fraction():.5f}")
    print(f"  cache hit ratio:            "
          f"{outcome.cache_hits.sum() / outcome.user_queries.sum():.3f}")
    print(f"  root-lookup latency quiet:  "
          f"{float(np.nanmedian(latency[~mask])):.0f} ms")
    print(f"  root-lookup latency events: "
          f"{float(np.nanmedian(latency[mask])):.0f} ms")
    print()
    failure = Series(
        "failures", outcome.hours, outcome.failure_fraction
    )
    print("  per-bin end-user failure fraction:")
    print("  " + failure.sparkline(72))
    print()
    print("caching plus cross-letter retry hide even a 90 % letter")
    print("outage from end users -- the paper's §3.2.2 redundancy.")


def defense(seed: int) -> None:
    print()
    print("comparing automated defense controllers on K-Root ...")
    base = ScenarioConfig(
        seed=seed, n_stubs=250, n_vps=300, letters=("K",),
        include_nl=False,
    )
    table = compare_controllers(
        base,
        "K",
        {
            "absorb-only": NullController,
            "static-2015": None,
            "greedy-shed": GreedyShedController,
            "oracle": OracleController,
        },
    )
    print(table.render())
    print()
    print("the greedy controller -- acting only on operator-visible")
    print("signals -- makes things WORSE, exactly the §2.2 warning;")
    print("absorption is a sound default under uncertainty.")


def main() -> None:
    print("simulating the Nov/Dec 2015 events ...")
    result = simulate(ScenarioConfig(seed=11, n_stubs=300, n_vps=400))
    whole_root(result)
    defense(seed=11)


if __name__ == "__main__":
    main()
