#!/usr/bin/env python3
"""Full event post-mortem: every table and figure from one simulation.

This walks the complete analysis pipeline of the paper over one
simulated dataset -- the miniature version of its evaluation section.
Expect a minute or so of runtime at the default size.
"""

from repro import ScenarioConfig, simulate
from repro.core import (
    behaviour_census,
    clean_dataset,
    collateral_sites,
    correlation_table,
    event_size_table,
    flip_destinations,
    flips_figure,
    nl_event_minimum,
    observed_sites_table,
    reachability_figure,
    route_change_series,
    rtt_figure,
    rtt_significantly_changed,
    server_reachability,
    site_minmax_table,
    site_rtt_figure,
    site_timeseries,
    sites_vs_resilience,
    vp_timelines,
)
from repro.rootdns import ATTACKED_LETTERS, LETTERS_SPEC, RSSAC_REPORTING_LETTERS
from repro.util import EVENT_1


def main() -> None:
    print("simulating (600 stubs, 1200 VPs, all 13 letters) ...")
    result = simulate(ScenarioConfig(seed=42, n_stubs=600, n_vps=1200))
    dataset, cleaning = clean_dataset(result.atlas)
    print(f"cleaning kept {cleaning.kept_fraction:.1%} of VPs")

    sections = []

    sections.append(observed_sites_table(dataset).render())

    rssac = {L: result.rssac[L] for L in RSSAC_REPORTING_LETTERS}
    for date in ("2015-11-30", "2015-12-01"):
        sections.append(
            event_size_table(
                rssac, ATTACKED_LETTERS, date, len(ATTACKED_LETTERS)
            ).render()
        )

    sections.append(reachability_figure(dataset).render())

    changed = [
        L for L in sorted(dataset.letters)
        if rtt_significantly_changed(dataset, L)
    ]
    sections.append(rtt_figure(dataset, changed).render())

    fit = sites_vs_resilience(
        dataset, {L: s.n_sites for L, s in LETTERS_SPEC.items()}
    )
    sections.append(correlation_table(fit).render())

    for letter in ("E", "K"):
        sections.append(site_minmax_table(dataset, letter).render())
        sections.append(
            site_timeseries(dataset, letter, stable_only=True).render()
        )

    sections.append(
        site_rtt_figure(dataset, "K", ["AMS", "NRT", "LHR"]).render()
    )

    sections.append(flips_figure(dataset).render())
    sections.append(
        route_change_series(result.route_changes, result.grid).render()
    )

    dest = flip_destinations(dataset, "K", "LHR", (6.8, 9.5))
    lines = ["Fig. 10: where K-LHR's catchment went during event 1"]
    for site, count in dest.most_common():
        lines.append(f"  -> {site}: {count}")
    sections.append("\n".join(lines))

    census = behaviour_census(
        vp_timelines(dataset, "K", ["LHR", "FRA"], event=EVENT_1)
    )
    sections.append(
        "Fig. 11 behaviour groups: "
        + ", ".join(f"{k}={v}" for k, v in census.most_common())
    )

    for site in ("FRA", "NRT"):
        sections.append(server_reachability(dataset, "K", site).render())

    damage = collateral_sites(dataset, "D")
    lines = ["Fig. 14: unattacked D-Root sites dipping with the events"]
    for site in damage:
        lines.append(
            f"  {site.site}: dip {site.dip_fraction:.0%} "
            f"(median {site.median_vps:.0f} VPs)"
        )
    sections.append("\n".join(lines))

    lines = ["Fig. 15: .nl nodes, event minimum vs median"]
    for node in result.nl.node_labels:
        lines.append(
            f"  {node}: {nl_event_minimum(result.nl, node):.2f}"
        )
    sections.append("\n".join(lines))

    print()
    print(("\n" + "=" * 72 + "\n").join(sections))


if __name__ == "__main__":
    main()
