#!/usr/bin/env python3
"""From published RSSAC-002 files to Table 3.

The paper's event-size analysis (§3.1) starts from the YAML documents
root operators publish.  This example walks that exact pipeline on
simulated data: simulate the events, export each reporting letter's
daily statistics as RSSAC-002 YAML, read the files back as an analyst
would, and estimate the event size from nothing but those files.
"""

import tempfile
from pathlib import Path

from repro import ScenarioConfig, simulate
from repro.core import event_size_table, letter_event_size
from repro.rootdns import ATTACKED_LETTERS, RSSAC_REPORTING_LETTERS
from repro.rssac import load_reports, save_reports


def main() -> None:
    print("simulating the events (RSSAC reporters only need rates) ...")
    result = simulate(ScenarioConfig(seed=42, n_stubs=400, n_vps=300))

    with tempfile.TemporaryDirectory() as tmp:
        print("publishing RSSAC-002 YAML, one file per letter:")
        paths = {}
        for letter in RSSAC_REPORTING_LETTERS:
            path = Path(tmp) / f"{letter.lower()}-root-rssac002.yaml"
            count = save_reports(result.rssac[letter], path)
            paths[letter] = path
            print(f"  {path.name}: {count} letter-days, "
                  f"{path.stat().st_size} bytes")

        print()
        print("reading the files back (analyst view, no simulator "
              "access):")
        published = {
            letter: tuple(load_reports(path))
            for letter, path in paths.items()
        }

    for date in ("2015-11-30", "2015-12-01"):
        print()
        table = event_size_table(
            published, ATTACKED_LETTERS, date, len(ATTACKED_LETTERS)
        )
        print(table.render())

    # The attack identification trick of §3.1: the event shows up as
    # an unusually popular query-size bin.
    a_nov30 = next(
        r for r in published["A"] if r.date == "2015-11-30"
    )
    a_quiet = published["A"][0]
    print()
    print(
        f"attack-bin identification: A-Root's dominant query bin moved "
        f"from {a_quiet.dominant_query_bin()}B (quiet) to "
        f"{a_nov30.dominant_query_bin()}B (event day) -- the fixed "
        f"32-byte www.336901.com query"
    )
    size = letter_event_size(published["A"], "2015-11-30", attacked=True)
    print(
        f"A-Root delta: {size.delta_queries_mqps:.2f} Mq/s "
        f"({size.delta_queries_gbps:.2f} Gb/s); paper: 5.12 Mq/s"
    )


if __name__ == "__main__":
    main()
