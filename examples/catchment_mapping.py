#!/usr/bin/env python3
"""Map anycast catchments with CHAOS queries, the paper's §2.4 method.

Builds a topology, deploys K-Root, and drives the *raw* measurement
path end to end: binned observations are expanded into probe-level
records (the shape real RIPE Atlas results arrive in), written to and
read back from NDJSON, re-binned with the site>error>missing rule, and
finally turned into a catchment map -- including what happens when a
site is withdrawn mid-window.
"""

import tempfile
from collections import Counter
from pathlib import Path

import numpy as np

from repro import ScenarioConfig, simulate
from repro.atlas import to_probe_records
from repro.core import bin_probe_records, vps_per_site
from repro.datasets import read_probe_records, write_probe_records


def main() -> None:
    print("simulating K-Root under the events ...")
    result = simulate(
        ScenarioConfig(
            seed=7, n_stubs=250, n_vps=400, letters=("K",),
            include_nl=False,
        )
    )
    dataset = result.atlas

    print("expanding 40 VPs into raw CHAOS probe records ...")
    rng = np.random.default_rng(0)
    vp_ids = dataset.vps.ids[:40]
    records = list(to_probe_records(dataset, "K", rng, vp_ids=vp_ids))
    print(f"  {len(records)} probe records (one per VP per 4 minutes)")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "k-root.ndjson"
        write_probe_records(records, path)
        print(f"  round-tripping through {path.name} ...")
        loaded = list(read_probe_records(path))

    obs = bin_probe_records(
        loaded, "K", dataset.grid,
        vp_ids=[int(v) for v in vp_ids],
        site_codes=dataset.letter("K").site_codes,
    )

    print()
    print("catchments before / during / after event 1 (VPs per site):")
    hours = dataset.grid.hours()
    phases = {
        "before": hours < 6.8,
        "during": (hours >= 6.9) & (hours < 9.4),
        "after ": (hours >= 12.0) & (hours < 24.0),
    }
    for phase, mask in phases.items():
        counter: Counter = Counter()
        sites = obs.site_idx[mask]
        for idx in sites[sites >= 0]:
            counter[obs.site_codes[int(idx)]] += 1
        top = ", ".join(
            f"K-{site}:{count}" for site, count in counter.most_common(5)
        )
        print(f"  {phase}: {top}")

    print()
    print("full-population site medians (the paper's Fig. 6 ordering):")
    counts = vps_per_site(dataset, "K")
    medians = np.median(counts, axis=0)
    order = np.argsort(-medians)
    for i in order[:8]:
        code = dataset.letter("K").site_codes[i]
        print(f"  K-{code:<4} median {medians[i]:4.0f} VPs")


if __name__ == "__main__":
    main()
