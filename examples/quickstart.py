#!/usr/bin/env python3
"""Quickstart: simulate the Nov 2015 events and look at reachability.

Runs a small scenario (a few seconds), applies the paper's cleaning
pipeline, and prints the Figure-3 view: how many vantage points could
reach each root letter through the two event windows.
"""

from repro import ScenarioConfig, simulate
from repro.core import clean_dataset, reachability_figure, worst_responsiveness


def main() -> None:
    print("simulating the Nov 30 / Dec 1 2015 root DNS events ...")
    result = simulate(ScenarioConfig(seed=42, n_stubs=300, n_vps=600))

    dataset, report = clean_dataset(result.atlas)
    print(
        f"cleaning: kept {report.n_kept}/{report.n_total} VPs "
        f"({report.n_old_firmware} old firmware, "
        f"{report.n_hijacked} hijacked)"
    )
    print()

    print(reachability_figure(dataset).render())
    print()
    print("worst responsiveness (min/median of successful VPs):")
    for letter in sorted(dataset.letters):
        worst = worst_responsiveness(dataset, letter)
        bar = "#" * int(worst * 40)
        print(f"  {letter}  {worst:5.2f}  {bar}")
    print()
    print("B (unicast) and H (primary/backup) collapse; letters with")
    print("many sites barely notice -- the paper's Figure 3 in one run.")


if __name__ == "__main__":
    main()
