"""Serial-vs-parallel wall time of the sweep runner -> BENCH_sweep.json.

Runs a fixed replicate grid through :func:`repro.sweep.run_sweep` at
1/2/4/8 workers, records wall time, speed-up over serial, and parallel
efficiency, and *always* asserts bit-equality of every worker count
against the serial run.  The numbers are honest for the host that ran
them: ``host.usable_cpus`` is recorded alongside, and the ISSUE's
>= 2.5x-at-4-workers target is only reachable on a host with at least
4 physical cores (a single-core container shows ~1x and some pool
overhead -- correctness still holds, which is what CI checks).

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py \
        [--out BENCH_sweep.json] [--cells 8] [--jobs 1,2,4,8]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time

from repro import ScenarioConfig
from repro.scenario import diff_arrays, result_arrays
from repro.sweep import SweepSpec, run_sweep

#: The bench grid: replicates of one mid-size scenario, so every cell
#: after the first reuses a worker's cached substrate.
BENCH_BASE = dict(
    seed=42, n_stubs=200, n_vps=300, letters=("A", "F", "H", "K"),
    include_nl=True,
)


def bench_spec(cells: int) -> SweepSpec:
    return SweepSpec.from_points(
        ScenarioConfig(**BENCH_BASE), [{}], replicates=cells
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument("--cells", type=int, default=8)
    parser.add_argument("--jobs", default="1,2,4,8",
                        help="comma-separated worker counts")
    args = parser.parse_args(argv)
    job_counts = [int(part) for part in args.jobs.split(",")]
    spec = bench_spec(args.cells)

    runs = []
    serial_arrays: list[dict] | None = None
    serial_wall: float | None = None
    for jobs in job_counts:
        started = time.perf_counter()
        sweep = run_sweep(spec, jobs=jobs)
        wall = time.perf_counter() - started
        arrays = [result_arrays(r) for r in sweep.results]
        if serial_arrays is None:
            serial_arrays, serial_wall = arrays, wall
            identical = True
        else:
            identical = all(
                not diff_arrays(a, b)
                for a, b in zip(serial_arrays, arrays)
            )
        assert identical, f"jobs={jobs} output differs from serial"
        speedup = serial_wall / wall
        runs.append(
            {
                "jobs": jobs,
                "wall_s": round(wall, 3),
                "speedup_vs_serial": round(speedup, 3),
                "efficiency": round(speedup / jobs, 3),
                "bit_identical_to_serial": identical,
            }
        )
        print(
            f"jobs={jobs}: {wall:.2f}s, speedup {speedup:.2f}x, "
            f"bit-identical={identical}",
            file=sys.stderr,
        )

    payload = {
        "generated": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count(),
        },
        "grid": {**BENCH_BASE, "cells": spec.n_cells},
        "note": (
            "speed-up targets (>= 2.5x at 4 workers) require >= 4 "
            "physical cores; on fewer cores the runs above measure "
            "pool overhead honestly while still asserting "
            "bit-equality with serial execution"
        ),
        "runs": runs,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
