"""Serial vs pickled vs shared-memory sweep dispatch -> BENCH_sweep.json.

Runs a fixed shared-substrate grid (one signature, runtime knobs only
-- exactly the shape the zero-copy layer targets) through
:func:`repro.sweep.run_sweep` serially and then at each worker count
twice: once on the legacy pickled path (``shm=False``, every worker
rebuilds the substrate) and once attaching the parent's shared-memory
export (``shm=True``).  Wall time, speed-up over serial, parallel
efficiency, exported segment count, and each worker's peak RSS are
recorded; bit-equality of every run against serial is *always*
asserted.  The numbers are honest for the host that ran them:
``host.usable_cpus`` is recorded alongside, and the >= 2.5x-at-4-
workers target for the shared path is asserted only when the host
actually has 4 usable cores (a single-core container shows ~1x and
some pool overhead -- correctness still holds, which is what CI
checks).

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py \
        [--out BENCH_sweep.json] [--cells 8] [--jobs 1,2,4,8]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time

from repro import ScenarioConfig
from repro.scenario import diff_arrays, result_arrays
from repro.sweep import SweepSpec, leaked_segments, run_sweep

# The host-metadata block is shared with every other BENCH_* writer;
# it lives in scripts/bench_report.py, outside the package tree.
sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "scripts"),
)
from bench_report import host_metadata  # noqa: E402

#: The bench grid: one mid-size substrate signature swept over a
#: runtime knob, so every parallel worker either rebuilds it (pickled
#: path) or attaches the parent's one export (shared path).
BENCH_BASE = dict(
    seed=42, n_stubs=200, n_vps=300, letters=("A", "F", "H", "K"),
    include_nl=True,
)

#: Shared-path speed-up floor at 4 workers -- asserted only on hosts
#: with >= 4 usable cores.
TARGET_SPEEDUP_AT_4 = 2.5


def bench_spec(cells: int) -> SweepSpec:
    return SweepSpec.grid(
        ScenarioConfig(**BENCH_BASE),
        {"baseline_days": list(range(1, cells + 1))},
    )


def _rss_summary(worker_rss_kb: dict[int, int]) -> dict[str, int]:
    peaks = sorted(worker_rss_kb.values())
    if not peaks:
        return {"workers": 0, "max_kb": 0, "total_kb": 0}
    return {
        "workers": len(peaks),
        "max_kb": peaks[-1],
        "total_kb": sum(peaks),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument("--cells", type=int, default=8)
    parser.add_argument("--jobs", default="1,2,4,8",
                        help="comma-separated worker counts")
    args = parser.parse_args(argv)
    job_counts = [int(part) for part in args.jobs.split(",")]
    spec = bench_spec(args.cells)
    host = host_metadata()
    usable_cpus = host["usable_cpus"]

    serial_arrays: list[dict] | None = None
    serial_wall: float | None = None
    runs = []
    speedup_by_key: dict[tuple[int, str], float] = {}
    for jobs in job_counts:
        dispatches = (
            ("serial",) if jobs == 1 else ("pickled", "shared")
        )
        for dispatch in dispatches:
            started = time.perf_counter()
            sweep = run_sweep(
                spec, jobs=jobs, shm=(dispatch == "shared")
            )
            wall = time.perf_counter() - started
            arrays = [result_arrays(r) for r in sweep.results]
            if serial_arrays is None:
                serial_arrays, serial_wall = arrays, wall
                identical = True
            else:
                identical = all(
                    not diff_arrays(a, b)
                    for a, b in zip(serial_arrays, arrays)
                )
            assert identical, (
                f"jobs={jobs} ({dispatch}) output differs from serial"
            )
            assert leaked_segments() == [], "segment leaked"
            assert serial_wall is not None
            speedup = serial_wall / wall
            speedup_by_key[(jobs, dispatch)] = speedup
            runs.append(
                {
                    "jobs": jobs,
                    "dispatch": dispatch,
                    "wall_s": round(wall, 3),
                    "speedup_vs_serial": round(speedup, 3),
                    "efficiency": round(speedup / jobs, 3),
                    "bit_identical_to_serial": identical,
                    "shm_segments": sweep.shm_segments,
                    "worker_peak_rss": _rss_summary(
                        sweep.worker_rss_kb
                    ),
                }
            )
            print(
                f"jobs={jobs} ({dispatch}): {wall:.2f}s, "
                f"speedup {speedup:.2f}x, "
                f"segments={sweep.shm_segments}, "
                f"bit-identical={identical}",
                file=sys.stderr,
            )

    if usable_cpus >= 4 and (4, "shared") in speedup_by_key:
        achieved = speedup_by_key[(4, "shared")]
        assert achieved >= TARGET_SPEEDUP_AT_4, (
            f"shared dispatch at 4 workers reached only "
            f"{achieved:.2f}x on a {usable_cpus}-core host "
            f"(target {TARGET_SPEEDUP_AT_4}x)"
        )

    payload = {
        "generated": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "host": host,
        "grid": {**BENCH_BASE, "cells": spec.n_cells,
                 "axis": "baseline_days"},
        "note": (
            "the shared-dispatch speed-up target "
            f"(>= {TARGET_SPEEDUP_AT_4}x at 4 workers) requires >= 4 "
            "usable cores and is asserted only there; on fewer cores "
            "the runs above measure pool and attach overhead honestly "
            "while still asserting bit-equality with serial execution "
            "and zero /dev/shm residue"
        ),
        "runs": runs,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
