"""Ablation: what if every site just absorbed (no withdrawals)?

DESIGN.md calls out the absorb-vs-withdraw choice as the central
design decision; this bench reruns the scenario with all withdraw and
partial-withdraw policies forced to ABSORB and compares outcomes.
"""

import dataclasses

import numpy as np

from repro import ScenarioConfig, simulate
from repro.core import count_flips, worst_responsiveness
from repro.rootdns import LETTERS_SPEC, SitePolicy

_LETTERS = ("E", "H", "K")


def _absorb_everywhere():
    specs = {}
    for letter in _LETTERS:
        spec = LETTERS_SPEC[letter]
        sites = tuple(
            dataclasses.replace(
                s,
                policy=SitePolicy.ABSORB,
                initially_announced=True,
            )
            for s in spec.sites
        )
        specs[letter] = dataclasses.replace(spec, sites=sites)
    return specs


def _run(custom):
    return simulate(
        ScenarioConfig(
            seed=11, n_stubs=300, n_vps=500, letters=_LETTERS,
            include_nl=False, custom_letters=custom,
        )
    )


def test_ablation_absorb_only(benchmark):
    absorb = benchmark(_run, _absorb_everywhere())
    baseline = _run(None)
    print()
    print("  letter  worst/median (policies)  worst/median (absorb-only)")
    for letter in _LETTERS:
        with_policy = worst_responsiveness(baseline.atlas, letter)
        absorb_only = worst_responsiveness(absorb.atlas, letter)
        print(f"  {letter}       {with_policy:.2f}"
              f"                      {absorb_only:.2f}")
    # Withdrawals move traffic: flips collapse without them.
    flips_with = count_flips(baseline.atlas, "K").values.sum()
    flips_without = count_flips(absorb.atlas, "K").values.sum()
    print(f"  K site flips: {flips_with:.0f} with policies, "
          f"{flips_without:.0f} absorb-only")
    assert flips_without < flips_with
    assert not absorb.deployments["K"].policy_log
