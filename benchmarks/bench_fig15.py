"""Figure 15: .nl anycast nodes silenced by co-located stress."""

from repro.core import nl_event_minimum, nl_figure


def test_fig15_nl_collateral(benchmark, scenario):
    figure = benchmark(nl_figure, scenario.nl)
    print()
    print(figure.render())
    for node in scenario.nl.node_labels:
        print(
            f"  {node}: event minimum "
            f"{nl_event_minimum(scenario.nl, node):.2f} of median"
        )
    print("  paper: both co-located nodes show nearly no queries")
    assert nl_event_minimum(scenario.nl, "nl-anycast-1") < 0.3
    assert nl_event_minimum(scenario.nl, "nl-uni-1") > 0.6
