"""Figure 3: per-letter reachability, plus the section-3.2.1 R^2."""

from repro.core import (
    correlation_table,
    reachability_figure,
    sites_vs_resilience,
    worst_responsiveness,
)
from repro.rootdns import LETTERS_SPEC


def test_fig3_reachability(benchmark, cleaned):
    figure = benchmark(reachability_figure, cleaned)
    print()
    print(figure.render())
    worst = {L: worst_responsiveness(cleaned, L) for L in cleaned.letters}
    print("  worst/median per letter:",
          {L: round(w, 2) for L, w in sorted(worst.items())})
    print("  paper: B worst (unicast), then H; D/L/M flat")
    assert worst["B"] < worst["K"] < worst["L"]


def test_fig3_sites_vs_resilience_fit(benchmark, cleaned):
    site_counts = {L: s.n_sites for L, s in LETTERS_SPEC.items()}
    fit = benchmark(sites_vs_resilience, cleaned, site_counts)
    print()
    print(correlation_table(fit).render())
    print("  paper: R^2 = 0.87 between site count and responsiveness")
    assert fit.slope > 0
    assert fit.r_squared > 0.5
