"""Table 3: event-size estimates from RSSAC-002 reports."""

from repro.core import event_size_table
from repro.rootdns import ATTACKED_LETTERS, RSSAC_REPORTING_LETTERS


def _reports(scenario):
    return {L: scenario.rssac[L] for L in RSSAC_REPORTING_LETTERS}


def test_table3_nov30(benchmark, scenario):
    table = benchmark(
        event_size_table,
        _reports(scenario),
        ATTACKED_LETTERS,
        "2015-11-30",
        len(ATTACKED_LETTERS),
    )
    print()
    print(table.render())
    print("  paper: A 5.12 Mq/s; lower 8.32, scaled 20.8, upper 51.2 Mq/s")
    lower = table.row_for("lower")[1]
    upper = table.row_for("upper")[1]
    assert lower < upper
    assert table.row_for("A")[1] > table.row_for("H")[1]


def test_table3_dec1(benchmark, scenario):
    table = benchmark(
        event_size_table,
        _reports(scenario),
        ATTACKED_LETTERS,
        "2015-12-01",
        len(ATTACKED_LETTERS),
    )
    print()
    print(table.render())
    print("  paper: A 5.21 Mq/s; lower 8.94, scaled 22.4, upper 52.1 Mq/s")
