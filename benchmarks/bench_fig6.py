"""Figure 6: per-site catchment time series, E- and K-Root."""

from repro.core import critical_episodes, site_timeseries


def test_fig6_e_root(benchmark, cleaned):
    bundle = benchmark(site_timeseries, cleaned, "E", True)
    print()
    print(bundle.render())
    print("  paper: five E sites shut down after the Dec 1 event")


def test_fig6_k_root(benchmark, cleaned):
    bundle = benchmark(site_timeseries, cleaned, "K", True)
    print()
    print(bundle.render())
    episodes = critical_episodes(cleaned, "K")
    critical = sorted(s for s, mask in episodes.items() if mask.any())
    print("  sites with critical (below-half-median) episodes:", critical)
    assert any(s.startswith("K-LHR") for s in critical)
