"""Wall-time scaling of the simulation engine (fast-path acceptance).

Times :func:`repro.scenario.engine.simulate` end-to-end over a grid of
scenario sizes.  ``scripts/bench_report.py`` runs the same grid
standalone and records the numbers in ``BENCH_engine.json`` so the
speedup of the epoch-vectorized fast path is tracked in-repo.
"""

import pytest

from repro import ScenarioConfig, simulate

SIZES = [
    (200, 300),
    (200, 1500),
    (600, 300),
    (600, 1500),
]


@pytest.mark.parametrize("n_stubs,n_vps", SIZES)
def test_engine_scaling(benchmark, n_stubs, n_vps):
    result = benchmark.pedantic(
        lambda: simulate(
            ScenarioConfig(seed=1, n_stubs=n_stubs, n_vps=n_vps)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"  simulate(stubs={n_stubs}, vps={n_vps}): "
          f"{result.grid.n_bins} bins, {len(result.letters)} letters")
    assert result.truth
