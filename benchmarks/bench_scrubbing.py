"""Ablation: would a scrubbing service have helped the roots? (§2.2)

Sweeps the classifier's false-positive rate from HTTP-typical to
DNS-atypical and compares legitimate traffic served against plain
absorption -- quantifying the paper's explanation for why root
operators do not use commercial scrubbing.
"""

import numpy as np

from repro.defense import (
    ScrubbingService,
    legit_served_absorbing,
    legit_served_with_scrubbing,
)

SITE_CAPACITY = 300e3
ATTACK = 5e6
LEGIT = 40e3


def _sweep():
    rows = []
    for fp in np.linspace(0.0, 0.6, 13):
        service = ScrubbingService(
            capacity_qps=10e6,
            detection_rate=max(0.3, 0.95 - fp),
            false_positive_rate=float(fp),
        )
        rows.append(
            (
                float(fp),
                legit_served_with_scrubbing(
                    service, SITE_CAPACITY, ATTACK, LEGIT
                ),
            )
        )
    return rows


def test_scrubbing_sweep(benchmark):
    rows = benchmark(_sweep)
    absorbed = legit_served_absorbing(SITE_CAPACITY, ATTACK, LEGIT)
    print()
    print(f"  plain absorption serves {absorbed:.2f} of legit traffic")
    print("  false-positive rate -> legit served behind a scrubber")
    for fp, served in rows:
        marker = "  <- beats absorbing" if served > absorbed else ""
        print(f"    {fp:.2f} -> {served:.2f}{marker}")
    print("  paper: roots skip scrubbing; their workload classifies badly")
    assert rows[0][1] > absorbed          # a perfect scrubber helps
    assert rows[-1][1] < rows[0][1]       # an atypical mix erodes it
