"""Whole-root resilience: the redundancy the paper credits (§3.2.2).

Extension experiment: a recursive-resolver population rides through
the events; despite per-letter losses up to ~90 %, end users see
essentially no failures -- caching and cross-letter retry absorb the
damage, at the cost of extra lookup latency.
"""

import numpy as np

from repro.resolver import WholeRootConfig, run_whole_root


def test_whole_root_resilience(benchmark, scenario):
    config = WholeRootConfig(n_resolvers=100)
    outcome = benchmark.pedantic(
        run_whole_root,
        args=(scenario, config, np.random.default_rng(5)),
        rounds=2, iterations=1,
    )
    mask = scenario.event_mask()
    latency = outcome.mean_lookup_latency_ms
    quiet = float(np.nanmedian(latency[~mask]))
    during = float(np.nanmedian(latency[mask]))
    print()
    print(f"  end-user failure fraction: "
          f"{outcome.overall_failure_fraction():.5f}")
    print(f"  cache hit ratio: "
          f"{outcome.cache_hits.sum() / outcome.user_queries.sum():.3f}")
    print(f"  root-lookup latency: quiet {quiet:.0f} ms, "
          f"events {during:.0f} ms")
    print("  paper: 'no known reports of end-user visible errors'")
    assert outcome.overall_failure_fraction() < 0.01
    assert during > quiet
