"""Figure 5: per-site min/max catchment vs median, E- and K-Root."""

from repro.core import site_minmax, site_minmax_table


def test_fig5_e_root(benchmark, cleaned):
    table = benchmark(site_minmax_table, cleaned, "E")
    print()
    print(table.render())


def test_fig5_k_root(benchmark, cleaned):
    table = benchmark(site_minmax_table, cleaned, "K")
    print()
    print(table.render())
    stats = {s.site: s for s in site_minmax(cleaned, "K")}
    print("  paper: K-AMS gains (max>median); K-LHR nearly empties")
    assert stats["K-AMS"].max_normalized > 1.05
    assert stats["K-LHR"].min_normalized < 0.7
