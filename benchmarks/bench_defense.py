"""Automated defense comparison: the paper's §2.2/§5 future work.

Compares absorb-only, the historical 2015 per-site policies, a greedy
controller acting on operator-visible signals, and an oracle with
ground-truth attack knowledge, all against the same K-Root scenario.
"""

from repro import ScenarioConfig
from repro.defense import (
    GreedyShedController,
    NullController,
    OracleController,
    compare_controllers,
)


def test_defense_comparison(benchmark):
    base = ScenarioConfig(
        seed=11, n_stubs=250, n_vps=300, letters=("K",),
        include_nl=False,
    )
    table = benchmark.pedantic(
        compare_controllers,
        args=(
            base,
            "K",
            {
                "absorb-only": NullController,
                "static-2015": None,
                "greedy-shed": GreedyShedController,
                "oracle": OracleController,
            },
        ),
        rounds=1, iterations=1,
    )
    print()
    print(table.render())
    print("  paper §2.2: choosing the optimal strategy is hard for")
    print("  operators; absorption is a good default under uncertainty")
    greedy = table.row_for("greedy-shed")
    absorb = table.row_for("absorb-only")
    oracle = table.row_for("oracle")
    # Acting on visible-only signals can do real harm...
    assert greedy[3] <= absorb[3]
    # ...while even an oracle cannot beat absorption when the attack
    # overwhelms every site (the paper's case 5).
    assert abs(oracle[1] - absorb[1]) < 0.05
