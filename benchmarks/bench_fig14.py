"""Figure 14: collateral damage at D-Root sites."""

from repro.core import collateral_figure, collateral_sites


def test_fig14_droot_collateral(benchmark, cleaned):
    flagged = benchmark(collateral_sites, cleaned, "D")
    print()
    print(collateral_figure(cleaned, "D").render())
    for site in flagged:
        print(
            f"  {site.site}: median {site.median_vps:.0f} VPs, "
            f"event min {site.event_min_vps}, dip {site.dip_fraction:.0%}"
        )
    print("  paper: D-FRA and D-SYD dip >=10% although D was not attacked")
    names = {s.site for s in flagged}
    assert "D-FRA" in names
    assert "D-SYD" in names
