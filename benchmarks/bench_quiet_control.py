"""Control experiment: quiet days show no catchment variation (§3.3.1).

The paper repeated the Fig. 5 analysis over two normal days in the
following week and found *no* variation for K-Root's stable sites and
only minor variation for E-Root -- confirming the event-time swings
are event-driven.  Same check here, on the quiet preset.
"""

from repro import quiet_config, simulate
from repro.core import site_minmax


def test_quiet_days_control(benchmark):
    result = benchmark.pedantic(
        lambda: simulate(
            quiet_config(
                seed=3, n_stubs=300, n_vps=500, letters=("E", "K"),
                include_nl=False,
            )
        ),
        rounds=1, iterations=1,
    )
    print()
    for letter in ("E", "K"):
        stats = [
            s for s in site_minmax(result.atlas, letter) if s.stable
        ]
        low = min(s.min_normalized for s in stats)
        high = max(s.max_normalized for s in stats)
        print(
            f"  {letter}-Root stable sites on quiet days: "
            f"min/med >= {low:.2f}, max/med <= {high:.2f}"
        )
        # The paper: "no variation" for K, "mostly within 8%" for E.
        assert low > 0.9
        assert high < 1.1
    print("  paper: no variation for K, minor (within 8%) for E")
