"""Ablations: bufferbloat ceiling and RRL effectiveness."""

import numpy as np

from repro import ScenarioConfig, simulate
from repro.core import site_rtt_series
from repro.dns import suppression_fraction
from repro.netsim import OverloadModel


def _run(buffer_ms):
    return simulate(
        ScenarioConfig(
            seed=11, n_stubs=300, n_vps=500, letters=("K",),
            include_nl=False,
            overload=OverloadModel(buffer_ms=buffer_ms),
        )
    )


def test_ablation_bufferbloat(benchmark):
    deep = benchmark(_run, 1800.0)
    shallow = _run(100.0)
    print()
    for name, result in (("deep buffers", deep), ("shallow", shallow)):
        series = site_rtt_series(result.atlas, "K", "AMS")
        print(f"  {name}: K-AMS peak RTT "
              f"{float(np.nanmax(series.values)):.0f} ms")
    print("  paper attributes the 1-2 s RTTs to industrial bufferbloat;")
    print("  with shallow buffers overload shows as loss, not latency")
    deep_peak = float(np.nanmax(site_rtt_series(deep.atlas, "K", "AMS").values))
    shallow_peak = float(
        np.nanmax(site_rtt_series(shallow.atlas, "K", "AMS").values)
    )
    assert deep_peak > 4 * shallow_peak


def test_ablation_rrl(benchmark):
    duplicate_ratio = 0.68  # top 200 sources sent 68 % of queries

    def sweep():
        return [
            (eff, suppression_fraction(duplicate_ratio, eff))
            for eff in np.linspace(0.0, 1.0, 11)
        ]

    rows = benchmark(sweep)
    print()
    print("  RRL effectiveness -> fraction of responses suppressed")
    for eff, suppressed in rows:
        print(f"    {eff:.1f} -> {suppressed:.2f}")
    print("  paper: ~60 % of responses suppressed at A/J")
    assert any(abs(s - 0.6) < 0.05 for _, s in rows)
