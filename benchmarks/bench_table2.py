"""Table 2: sites per letter, deployed vs observed from the VPs."""

from repro.core import observed_sites_table
from repro.rootdns import LETTERS_SPEC


def test_table2_observed_sites(benchmark, cleaned):
    table = benchmark(observed_sites_table, cleaned)
    print()
    print(table.render())
    print("  paper reported sites:",
          {L: s.reported_sites for L, s in sorted(LETTERS_SPEC.items())})
    # Sanity: observed never exceeds deployed; both positive.
    for row in table.rows:
        assert 0 < row[2] <= row[1]
