"""Provisioning analysis: §5's capacity-vs-placement point.

Computes, from the simulated event, the upgrade plan each letter
would have needed to absorb its observed peak loads -- and contrasts
aggregate utilisation against the worst single site.
"""

from repro.defense import (
    aggregate_vs_placed,
    provisioning_plan,
    provisioning_table,
)


def test_provisioning_k_root(benchmark, scenario):
    plan = benchmark(
        provisioning_plan, scenario.deployments["K"], scenario.truth["K"]
    )
    print()
    print(provisioning_table(plan).render())
    aggregate, worst = aggregate_vs_placed(
        scenario.deployments["K"], scenario.truth["K"]
    )
    print(f"  peak aggregate utilisation: {aggregate:.2f}")
    print(f"  worst single-site utilisation: {worst:.2f}")
    print("  paper §5: aggregate capacity is not enough when attackers")
    print("  are unevenly distributed across catchments")
    assert worst > aggregate
    assert plan.total_extra_servers > 0
