"""Figure 11: per-VP site timelines and behaviour groups."""

import numpy as np

from repro.core import behaviour_census, vp_timelines
from repro.util import EVENT_1

_GLYPH = {"LHR": "L", "FRA": "F", "AMS": "A", None: "."}


def test_fig11_vp_timelines(benchmark, cleaned):
    timelines = benchmark(
        vp_timelines, cleaned, "K", ["LHR", "FRA"], EVENT_1, 300,
        np.random.default_rng(0),
    )
    census = behaviour_census(timelines)
    print()
    print("  behaviour census of K-LHR/K-FRA VPs around event 1:")
    for behavior, count in census.most_common():
        print(f"    {behavior:<14} {count:>4}")
    print("  paper groups: stuck / shift+return / shift+stay / failed")
    # Render a few rows like Fig. 11 (one char per bin).
    print("  sample timelines (L=LHR F=FRA A=AMS *=other .=no reply):")
    for timeline in timelines[:8]:
        row = "".join(
            _GLYPH.get(site, "*") for site in timeline.sites[:144]
        )
        print(f"    vp{timeline.vp_id:<6} {timeline.behavior:<13} {row}")
    assert census.get("shift+return", 0) > 0
    assert census.get("stuck", 0) > 0
