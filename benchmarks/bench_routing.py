"""Routing-kernel wall time under route churn -> BENCH_routing.json.

Three measurements, all on the same flapping-origin schedule (the
workload BgpSessionReset faults and withdraw/absorber policies create,
where every bin needs a fresh propagation):

* ``reference`` -- the scalar BFS in ``repro.netsim.bgp_reference``;
* ``kernel`` -- the array kernel in ``repro.netsim.bgp`` over the
  compiled CSR view (the acceptance target is >= 5x on >= 500 ASes);
* ``cache_hit`` -- :meth:`AnycastPrefix.routing` cycling through
  recurring announcement states, i.e. the per-bin fast path.

Plus one end-to-end scenario with BgpSessionReset + PeerChurn faults,
run once with the reference propagate patched in (the pre-kernel
baseline) and once with the kernel, asserting bit-identical result
arrays and recording the wall-time improvement.

Plus ``delta_churn`` -- internet-scale rows (50k and 100k ASes from
the as-rel2 synthetic generator): a 24-state DDoS-flap schedule
(single-neighbor export blocks on global sites, local-site flaps, one
full site outage and recovery) propagated once per state with the full
kernel and once via :func:`~repro.netsim.bgp.propagate_delta` chained
from the previous state, asserting bit-identical tables per step and
recording the per-change speedup (acceptance floor: >= 5x on the
largest row).

Every reference-vs-kernel propagation pair is checked for equality
(same tables, same iteration order); ``--smoke`` shrinks the sizes for
CI, where only the equality assertions matter, and skips the speedup
floors.

Usage::

    PYTHONPATH=src python benchmarks/bench_routing.py \
        [--out BENCH_routing.json] [--propagations 24] [--stubs 3000] \
        [--smoke]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time

import numpy as np

from repro import ScenarioConfig, simulate
from repro.faults import BgpSessionReset, FaultPlan, PeerChurn
from repro.netsim import anycast as anycast_module
from repro.netsim import bgp, bgp_reference
from repro.netsim.anycast import AnycastPrefix
from repro.netsim.asgraph import AsRole
from repro.netsim.bgp import Origin, Scope
from repro.netsim.topology import (
    AsRelTopologyConfig,
    TopologyConfig,
    build_internet_graph,
    build_topology,
    synthetic_location,
)
from repro.rootdns.deployment import build_deployments
from repro.rootdns.letters import LETTERS_SPEC
from repro.scenario import diff_arrays, result_arrays
from repro.util.rng import component_rng
from repro.util.timegrid import EVENT_WINDOW_START as W

# The host-metadata block is shared with every other BENCH_* writer;
# it lives in scripts/bench_report.py, outside the package tree.
sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "scripts"),
)
from bench_report import host_metadata  # noqa: E402

#: The churned letter: K has the most global sites, so withdrawals
#: reshuffle the largest catchments.
LETTER = "K"


def churn_states(prefix: AnycastPrefix) -> list:
    """Distinct announcement states of a flapping-origin schedule.

    Cycles a withdrawn site and a partially-blocked site around the
    deployment, so consecutive states differ and nothing is a cache
    hit -- every state costs one full propagation.
    """
    sites = sorted(prefix.announced_sites())
    graph = prefix.graph
    states = []
    for step in range(len(sites)):
        down = sites[step % len(sites)]
        blocked_site = sites[(step + 1) % len(sites)]
        origins = []
        for code in sites:
            if code == down:
                continue
            origin = prefix.origin(code)
            if code == blocked_site:
                neighbors = sorted(graph.neighbors(origin.asn))
                origin = origin.with_blocked(
                    frozenset(neighbors[: len(neighbors) // 2])
                )
            origins.append(origin)
        states.append(origins)
    return states


def ddos_flap_schedule(
    graph, sites: list[Origin], steps: int, rng_seed: int = 11
) -> list[tuple[str, Origin]]:
    """The Nov-2015-shaped churn schedule the delta path is built for.

    Mostly small events -- one global site toggling export to a single
    upstream (partial reachability under attack), local sites flapping
    in and out -- plus one full outage of a victim site a third of the
    way in and its recovery at two thirds.
    """
    base = {o.site: o for o in sites}
    rng = np.random.default_rng(rng_seed)
    schedule: list[tuple[str, Origin]] = []
    current = dict(base)
    victim = sites[0].site
    for step in range(steps):
        if step == steps // 3:
            schedule.append(("withdraw", base[victim]))
            del current[victim]
            continue
        if step == 2 * steps // 3:
            schedule.append(("announce", base[victim]))
            current[victim] = base[victim]
            continue
        site = sites[int(rng.integers(0, len(sites)))].site
        if site == victim and site not in current:
            site = sites[1].site
        origin = current.get(site, base[site])
        if site not in current:
            schedule.append(("announce", base[site]))
            current[site] = base[site]
            continue
        if origin.scope is Scope.LOCAL:
            schedule.append(("withdraw", origin))
            del current[site]
            continue
        neighbors = sorted(graph.neighbors(origin.asn))
        pick = neighbors[int(rng.integers(0, len(neighbors)))]
        if pick in origin.blocked_neighbors:
            flipped = origin.with_blocked(
                origin.blocked_neighbors - {pick}
            )
        else:
            flipped = origin.with_blocked(
                origin.blocked_neighbors | {pick}
            )
        schedule.append(("announce", flipped))
        current[site] = flipped
    return schedule


def transit_hosted_sites(graph, n_sites: int) -> list[Origin]:
    """Anycast origins on moderate-degree transit ASes.

    Root-letter sites peer widely but are not tier-1 cores; hosting on
    15-40-degree transit ASes (every third site local-scope) mirrors
    that.  Deterministic: hosts come from the sorted AS list at a
    fixed stride.
    """
    mid = sorted(
        node.asn
        for node in graph.nodes()
        if node.role is AsRole.TRANSIT
        and 15 <= len(graph.neighbors(node.asn)) <= 40
    )
    hosts = mid[10::60][:n_sites]
    if len(hosts) < n_sites:
        hosts = mid[:n_sites]
    return [
        Origin(
            site=f"S{i:02d}",
            asn=asn,
            scope=Scope.LOCAL if i % 3 == 2 else Scope.GLOBAL,
            location=synthetic_location(asn),
        )
        for i, asn in enumerate(hosts)
    ]


def bench_delta_churn(
    n_ases: int, n_sites: int, steps: int, repeat: int
) -> dict:
    """Full kernel vs chained delta on one churn schedule.

    Both passes walk the same announce/withdraw schedule; the full
    pass propagates every state from scratch (canonical site-sorted
    origin order -- the order the delta path reproduces), the delta
    pass derives each table from the previous one.  Every step is
    asserted bit-identical.  Per-step wall time is the best of
    *repeat* runs (both passes), which strips scheduler noise without
    favouring either side.
    """
    graph = build_internet_graph(AsRelTopologyConfig(n_ases=n_ases, seed=7))
    sites = transit_hosted_sites(graph, n_sites)
    base = {o.site: o for o in sites}
    schedule = ddos_flap_schedule(graph, sites, steps)

    # Warm both code paths (CSR compile, distance rows, allocator).
    warm = bgp.propagate(graph, list(base.values()))
    bgp.propagate_delta(graph, warm, announce=[sites[1]])

    state = dict(base)
    full_tables = []
    full_wall = 0.0
    for op, origin in schedule:
        if op == "withdraw":
            del state[origin.site]
        else:
            state[origin.site] = origin
        origins = [state[s] for s in sorted(state)]
        best = None
        for _ in range(repeat):
            started = time.perf_counter()
            table = bgp.propagate(graph, origins)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None or elapsed < best else best
        full_tables.append(table)
        full_wall += best

    for key in bgp.DELTA_STATS:
        bgp.DELTA_STATS[key] = 0
    table = bgp.propagate(graph, list(base.values()))
    delta_wall = 0.0
    for step, (op, origin) in enumerate(schedule):
        best = None
        for _ in range(repeat):
            started = time.perf_counter()
            if op == "withdraw":
                derived = bgp.propagate_delta(
                    graph, table, withdraw=[origin.site]
                )
            else:
                derived = bgp.propagate_delta(
                    graph, table, announce=[origin]
                )
            elapsed = time.perf_counter() - started
            best = elapsed if best is None or elapsed < best else best
        table = derived
        delta_wall += best
        assert not table.changes_from(full_tables[step]), (
            f"delta diverged from full propagation at step {step}"
        )

    return {
        "n_ases": n_ases,
        "n_sites": n_sites,
        "steps": steps,
        "timing": f"best of {repeat} per step",
        "full_wall_s": round(full_wall, 4),
        "delta_wall_s": round(delta_wall, 4),
        "delta_speedup": round(full_wall / delta_wall, 2),
        "tables_identical": True,
        "delta_stats": dict(bgp.DELTA_STATS),
    }


def assert_equal_tables(kernel_table, ref_table) -> None:
    kernel_routes = kernel_table._routes
    ref_routes = ref_table._routes
    assert list(kernel_routes) == list(ref_routes), "install order differs"
    assert kernel_routes == ref_routes, "routes differ"


def bench_propagations(
    stubs: int, propagations: int, check_every: int
) -> dict:
    topology = build_topology(
        TopologyConfig(n_stubs=stubs), component_rng(1, "topology")
    )
    deployment = build_deployments(
        topology, letters={LETTER: LETTERS_SPEC[LETTER]}
    )[LETTER]
    graph = topology.graph
    states = churn_states(deployment.prefix)
    schedule = [states[i % len(states)] for i in range(propagations)]

    # Warm the per-graph memos (distance rows, CSR view) so neither
    # implementation pays one-off setup inside its timed loop.
    bgp_reference.propagate(graph, schedule[0])
    bgp.propagate(graph, schedule[0])

    started = time.perf_counter()
    ref_tables = [bgp_reference.propagate(graph, s) for s in schedule]
    ref_wall = time.perf_counter() - started

    started = time.perf_counter()
    kernel_tables = [bgp.propagate(graph, s) for s in schedule]
    kernel_wall = time.perf_counter() - started

    for i in range(0, propagations, check_every):
        assert_equal_tables(kernel_tables[i], ref_tables[i])

    # Cache-hit path: the same announcement states recur (policy loops
    # flap one site), so routing() serves LRU hits after the first lap.
    flapped = sorted(deployment.prefix.announced_sites())[0]
    deployment.prefix.routing()
    deployment.prefix.withdraw(flapped, timestamp=0.0)
    deployment.prefix.routing()
    deployment.prefix.announce(flapped, timestamp=1.0)
    started = time.perf_counter()
    for step in range(propagations):
        deployment.prefix.set_announced(
            flapped, up=bool(step % 2), timestamp=float(step + 2)
        )
        deployment.prefix.routing()
    cache_wall = time.perf_counter() - started

    return {
        "n_ases": len(graph),
        "n_sites": len(deployment.site_order),
        "propagations": propagations,
        "reference_wall_s": round(ref_wall, 4),
        "kernel_wall_s": round(kernel_wall, 4),
        "cache_hit_wall_s": round(cache_wall, 4),
        "kernel_speedup": round(ref_wall / kernel_wall, 2),
        "tables_identical": True,
    }


def bench_faulted_scenario(stubs: int, vps: int) -> dict:
    hour = 3600
    resets = tuple(
        BgpSessionReset(
            letter=LETTER,
            site=site,
            start=W + (3 + 4 * i) * hour,
            duration_s=1800,
        )
        for i, site in enumerate(("AMS", "LHR", "FRA", "MIA", "VIE"))
    )
    plan = FaultPlan(
        specs=resets
        + (PeerChurn(start=W + 6 * hour, duration_s=2 * hour, fraction=0.5),)
    )
    config = ScenarioConfig(
        seed=7, n_stubs=stubs, n_vps=vps, letters=("A", LETTER),
        faults=plan,
    )

    def timed_run():
        started = time.perf_counter()
        result = simulate(config)
        return time.perf_counter() - started, result_arrays(result)

    original = anycast_module.propagate
    anycast_module.propagate = bgp_reference.propagate
    try:
        ref_wall, ref_arrays = timed_run()
    finally:
        anycast_module.propagate = original
    kernel_wall, kernel_arrays = timed_run()

    differences = diff_arrays(ref_arrays, kernel_arrays)
    assert not differences, f"faulted outputs diverged: {differences}"
    return {
        "n_stubs": stubs,
        "n_vps": vps,
        "letters": ["A", LETTER],
        "faults": "5x BgpSessionReset + PeerChurn",
        "reference_wall_s": round(ref_wall, 3),
        "kernel_wall_s": round(kernel_wall, 3),
        "speedup": round(ref_wall / kernel_wall, 2),
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_routing.json")
    parser.add_argument("--propagations", type=int, default=24)
    parser.add_argument("--stubs", type=int, default=3000)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes; assert equality only, no speedup floor",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        stubs, propagations, check_every = 40, 6, 1
        e2e_stubs, e2e_vps = 60, 40
    else:
        stubs, propagations, check_every = args.stubs, args.propagations, 4
        e2e_stubs, e2e_vps = 600, 200

    churn = bench_propagations(stubs, propagations, check_every)
    print(
        f"churn: {churn['n_ases']} ASes, "
        f"reference {churn['reference_wall_s']}s, "
        f"kernel {churn['kernel_wall_s']}s "
        f"({churn['kernel_speedup']}x), "
        f"cache-hit {churn['cache_hit_wall_s']}s",
        file=sys.stderr,
    )
    if not args.smoke:
        assert churn["n_ases"] >= 500, "churn bench needs >= 500 ASes"
        assert churn["kernel_speedup"] >= 5.0, (
            f"kernel speedup {churn['kernel_speedup']}x below the 5x floor"
        )

    faulted = bench_faulted_scenario(e2e_stubs, e2e_vps)
    print(
        f"faulted e2e: reference {faulted['reference_wall_s']}s, "
        f"kernel {faulted['kernel_wall_s']}s ({faulted['speedup']}x)",
        file=sys.stderr,
    )

    if args.smoke:
        delta_sizes = [(600, 8, 10, 1)]
    else:
        delta_sizes = [(50_000, 24, 24, 3), (100_000, 32, 24, 3)]
    delta_rows = []
    for n_ases, n_sites, steps, repeat in delta_sizes:
        row = bench_delta_churn(n_ases, n_sites, steps, repeat)
        delta_rows.append(row)
        print(
            f"delta churn: {row['n_ases']} ASes x {row['steps']} states, "
            f"full {row['full_wall_s']}s, delta {row['delta_wall_s']}s "
            f"({row['delta_speedup']}x)",
            file=sys.stderr,
        )
    if not args.smoke:
        top = delta_rows[-1]
        assert top["n_ases"] >= 50_000, "delta bench needs a >=50k-AS row"
        assert top["delta_speedup"] >= 5.0, (
            f"churn-delta speedup {top['delta_speedup']}x below the "
            "5x floor"
        )

    payload = {
        "generated": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "host": host_metadata(),
        "note": (
            "churn = N distinct announcement states propagated "
            "back-to-back (reference vs array kernel vs LRU cache "
            "hits); faulted_e2e = one scenario with per-bin BGP "
            "session flaps, run with each propagate implementation "
            "and asserted bit-identical; delta_churn = as-rel2 "
            "synthetic internet graphs, full kernel per state vs "
            "propagate_delta chained state-to-state on a DDoS-flap "
            "schedule, bit-identical per step"
        ),
        "smoke": args.smoke,
        "churn": churn,
        "faulted_e2e": faulted,
        "delta_churn": delta_rows,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
