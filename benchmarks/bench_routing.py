"""Routing-kernel wall time under route churn -> BENCH_routing.json.

Three measurements, all on the same flapping-origin schedule (the
workload BgpSessionReset faults and withdraw/absorber policies create,
where every bin needs a fresh propagation):

* ``reference`` -- the scalar BFS in ``repro.netsim.bgp_reference``;
* ``kernel`` -- the array kernel in ``repro.netsim.bgp`` over the
  compiled CSR view (the acceptance target is >= 5x on >= 500 ASes);
* ``cache_hit`` -- :meth:`AnycastPrefix.routing` cycling through
  recurring announcement states, i.e. the per-bin fast path.

Plus one end-to-end scenario with BgpSessionReset + PeerChurn faults,
run once with the reference propagate patched in (the pre-kernel
baseline) and once with the kernel, asserting bit-identical result
arrays and recording the wall-time improvement.

Every reference-vs-kernel propagation pair is checked for equality
(same tables, same iteration order); ``--smoke`` shrinks the sizes for
CI, where only the equality assertions matter, and skips the speedup
floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_routing.py \
        [--out BENCH_routing.json] [--propagations 24] [--stubs 3000] \
        [--smoke]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time

from repro import ScenarioConfig, simulate
from repro.faults import BgpSessionReset, FaultPlan, PeerChurn
from repro.netsim import anycast as anycast_module
from repro.netsim import bgp, bgp_reference
from repro.netsim.anycast import AnycastPrefix
from repro.netsim.topology import TopologyConfig, build_topology
from repro.rootdns.deployment import build_deployments
from repro.rootdns.letters import LETTERS_SPEC
from repro.scenario import diff_arrays, result_arrays
from repro.util.rng import component_rng
from repro.util.timegrid import EVENT_WINDOW_START as W

#: The churned letter: K has the most global sites, so withdrawals
#: reshuffle the largest catchments.
LETTER = "K"


def churn_states(prefix: AnycastPrefix) -> list:
    """Distinct announcement states of a flapping-origin schedule.

    Cycles a withdrawn site and a partially-blocked site around the
    deployment, so consecutive states differ and nothing is a cache
    hit -- every state costs one full propagation.
    """
    sites = sorted(prefix.announced_sites())
    graph = prefix.graph
    states = []
    for step in range(len(sites)):
        down = sites[step % len(sites)]
        blocked_site = sites[(step + 1) % len(sites)]
        origins = []
        for code in sites:
            if code == down:
                continue
            origin = prefix.origin(code)
            if code == blocked_site:
                neighbors = sorted(graph.neighbors(origin.asn))
                origin = origin.with_blocked(
                    frozenset(neighbors[: len(neighbors) // 2])
                )
            origins.append(origin)
        states.append(origins)
    return states


def assert_equal_tables(kernel_table, ref_table) -> None:
    kernel_routes = kernel_table._routes
    ref_routes = ref_table._routes
    assert list(kernel_routes) == list(ref_routes), "install order differs"
    assert kernel_routes == ref_routes, "routes differ"


def bench_propagations(
    stubs: int, propagations: int, check_every: int
) -> dict:
    topology = build_topology(
        TopologyConfig(n_stubs=stubs), component_rng(1, "topology")
    )
    deployment = build_deployments(
        topology, letters={LETTER: LETTERS_SPEC[LETTER]}
    )[LETTER]
    graph = topology.graph
    states = churn_states(deployment.prefix)
    schedule = [states[i % len(states)] for i in range(propagations)]

    # Warm the per-graph memos (distance rows, CSR view) so neither
    # implementation pays one-off setup inside its timed loop.
    bgp_reference.propagate(graph, schedule[0])
    bgp.propagate(graph, schedule[0])

    started = time.perf_counter()
    ref_tables = [bgp_reference.propagate(graph, s) for s in schedule]
    ref_wall = time.perf_counter() - started

    started = time.perf_counter()
    kernel_tables = [bgp.propagate(graph, s) for s in schedule]
    kernel_wall = time.perf_counter() - started

    for i in range(0, propagations, check_every):
        assert_equal_tables(kernel_tables[i], ref_tables[i])

    # Cache-hit path: the same announcement states recur (policy loops
    # flap one site), so routing() serves LRU hits after the first lap.
    flapped = sorted(deployment.prefix.announced_sites())[0]
    deployment.prefix.routing()
    deployment.prefix.withdraw(flapped, timestamp=0.0)
    deployment.prefix.routing()
    deployment.prefix.announce(flapped, timestamp=1.0)
    started = time.perf_counter()
    for step in range(propagations):
        deployment.prefix.set_announced(
            flapped, up=bool(step % 2), timestamp=float(step + 2)
        )
        deployment.prefix.routing()
    cache_wall = time.perf_counter() - started

    return {
        "n_ases": len(graph),
        "n_sites": len(deployment.site_order),
        "propagations": propagations,
        "reference_wall_s": round(ref_wall, 4),
        "kernel_wall_s": round(kernel_wall, 4),
        "cache_hit_wall_s": round(cache_wall, 4),
        "kernel_speedup": round(ref_wall / kernel_wall, 2),
        "tables_identical": True,
    }


def bench_faulted_scenario(stubs: int, vps: int) -> dict:
    hour = 3600
    resets = tuple(
        BgpSessionReset(
            letter=LETTER,
            site=site,
            start=W + (3 + 4 * i) * hour,
            duration_s=1800,
        )
        for i, site in enumerate(("AMS", "LHR", "FRA", "MIA", "VIE"))
    )
    plan = FaultPlan(
        specs=resets
        + (PeerChurn(start=W + 6 * hour, duration_s=2 * hour, fraction=0.5),)
    )
    config = ScenarioConfig(
        seed=7, n_stubs=stubs, n_vps=vps, letters=("A", LETTER),
        faults=plan,
    )

    def timed_run():
        started = time.perf_counter()
        result = simulate(config)
        return time.perf_counter() - started, result_arrays(result)

    original = anycast_module.propagate
    anycast_module.propagate = bgp_reference.propagate
    try:
        ref_wall, ref_arrays = timed_run()
    finally:
        anycast_module.propagate = original
    kernel_wall, kernel_arrays = timed_run()

    differences = diff_arrays(ref_arrays, kernel_arrays)
    assert not differences, f"faulted outputs diverged: {differences}"
    return {
        "n_stubs": stubs,
        "n_vps": vps,
        "letters": ["A", LETTER],
        "faults": "5x BgpSessionReset + PeerChurn",
        "reference_wall_s": round(ref_wall, 3),
        "kernel_wall_s": round(kernel_wall, 3),
        "speedup": round(ref_wall / kernel_wall, 2),
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_routing.json")
    parser.add_argument("--propagations", type=int, default=24)
    parser.add_argument("--stubs", type=int, default=3000)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes; assert equality only, no speedup floor",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        stubs, propagations, check_every = 40, 6, 1
        e2e_stubs, e2e_vps = 60, 40
    else:
        stubs, propagations, check_every = args.stubs, args.propagations, 4
        e2e_stubs, e2e_vps = 600, 200

    churn = bench_propagations(stubs, propagations, check_every)
    print(
        f"churn: {churn['n_ases']} ASes, "
        f"reference {churn['reference_wall_s']}s, "
        f"kernel {churn['kernel_wall_s']}s "
        f"({churn['kernel_speedup']}x), "
        f"cache-hit {churn['cache_hit_wall_s']}s",
        file=sys.stderr,
    )
    if not args.smoke:
        assert churn["n_ases"] >= 500, "churn bench needs >= 500 ASes"
        assert churn["kernel_speedup"] >= 5.0, (
            f"kernel speedup {churn['kernel_speedup']}x below the 5x floor"
        )

    faulted = bench_faulted_scenario(e2e_stubs, e2e_vps)
    print(
        f"faulted e2e: reference {faulted['reference_wall_s']}s, "
        f"kernel {faulted['kernel_wall_s']}s ({faulted['speedup']}x)",
        file=sys.stderr,
    )

    payload = {
        "generated": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count(),
        },
        "note": (
            "churn = N distinct announcement states propagated "
            "back-to-back (reference vs array kernel vs LRU cache "
            "hits); faulted_e2e = one scenario with per-bin BGP "
            "session flaps, run with each propagate implementation "
            "and asserted bit-identical"
        ),
        "smoke": args.smoke,
        "churn": churn,
        "faulted_e2e": faulted,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
