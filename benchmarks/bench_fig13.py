"""Figure 13: per-server median RTT at K-FRA and K-NRT."""

from repro.core import server_rtt_series


def test_fig13_k_fra(benchmark, cleaned):
    figure = benchmark(server_rtt_series, cleaned, "K", "FRA")
    print()
    print(figure.render())
    print("  paper: K-FRA's surviving server keeps stable latency")


def test_fig13_k_nrt(benchmark, cleaned):
    figure = benchmark(server_rtt_series, cleaned, "K", "NRT")
    print()
    print(figure.render())
    print("  paper: K-NRT queues deeply; K-NRT-S2 worse than siblings")
    hot = figure.get("K-NRT-S2")
    cool = figure.get("K-NRT-S1")
    assert hot.at_hour(8.0) > cool.at_hour(8.0)
