"""Figure 4: per-letter median RTT of successful queries."""

from repro.core import rtt_figure, rtt_significantly_changed


def test_fig4_letter_rtt(benchmark, cleaned):
    changed = [
        L for L in sorted(cleaned.letters)
        if rtt_significantly_changed(cleaned, L)
    ]
    figure = benchmark(rtt_figure, cleaned, changed)
    print()
    print(figure.render())
    print("  letters with significant RTT change:", changed)
    print("  paper: B, C, G, H, K change; A/D/E/F/I/J/L/M omitted")
    assert "H" in changed
    assert "K" in changed
    assert "L" not in changed
