"""Generalisation: the 2016-06-25 follow-up event (§2.3).

Same analysis pipeline, different event: twice the rate, varied query
names, a different window.  The operational picture -- who dips, who
rides it out -- has the same structure.
"""

from repro import june2016_config, simulate
from repro.core import clean_dataset, worst_responsiveness


def test_june2016_event(benchmark):
    result = benchmark.pedantic(
        lambda: simulate(
            june2016_config(
                seed=3, n_stubs=250, n_vps=400,
                letters=("B", "H", "K", "L"), include_nl=False,
            )
        ),
        rounds=1, iterations=1,
    )
    dataset, _ = clean_dataset(result.atlas)
    print()
    for letter in result.letters:
        print(f"  {letter} worst/median: "
          f"{worst_responsiveness(dataset, letter):.2f}")
    print("  paper §2.3: later events differ in details but pose the")
    print("  same operational choices")
    assert worst_responsiveness(dataset, "B") < 0.3
    assert worst_responsiveness(dataset, "L") > 0.9
