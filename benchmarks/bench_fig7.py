"""Figure 7: median RTT for stressed K-Root sites."""

import numpy as np

from repro.core import site_rtt_figure


def test_fig7_k_site_rtt(benchmark, cleaned):
    figure = benchmark(
        site_rtt_figure, cleaned, "K", ["AMS", "NRT", "LHR", "FRA"]
    )
    print()
    print(figure.render())
    print("  paper: K-AMS ~30 ms to 1-2 s; K-NRT 80 ms to 1-1.7 s")
    ams = figure.get("K-AMS")
    assert float(np.nanmax(ams.values)) > 800.0
    assert ams.at_hour(20.0) < 150.0
