"""Figure 8: site flips per letter."""

from repro.core import count_flips, flips_figure


def test_fig8_site_flips(benchmark, cleaned):
    letters = [L for L in sorted(cleaned.letters) if L not in "AB"]
    figure = benchmark(flips_figure, cleaned, letters)
    print()
    print(figure.render())
    print("  paper: bursts of flips during both events; E/H/K see many")
    k = count_flips(cleaned, "K")
    # Flips cluster in the events plus the post-event restores; allow
    # a two-hour tail after each event window.
    import numpy as np

    event_mask = cleaned.grid.event_mask()
    dilated = event_mask.copy()
    for shift in range(1, 13):
        dilated[shift:] |= event_mask[:-shift]
    assert k.values[dilated].sum() > 3 * k.values[~dilated].sum()
