"""Shared benchmark fixtures: one reference scenario per session.

The benchmark scenario is larger than the test one (1500 VPs over 600
stub ASes) so per-site statistics are stable; it still simulates in
well under a minute.  Every bench prints the table/figure it
regenerates, so a ``pytest benchmarks/ --benchmark-only -s`` run doubles
as the experiment log behind EXPERIMENTS.md.
"""

import pytest

from repro import ScenarioConfig, simulate
from repro.core import clean_dataset


@pytest.fixture(scope="session")
def scenario():
    """The reference Nov/Dec 2015 scenario used by all benches."""
    return simulate(ScenarioConfig(seed=42, n_stubs=600, n_vps=1500))


@pytest.fixture(scope="session")
def cleaned(scenario):
    """The cleaned Atlas dataset (section 2.4.1 pipeline applied)."""
    dataset, _ = clean_dataset(scenario.atlas)
    return dataset
