"""Figure 9: BGP route changes per letter (BGPmon collectors)."""

from repro.core import letters_with_event_churn, route_change_series


def test_fig9_route_changes(benchmark, scenario):
    figure = benchmark(
        route_change_series, scenario.route_changes, scenario.grid
    )
    print()
    print(figure.render())
    churners = letters_with_event_churn(
        scenario.route_changes, scenario.grid
    )
    print("  letters with event-driven churn:", churners)
    print("  paper: C, E, F, G, H, J, K show event-driven route changes")
    assert set("EHK") <= set(churners)
    assert set(churners).isdisjoint(set("DLM"))
