"""Figure 12: per-server reachability at K-FRA and K-NRT."""

from repro.core import (
    answering_servers_per_bin,
    server_reachability,
    shed_detected,
)


def test_fig12_k_fra_shed(benchmark, cleaned):
    figure = benchmark(server_reachability, cleaned, "K", "FRA")
    print()
    print(figure.render())
    print("  paper: replies collapse onto one (different) server per event")
    assert shed_detected(cleaned, "K", "FRA", (6.8, 9.5))


def test_fig12_k_nrt_all_degrade(benchmark, cleaned):
    figure = benchmark(server_reachability, cleaned, "K", "NRT")
    print()
    print(figure.render())
    series = answering_servers_per_bin(cleaned, "K", "NRT")
    print("  paper: all three K-NRT servers answer, degraded")
    assert series.at_hour(8.0) >= 2
