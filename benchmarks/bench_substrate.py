"""Substrate performance: BGP propagation and the full event engine."""

import numpy as np

from repro import ScenarioConfig, simulate
from repro.netsim import (
    Origin,
    Scope,
    TopologyConfig,
    build_topology,
    propagate,
)
from repro.util import airport


def test_bgp_propagation_speed(benchmark):
    topo = build_topology(TopologyConfig(n_stubs=1000),
                          np.random.default_rng(0))
    origins = []
    for code in (("AMS", "LHR", "FRA", "IAD", "NRT", "SYD")):
        asn = topo.add_site_host(
            f"X-{code}", airport(code).location, scope=Scope.GLOBAL
        )
        origins.append(
            Origin(site=code, asn=asn, location=airport(code).location)
        )
    table = benchmark(propagate, topo.graph, origins)
    assert len(table) > 1000
    print()
    print(f"  propagated over {len(topo.graph)} ASes; "
          f"{len(table)} hold routes")


def test_full_scenario_speed(benchmark):
    result = benchmark.pedantic(
        lambda: simulate(
            ScenarioConfig(seed=1, n_stubs=200, n_vps=300,
                           letters=("B", "K"), include_nl=False)
        ),
        rounds=3, iterations=1,
    )
    assert result.atlas.letter("K").n_bins == 288
    print()
    print("  two-day, two-letter scenario on 200 stub ASes / 300 VPs")
