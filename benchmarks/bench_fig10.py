"""Figure 10: flip destinations for K-LHR and K-FRA."""

from repro.core import flip_destinations


def test_fig10_flip_destinations(benchmark, cleaned):
    event1 = (6.8, 9.5)
    dest_lhr = benchmark(
        flip_destinations, cleaned, "K", "LHR", event1
    )
    dest_fra = flip_destinations(cleaned, "K", "FRA", event1)
    print()
    for origin, dest in (("K-LHR", dest_lhr), ("K-FRA", dest_fra)):
        total = sum(dest.values())
        print(f"  {origin} VPs during event 1:")
        for site, count in dest.most_common():
            print(f"    -> {site:<18} {count:>4}  ({count / total:.0%})")
    print("  paper: 70-80% of shifting VPs land on K-AMS, then return")
    moved = {
        s: c for s, c in dest_lhr.items()
        if "stuck" not in s and s != "(no reply)"
    }
    assert moved.get("K-AMS", 0) / max(sum(moved.values()), 1) > 0.5
