"""Section 2.2: the withdraw-vs-absorb policy space."""

import numpy as np

from repro.core import (
    best_withdrawal,
    classify_case,
    default_assignment,
    expected_happiness,
    figure2_model,
    happiness,
    optimal_assignment,
)


def _sweep():
    rows = []
    for a in np.linspace(0.25, 12.0, 48):
        model = figure2_model(a, a)
        case = classify_case(a, a)
        do_nothing = happiness(model, default_assignment(model))
        _, withdraw = best_withdrawal(model)
        _, optimal = optimal_assignment(model)
        rows.append((float(a), case, do_nothing, withdraw, optimal))
    return rows


def test_policy_sweep(benchmark):
    rows = benchmark(_sweep)
    print()
    print("  A0=A1   case  absorb  withdraw  optimal (expected)")
    last_case = None
    for a, case, nothing, withdraw, optimal in rows:
        if case != last_case:
            print(
                f"  {a:5.2f}    {case}      {nothing}        {withdraw}"
                f"        {optimal} ({expected_happiness(case)})"
            )
            last_case = case
    for a, case, nothing, withdraw, optimal in rows:
        assert optimal == expected_happiness(case)
        assert nothing <= withdraw <= optimal
