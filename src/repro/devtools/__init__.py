"""Static-analysis tooling enforcing this repo's determinism invariants.

The whole value of the reproduction is bit-identical, seeded re-runs
(the golden-equivalence fixture guards it), but the invariants that
make that true -- no global RNG, no wall-clock reads, no ``id()``-keyed
caches, no draw-order-sensitive set iteration -- used to live only in
code comments and reviewer memory.  PR 1 fixed a real GC-aliasing
``id(table)`` cache bug of exactly this class.  This package encodes
those invariants as machine-checked rules, at two granularities.

Per-file AST rules (``python -m repro.devtools.lint src tests``):

=========  ==========================================================
DET001     global / unseeded randomness (``random.*``, legacy
           ``np.random.*``, argless ``default_rng()``)
DET002     ``id(...)`` used as a dict/cache key or comparison token
DET003     wall-clock reads in simulation/analysis code
DET004     iteration over bare sets (arbitrary order)
COR001     mutable default arguments
COR002     float ``==`` / ``!=`` comparisons
=========  ==========================================================

Whole-program purity rules (``python -m repro.devtools.lint --purity
src``): :mod:`.callgraph` builds a project-wide symbol table and call
graph, :mod:`.effects` computes per-function effect summaries
bottom-up over its SCC condensation, and :mod:`.purity` checks the
declared purity roots (sweep worker entrypoints, checkpoint replay,
the routing kernels, the scenario engine) against them:

=========  ==========================================================
PUR001     root transitively reads the wall clock
PUR002     root transitively draws unseeded randomness
PUR003     root transitively mutates global state
PUR004     root transitively reads the process environment
PUR005     root transitively writes the filesystem
PUR006     root transitively iterates a bare set
=========  ==========================================================

A justified per-file violation is silenced in place with ``# repro:
noqa DET001 -- reason``; purity exemptions live in one allowlist file
(``purity_allowlist.txt``) with the same ``-- justification`` contract
(unjustified entries are NOQ001, stale ones NOQ002).  What static
analysis cannot see, the runtime sanitizer (:mod:`.sanitize`,
``REPRO_SANITIZE=1``) catches at the site: frozen shared arrays and
per-stream RNG draw accounting.
"""

from __future__ import annotations

from .registry import Rule, SourceFile, Violation, all_rules, register
from .runner import lint_paths, lint_source

__all__ = [
    "Rule",
    "SourceFile",
    "Violation",
    "all_rules",
    "register",
    "lint_paths",
    "lint_source",
]
