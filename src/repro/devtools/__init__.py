"""Static-analysis tooling enforcing this repo's determinism invariants.

The whole value of the reproduction is bit-identical, seeded re-runs
(the golden-equivalence fixture guards it), but the invariants that
make that true -- no global RNG, no wall-clock reads, no ``id()``-keyed
caches, no draw-order-sensitive set iteration -- used to live only in
code comments and reviewer memory.  PR 1 fixed a real GC-aliasing
``id(table)`` cache bug of exactly this class.  This package encodes
those invariants as machine-checked AST rules:

=========  ==========================================================
DET001     global / unseeded randomness (``random.*``, legacy
           ``np.random.*``, argless ``default_rng()``)
DET002     ``id(...)`` used as a dict/cache key or comparison token
DET003     wall-clock reads in simulation/analysis code
DET004     iteration over bare sets (arbitrary order)
COR001     mutable default arguments
COR002     float ``==`` / ``!=`` comparisons
=========  ==========================================================

Run it with ``python -m repro.devtools.lint src tests`` or the
``scripts/lint_repro.py`` wrapper.  A justified violation is silenced
in place with ``# repro: noqa DET001 -- reason`` (the justification is
mandatory; unused or unjustified suppressions are themselves flagged).
"""

from __future__ import annotations

from .registry import Rule, SourceFile, Violation, all_rules, register
from .runner import lint_paths, lint_source

__all__ = [
    "Rule",
    "SourceFile",
    "Violation",
    "all_rules",
    "register",
    "lint_paths",
    "lint_source",
]
