"""Project-wide symbol table and call graph for the purity analyzer.

The per-file rules (:mod:`repro.devtools.rules`) see one module at a
time; the purity contract ("every sweep cell is a pure function of its
config") is a *whole-program* property -- a wall-clock read three
calls deep is invisible per file.  This module builds the global view:

* **Module discovery** -- every ``.py`` file under the lint paths,
  with its dotted module name derived by walking up through
  ``__init__.py`` packages (so the same code indexes ``src/repro`` and
  a test fixture package in a tmpdir alike).
* **Symbol table** -- every module-level function, class, and method
  gets a stable qualified name (``repro.netsim.bgp.propagate``,
  ``repro.netsim.anycast.AnycastPrefix.routing``); module-level
  variable names are recorded so the effect pass can tell a global
  mutation from a local one.
* **Call graph** -- for every function, each call site is resolved to
  project functions where the code gives us the means: absolute and
  relative imports (reusing :class:`~repro.devtools.imports.ImportMap`),
  module-local names, ``self``/``cls`` methods (following project base
  classes), annotation-guided receiver types (parameter annotations,
  class attribute types, annotated locals, constructor assignments,
  project return annotations), and -- as a last resort -- methods whose
  name is defined by exactly one project class and is not a common
  container-method name.

Python being Python, this is a *best-effort may-analysis*: dynamic
dispatch the resolver cannot see produces missing edges, and the
unique-name fallback can produce extra ones.  The effect pass inherits
both properties; the runtime sanitizer (:mod:`repro.devtools.sanitize`)
exists to catch what the static side misses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .imports import ImportMap
from .runner import iter_python_files

#: Method names so common on builtin containers that a name-based
#: fallback would mostly produce phantom edges (``config.get`` is a
#: dict, not :class:`RngFactory`).  Calls to these resolve only
#: through a typed receiver.
AMBIENT_METHODS = frozenset(
    {
        "add", "append", "clear", "copy", "count", "discard", "extend",
        "get", "index", "insert", "items", "join", "keys", "pop",
        "popitem", "remove", "reverse", "setdefault", "sort", "split",
        "strip", "update", "values", "write", "read", "close", "open",
        "format", "encode", "decode", "startswith", "endswith", "sum",
        "mean", "min", "max", "all", "any", "flush", "seek", "tell",
    }
)


@dataclass(frozen=True, slots=True)
class CallEdge:
    """One resolved call site: *caller* invokes *callee* at a line."""

    caller: str
    callee: str
    line: int
    col: int


@dataclass(slots=True)
class FunctionInfo:
    """One project function or method."""

    qualname: str
    module: str
    path: str
    line: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qualname: str | None = None
    #: Qualified name of the project class this returns, if its return
    #: annotation resolves to one.
    returns_class: str | None = None


@dataclass(slots=True)
class ClassInfo:
    """One project class: methods, bases, and attribute types."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: Base-class qualnames that resolved to project classes.
    bases: tuple[str, ...] = ()
    #: Method name -> function qualname (own methods only; lookup
    #: walks :attr:`bases`).
    methods: dict[str, str] = field(default_factory=dict)
    #: Attribute name -> project-class qualname, from class-body
    #: annotations and ``self.x = Ctor(...)`` / ``self.x: T`` in
    #: method bodies.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module and its locally visible names."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool
    imports: ImportMap
    #: Module-level variable names (assignment targets at module scope).
    global_names: frozenset[str] = frozenset()


def module_name_for(path: Path) -> tuple[str, bool]:
    """(dotted module name, is_package) for *path*.

    The package root is found by walking up while ``__init__.py``
    exists, so ``src/repro/netsim/bgp.py`` maps to
    ``repro.netsim.bgp`` without hard-coding a layout, and a fixture
    package in a tmpdir maps the same way.
    """
    path = path.resolve()
    parts = [path.stem]
    is_package = path.name == "__init__.py"
    if is_package:
        parts = [path.parent.name]
        current = path.parent.parent
    else:
        current = path.parent
        if (current / "__init__.py").exists():
            parts.insert(0, current.name)
            current = current.parent
        else:
            return path.stem, False
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        current = current.parent
    if is_package and len(parts) == 1:
        pass  # top-level package
    return ".".join(p for p in parts if p), is_package


def _module_globals(tree: ast.Module) -> frozenset[str]:
    """Names bound by assignment at module scope."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.If, ast.Try)):
            # One level of conditional module-level assignment is
            # common (version guards); recurse shallowly.
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        names.update(_target_names(target))
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    names.update(_target_names(sub.target))
    return frozenset(names)


def _target_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _annotation_name(annotation: ast.expr | None) -> str | None:
    """The dotted name an annotation spells, unwrapping strings,
    ``X | None`` unions, and ``Optional``-style subscripts' heads."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        # ``X | None`` (or ``None | X``): take the non-None side.
        left = _annotation_name(annotation.left)
        if left is not None and left != "None":
            return left
        return _annotation_name(annotation.right)
    if isinstance(annotation, ast.Subscript):
        return None  # dict[...] / list[...] heads are containers
    chain: list[str] = []
    current: ast.expr = annotation
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    chain.append(current.id)
    return ".".join(reversed(chain))


def _container_value_annotation(
    annotation: ast.expr | None,
) -> str | None:
    """For ``dict[K, V]`` / ``list[V]`` annotations, the dotted name of
    the value type (so ``probers[letter]`` resolves to the prober
    class)."""
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if not isinstance(annotation, ast.Subscript):
        return None
    head = _annotation_name(annotation.value)
    if head not in ("dict", "Dict", "list", "List", "tuple", "Tuple",
                    "Mapping", "MutableMapping", "Sequence"):
        return None
    inner = annotation.slice
    if isinstance(inner, ast.Tuple) and inner.elts:
        return _annotation_name(inner.elts[-1])
    return _annotation_name(inner)


@dataclass(slots=True)
class ProjectIndex:
    """The whole-program view: modules, symbols, and the call graph."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: caller qualname -> resolved call edges, in source order.
    calls: dict[str, list[CallEdge]] = field(default_factory=dict)
    #: Files that failed to parse: (path, message).
    errors: list[tuple[str, str]] = field(default_factory=list)
    #: method name -> sorted qualnames of classes defining it.
    _methods_by_name: dict[str, list[str]] = field(default_factory=dict)

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[str]) -> "ProjectIndex":
        """Index every Python file under *paths* and link the call
        graph.  Unparseable files are recorded in :attr:`errors` and
        skipped -- the per-file lint reports them anyway."""
        index = cls()
        for file_path in iter_python_files(paths):
            name = file_path.as_posix()
            try:
                text = file_path.read_text(encoding="utf-8")
                tree = ast.parse(text, filename=name)
            except OSError as exc:
                index.errors.append((name, f"unreadable: {exc}"))
                continue
            except SyntaxError as exc:
                index.errors.append(
                    (name, f"syntax error at line {exc.lineno}: {exc.msg}")
                )
                continue
            module, is_package = module_name_for(file_path)
            if module in index.modules:
                continue  # first spelling wins (duplicate path args)
            index.modules[module] = ModuleInfo(
                name=module,
                path=name,
                tree=tree,
                is_package=is_package,
                imports=ImportMap.from_tree(
                    tree, module=module, is_package=is_package
                ),
                global_names=_module_globals(tree),
            )
            index._collect_symbols(index.modules[module])
        index._link_classes()
        index._link_calls()
        return index

    def _collect_symbols(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}.{node.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=module.name,
                    path=module.path,
                    line=node.lineno,
                    node=node,
                )
            elif isinstance(node, ast.ClassDef):
                class_qualname = f"{module.name}.{node.name}"
                info = ClassInfo(
                    qualname=class_qualname,
                    module=module.name,
                    node=node,
                )
                self.classes[class_qualname] = info
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        method_qualname = f"{class_qualname}.{item.name}"
                        info.methods[item.name] = method_qualname
                        self.functions[method_qualname] = FunctionInfo(
                            qualname=method_qualname,
                            module=module.name,
                            path=module.path,
                            line=item.lineno,
                            node=item,
                            class_qualname=class_qualname,
                        )
                    elif isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        annotated = _annotation_name(item.annotation)
                        if annotated is not None:
                            # Resolved against project classes later,
                            # once every module is indexed.
                            info.attr_types[item.target.id] = annotated

    # -- linking -------------------------------------------------------

    def _resolve_class_name(
        self, module: ModuleInfo, dotted: str
    ) -> str | None:
        """A dotted name written in *module* -> project class qualname."""
        head, _, rest = dotted.partition(".")
        target = module.imports.bindings.get(head)
        if target is not None:
            candidate = target + (f".{rest}" if rest else "")
        else:
            candidate = f"{module.name}.{dotted}"
        if candidate in self.classes:
            return candidate
        if dotted in self.classes:
            return dotted
        return None

    def _link_classes(self) -> None:
        for info in self.classes.values():
            module = self.modules[info.module]
            bases: list[str] = []
            for base in info.node.bases:
                dotted = _annotation_name(base)
                if dotted is None:
                    continue
                resolved = self._resolve_class_name(module, dotted)
                if resolved is not None:
                    bases.append(resolved)
            info.bases = tuple(bases)
            # Re-resolve the textual attribute annotations now that the
            # full class table exists, and add ``self.x = Ctor(...)``.
            resolved_attrs: dict[str, str] = {}
            for attr, dotted in info.attr_types.items():
                resolved = self._resolve_class_name(module, dotted)
                if resolved is not None:
                    resolved_attrs[attr] = resolved
            for method_name in info.methods:
                function = self.functions[info.methods[method_name]]
                self._collect_self_attr_types(
                    module, function.node, resolved_attrs
                )
            info.attr_types = resolved_attrs
        for function in self.functions.values():
            module = self.modules[function.module]
            returns = _annotation_name(function.node.returns)
            if returns is not None:
                function.returns_class = self._resolve_class_name(
                    module, returns
                )
        for qualname, info in sorted(self.classes.items()):
            for method_name in info.methods:
                self._methods_by_name.setdefault(method_name, []).append(
                    qualname
                )

    def _collect_self_attr_types(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        out: dict[str, str],
    ) -> None:
        for statement in ast.walk(node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(statement, ast.Assign) and len(
                statement.targets
            ) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target, value = statement.target, statement.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if attr in out:
                continue
            if isinstance(statement, ast.AnnAssign):
                dotted = _annotation_name(statement.annotation)
                if dotted is not None:
                    resolved = self._resolve_class_name(module, dotted)
                    if resolved is not None:
                        out[attr] = resolved
                        continue
            if (
                value is not None
                and isinstance(value, ast.Call)
            ):
                dotted = _annotation_name(value.func)
                if dotted is not None:
                    resolved = self._resolve_class_name(module, dotted)
                    if resolved is not None:
                        out[attr] = resolved

    # -- call resolution -----------------------------------------------

    def _link_calls(self) -> None:
        for qualname in sorted(self.functions):
            function = self.functions[qualname]
            module = self.modules[function.module]
            resolver = _FunctionResolver(self, module, function)
            self.calls[qualname] = resolver.edges()

    def method_on(self, class_qualname: str, method: str) -> str | None:
        """Function qualname of *method* on a class, following project
        base classes depth-first."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    def unique_method(self, method: str) -> str | None:
        """The single project method of this name, if exactly one
        class defines it and the name is not container-ambient."""
        if method in AMBIENT_METHODS or method.startswith("__"):
            return None
        owners = self._methods_by_name.get(method, [])
        if len(owners) != 1:
            return None
        return self.classes[owners[0]].methods[method]

    def callees_of(self, qualname: str) -> list[CallEdge]:
        return self.calls.get(qualname, [])

    # -- SCC condensation ----------------------------------------------

    def sccs(self) -> list[list[str]]:
        """Strongly connected components of the call graph in reverse
        topological order (callees before callers), via iterative
        Tarjan -- so the effect pass can run one bottom-up sweep."""
        index_counter = 0
        stack: list[str] = []
        on_stack: set[str] = set()
        indices: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        result: list[list[str]] = []

        for root in sorted(self.functions):
            if root in indices:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_index = work[-1]
                if edge_index == 0:
                    indices[node] = lowlink[node] = index_counter
                    index_counter += 1
                    stack.append(node)
                    on_stack.add(node)
                edges = [
                    e.callee
                    for e in self.callees_of(node)
                    if e.callee in self.functions
                ]
                advanced = False
                while edge_index < len(edges):
                    callee = edges[edge_index]
                    edge_index += 1
                    if callee not in indices:
                        work[-1] = (node, edge_index)
                        work.append((callee, 0))
                        advanced = True
                        break
                    if callee in on_stack:
                        lowlink[node] = min(
                            lowlink[node], indices[callee]
                        )
                if advanced:
                    continue
                work[-1] = (node, edge_index)
                if edge_index >= len(edges):
                    work.pop()
                    if lowlink[node] == indices[node]:
                        component: list[str] = []
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            component.append(member)
                            if member == node:
                                break
                        result.append(sorted(component))
                    if work:
                        parent, _ = work[-1]
                        lowlink[parent] = min(
                            lowlink[parent], lowlink[node]
                        )
        return result


class _FunctionResolver:
    """Resolves one function's call sites against the project index."""

    def __init__(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        function: FunctionInfo,
    ) -> None:
        self.index = index
        self.module = module
        self.function = function
        #: Filled by :meth:`_infer_local_types`; starts empty because
        #: inference itself resolves calls (for project return types)
        #: and those lookups must see the bindings made so far.
        self.local_types: dict[str, str] = {}
        self._infer_local_types()

    # Local inference: parameter annotations, annotated locals, and
    # constructor assignments give receiver types for method calls.
    def _infer_local_types(self) -> None:
        types = self.local_types
        node = self.function.node
        args = node.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ):
            dotted = _annotation_name(arg.annotation)
            if dotted is not None:
                resolved = self.index._resolve_class_name(
                    self.module, dotted
                )
                if resolved is not None:
                    types[arg.arg] = resolved
        if self.function.class_qualname is not None:
            all_args = [*args.posonlyargs, *args.args]
            if all_args:
                first = all_args[0].arg
                if first in ("self", "cls"):
                    types[first] = self.function.class_qualname
        for statement in ast.walk(node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(statement, ast.Assign) and len(
                statement.targets
            ) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target = statement.target
                value = statement.value
                if isinstance(target, ast.Name):
                    dotted = _annotation_name(statement.annotation)
                    if dotted is not None:
                        resolved = self.index._resolve_class_name(
                            self.module, dotted
                        )
                        if resolved is not None:
                            types.setdefault(target.id, resolved)
                            continue
            if not isinstance(target, ast.Name) or value is None:
                continue
            inferred = self._class_of_value(value)
            if inferred is not None:
                types.setdefault(target.id, inferred)

    def _class_of_value(self, value: ast.expr) -> str | None:
        """Project class an expression evaluates to, if inferable."""
        if isinstance(value, ast.Call):
            dotted = _annotation_name(value.func)
            if dotted is not None:
                resolved = self.index._resolve_class_name(
                    self.module, dotted
                )
                if resolved is not None:
                    return resolved
            for callee in self._resolve_call(value.func):
                returns = self.index.functions[callee].returns_class
                if returns is not None:
                    return returns
            return None
        return self._class_of(value)

    def _class_of(self, expr: ast.expr) -> str | None:
        """Project class of a receiver expression, if inferable."""
        if isinstance(expr, ast.Name):
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self._class_of(expr.value)
            if owner is not None:
                info = self.index.classes.get(owner)
                while info is not None:
                    if expr.attr in info.attr_types:
                        return info.attr_types[expr.attr]
                    # Property-style access through a method with a
                    # project return annotation.
                    method = info.methods.get(expr.attr)
                    if method is not None:
                        return self.index.functions[
                            method
                        ].returns_class
                    info = (
                        self.index.classes.get(info.bases[0])
                        if info.bases
                        else None
                    )
            return None
        if isinstance(expr, ast.Call):
            return self._class_of_value(expr)
        if isinstance(expr, ast.Subscript):
            # ``probers[letter]`` with ``probers`` an annotated
            # container local: use the container's value type.
            if isinstance(expr.value, ast.Name):
                annotation = self._local_annotation(expr.value.id)
                dotted = _container_value_annotation(annotation)
                if dotted is not None:
                    return self.index._resolve_class_name(
                        self.module, dotted
                    )
        return None

    def _local_annotation(self, name: str) -> ast.expr | None:
        node = self.function.node
        for arg in (
            *node.args.posonlyargs, *node.args.args,
            *node.args.kwonlyargs,
        ):
            if arg.arg == name:
                return arg.annotation
        for statement in ast.walk(node):
            if (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.target.id == name
            ):
                return statement.annotation
        return None

    def _resolve_dotted(self, dotted: str) -> list[str]:
        """A fully resolved dotted path -> project function targets."""
        if dotted in self.index.functions:
            return [dotted]
        if dotted in self.index.classes:
            init = self.index.method_on(dotted, "__init__")
            return [init] if init is not None else []
        return []

    def _resolve_call(self, func: ast.expr) -> list[str]:
        if isinstance(func, ast.Name):
            name = func.id
            # Module-local function or class shadows imports.
            local = f"{self.module.name}.{name}"
            targets = self._resolve_dotted(local)
            if targets:
                return targets
            imported = self.module.imports.bindings.get(name)
            if imported is not None:
                return self._resolve_dotted(imported)
            return []
        if isinstance(func, ast.Attribute):
            # Fully dotted references through imports or module-local
            # classes (``bgp.propagate``, ``AnycastPrefix.routing``).
            dotted = _annotation_name(func)
            if dotted is not None:
                resolved = self.module.imports.resolve(func)
                if resolved is not None:
                    targets = self._resolve_dotted(resolved)
                    if targets:
                        return targets
                targets = self._resolve_dotted(
                    f"{self.module.name}.{dotted}"
                )
                if targets:
                    return targets
            # Typed receiver.
            owner = self._class_of(func.value)
            if owner is not None:
                method = self.index.method_on(owner, func.attr)
                return [method] if method is not None else []
            # Unique project method name (non-ambient).
            unique = self.index.unique_method(func.attr)
            if unique is not None:
                return [unique]
            return []
        return []

    def edges(self) -> list[CallEdge]:
        found: list[CallEdge] = []
        seen: set[tuple[str, int, int]] = set()
        for node in ast.walk(self.function.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in self._resolve_call(node.func):
                key = (callee, node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                found.append(
                    CallEdge(
                        caller=self.function.qualname,
                        callee=callee,
                        line=node.lineno,
                        col=node.col_offset + 1,
                    )
                )
        found.sort(key=lambda e: (e.line, e.col, e.callee))
        return found
