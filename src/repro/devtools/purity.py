"""PUR rules: declared purity roots must be effect-free.

The repo's determinism story rests on a handful of functions being
*pure in the reproducibility sense* -- their outputs a function of
their inputs alone, no matter which process, attempt, or jobs count
runs them:

* the sweep worker cell entrypoints (``run_cells`` /
  ``run_cells_serial``) -- the jobs=1 == jobs=N contract;
* checkpoint replay (``load_checkpoint``) -- resume must be
  bit-identical to the original run;
* the routing kernels (``propagate`` / ``propagate_delta``) -- delta
  mode must equal full propagation;
* the scenario engine (``simulate`` / ``build_substrate``) -- the
  golden fixtures pin their exact outputs.

Each purity root is checked against the interprocedural effect
summaries from :mod:`repro.devtools.effects`; a root that reaches an
effect gets one violation per effect kind, carrying the witness path
(root -> ... -> offending operation, ``file:line`` per hop):

========  ==================  ============================================
code      effect              meaning at a purity root
========  ==================  ============================================
PUR001    WALL_CLOCK          output depends on when the run happened
PUR002    UNSEEDED_RNG        output depends on process RNG history
PUR003    GLOBAL_MUTATION     one call's state leaks into the next
PUR004    ENV_READ            output depends on the caller's shell
PUR005    FS_WRITE            the run has observable side effects
PUR006    NONDET_ITERATION    output order is a hash-seed accident
========  ==================  ============================================

Exemptions live in one *allowlist file* (default:
``purity_allowlist.txt`` next to this module), not in source comments
-- a purity violation names a whole call path, so no single source
line owns it.  Each entry reuses the justified-``noqa`` grammar::

    # comment
    repro.sweep.worker._substrate_for GLOBAL_MUTATION -- memoised \
substrate cache; reuse is bit-identical to a fresh build

An entry kills that effect at that function's boundary (callers no
longer inherit it).  A malformed entry (missing justification, unknown
effect) is flagged NOQ001; an entry that no longer matches any
computed effect is stale and flagged NOQ002 -- exactly the contract
line-level ``# repro: noqa`` has.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .callgraph import ProjectIndex
from .effects import Effect, EffectAnalysis
from .noqa import NOQA_MISSING_JUSTIFICATION, NOQA_UNUSED
from .registry import Violation
from .runner import LintReport

#: The declared purity roots: function qualname -> why it must be pure.
PURITY_ROOTS: dict[str, str] = {
    "repro.sweep.worker.run_cells": (
        "sweep cell entrypoint; jobs=1 and jobs=N must be bit-identical"
    ),
    "repro.sweep.worker.run_cells_serial": (
        "serial sweep entrypoint; mirrors the process-pool path"
    ),
    "repro.sweep.checkpoint.load_checkpoint": (
        "checkpoint replay; resume must be bit-identical to the "
        "original run"
    ),
    "repro.netsim.bgp.propagate": (
        "routing kernel; golden fixtures pin its exact output"
    ),
    "repro.netsim.bgp.propagate_delta": (
        "incremental routing kernel; must equal full propagation"
    ),
    "repro.scenario.engine.simulate": (
        "scenario engine; output must be a pure function of the config"
    ),
    "repro.scenario.engine.build_substrate": (
        "substrate build; cached reuse must equal a fresh build"
    ),
}

#: Effect kind -> (rule code, summary used in --list-rules).
PURITY_RULES: dict[Effect, tuple[str, str]] = {
    Effect.WALL_CLOCK: (
        "PUR001",
        "purity root transitively reads the wall clock",
    ),
    Effect.UNSEEDED_RNG: (
        "PUR002",
        "purity root transitively draws unseeded randomness",
    ),
    Effect.GLOBAL_MUTATION: (
        "PUR003",
        "purity root transitively mutates global state",
    ),
    Effect.ENV_READ: (
        "PUR004",
        "purity root transitively reads the process environment",
    ),
    Effect.FS_WRITE: (
        "PUR005",
        "purity root transitively writes the filesystem",
    ),
    Effect.NONDET_ITERATION: (
        "PUR006",
        "purity root transitively iterates a bare set",
    ),
}


def default_allowlist_path() -> Path:
    """The in-repo allowlist shipped next to this module."""
    return Path(__file__).with_name("purity_allowlist.txt")


class AllowlistEntry:
    """One parsed allowlist line."""

    __slots__ = ("qualname", "effect", "justification", "line")

    def __init__(
        self, qualname: str, effect: Effect, justification: str, line: int
    ) -> None:
        self.qualname = qualname
        self.effect = effect
        self.justification = justification
        self.line = line


def parse_allowlist(
    text: str, path: str
) -> tuple[list[AllowlistEntry], list[Violation]]:
    """Parse an allowlist file; malformed lines become NOQ001
    violations (same grammar contract as line-level noqa)."""
    entries: list[AllowlistEntry] = []
    violations: list[Violation] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, separator, justification = line.partition("--")
        justification = justification.strip()
        fields = head.split()
        effect = None
        if len(fields) == 2:
            try:
                effect = Effect(fields[1])
            except ValueError:
                effect = None
        if len(fields) != 2 or effect is None:
            known = ", ".join(e.value for e in Effect)
            violations.append(
                Violation(
                    path=path,
                    line=lineno,
                    col=1,
                    rule=NOQA_MISSING_JUSTIFICATION,
                    message=(
                        "malformed allowlist entry; write "
                        f"`<qualname> <EFFECT> -- justification` with "
                        f"EFFECT one of: {known}"
                    ),
                )
            )
            continue
        if not separator or not justification:
            violations.append(
                Violation(
                    path=path,
                    line=lineno,
                    col=1,
                    rule=NOQA_MISSING_JUSTIFICATION,
                    message=(
                        f"allowlist entry for {fields[0]} "
                        f"{effect.value} is missing the mandatory "
                        "`-- justification`"
                    ),
                )
            )
            continue
        entries.append(
            AllowlistEntry(fields[0], effect, justification, lineno)
        )
    return entries, violations


def _stale_entry_violations(
    entries: Iterable[AllowlistEntry],
    used: set[tuple[str, Effect]],
    index: ProjectIndex,
    path: str,
) -> list[Violation]:
    flagged: list[Violation] = []
    for entry in entries:
        key = (entry.qualname, entry.effect)
        if key in used:
            continue
        if entry.qualname not in index.functions:
            detail = (
                f"no function named {entry.qualname} exists in the "
                "analyzed tree"
            )
        else:
            detail = (
                f"{entry.qualname} no longer has the "
                f"{entry.effect.value} effect"
            )
        flagged.append(
            Violation(
                path=path,
                line=entry.line,
                col=1,
                rule=NOQA_UNUSED,
                message=f"stale allowlist entry: {detail}; remove it",
            )
        )
    return flagged


def run_purity(
    paths: Sequence[str],
    *,
    roots: Mapping[str, str] | None = None,
    allowlist_path: str | Path | None = None,
) -> LintReport:
    """Whole-program purity check over the Python files under *paths*.

    *roots* defaults to :data:`PURITY_ROOTS`; a configured root that
    does not exist in the analyzed tree is a lint *error* (exit 2) --
    a silently missing root would pass vacuously.  *allowlist_path*
    defaults to the in-repo file when it exists; pass an explicit path
    (or a nonexistent one) to override.
    """
    report = LintReport()
    active_roots = dict(PURITY_ROOTS if roots is None else roots)

    index = ProjectIndex.build(paths)
    report.errors.extend(index.errors)
    report.checked_files = len(index.modules)

    for qualname in sorted(active_roots):
        if qualname not in index.functions:
            report.errors.append(
                (
                    "<purity>",
                    f"purity root {qualname} not found in the analyzed "
                    "tree; pass --purity-root or widen the lint paths",
                )
            )
    if report.errors:
        return report

    entries: list[AllowlistEntry] = []
    allowlist_name = ""
    if allowlist_path is None:
        candidate = default_allowlist_path()
        allowlist_path = candidate if candidate.exists() else None
    if allowlist_path is not None:
        allowlist_file = Path(allowlist_path)
        allowlist_name = allowlist_file.as_posix()
        try:
            text = allowlist_file.read_text(encoding="utf-8")
        except OSError as exc:
            report.errors.append(
                (allowlist_name, f"unreadable allowlist: {exc}")
            )
            return report
        entries, malformed = parse_allowlist(text, allowlist_name)
        report.violations.extend(malformed)

    grants = {
        (entry.qualname, entry.effect): entry.justification
        for entry in entries
    }
    analysis = EffectAnalysis.run(index, grants)

    for qualname in sorted(active_roots):
        function = index.functions[qualname]
        summary = analysis.effects_of(qualname)
        for effect in sorted(summary, key=lambda e: e.value):
            code, _ = PURITY_RULES[effect]
            witness = analysis.witness_path(qualname, effect)
            report.violations.append(
                Violation(
                    path=function.path,
                    line=function.line,
                    col=1,
                    rule=code,
                    message=(
                        f"purity root `{qualname}` reaches "
                        f"{effect.value} ({active_roots[qualname]}); "
                        f"witness path ({len(witness)} hop(s)) follows"
                    ),
                    witness=witness,
                )
            )

    report.violations.extend(
        _stale_entry_violations(
            entries, analysis.used_grants, index, allowlist_name
        )
    )
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report


def purity_rule_descriptions() -> tuple[tuple[str, str, str], ...]:
    """(code, summary, rationale) rows for ``--list-rules``."""
    rationale = (
        "Interprocedural: the effect is reached through the call "
        "graph; the violation's witness path names every hop.  "
        "Exemptions go in the purity allowlist file, not in source."
    )
    rows = [
        (code, summary, rationale)
        for code, summary in sorted(PURITY_RULES.values())
    ]
    return tuple(rows)
