"""Per-file lint driver: parse once, run every applicable rule.

The runner owns the parts that are rule-independent: file discovery,
parsing, suppression bookkeeping (including flagging unjustified and
unused ``# repro: noqa`` comments), stable ordering of results, and
the execution strategy.  Files are independent, so ``jobs > 1`` fans
them out over a process pool; results are merged back in path order,
making the report byte-identical to a serial run.  Each rule's wall
time is accumulated per rule code (serial) or per code summed across
workers (parallel) so ``--timing`` can show where lint time goes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .noqa import (
    NOQA_MISSING_JUSTIFICATION,
    NOQA_UNUSED,
    Suppression,
    parse_suppressions,
)
from .registry import Rule, SourceFile, Violation, all_rules

#: Directories never worth descending into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass(slots=True)
class LintReport:
    """Everything one lint invocation produced."""

    violations: list[Violation] = field(default_factory=list)
    #: Files that could not be parsed: (path, error message).
    errors: list[tuple[str, str]] = field(default_factory=list)
    checked_files: int = 0
    #: Rule code -> total seconds spent in that rule's ``check``.
    rule_timings: dict[str, float] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        """The CLI contract: 0 clean, 1 violations, 2 internal errors."""
        if self.errors:
            return 2
        return 1 if self.violations else 0


def iter_python_files(paths: Sequence[str]) -> list[Path]:
    """Every ``.py`` file under *paths*, deduplicated and sorted."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            found.add(path)
        else:
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
    return sorted(found)


def lint_source(
    text: str,
    path: str,
    rules: Iterable[Rule] | None = None,
    timings: dict[str, float] | None = None,
) -> list[Violation]:
    """Lint one source string as if it lived at *path*.

    This is the unit-test surface: rule fixtures feed snippets through
    it with a fake path to exercise scope handling.  Raises
    :class:`SyntaxError` if *text* does not parse.  With *timings*,
    each rule's elapsed seconds are accumulated into it by rule code.
    """
    file = SourceFile.parse(path, text)
    active = list(all_rules() if rules is None else rules)

    raw: list[Violation] = []
    for rule in active:
        if not rule.applies_to(file):
            continue
        if timings is None:
            raw.extend(rule.check(file))
            continue
        started = time.perf_counter()  # repro: noqa DET003 -- lint self-profiling; measures the linter, never simulation output
        raw.extend(rule.check(file))
        elapsed = time.perf_counter() - started  # repro: noqa DET003 -- lint self-profiling; measures the linter, never simulation output
        timings[rule.code] = timings.get(rule.code, 0.0) + elapsed

    suppressions = parse_suppressions(text)
    kept = [v for v in raw if not _suppress(v, suppressions)]
    kept.extend(_suppression_violations(path, suppressions))
    kept.sort(key=lambda v: (v.line, v.col, v.rule))
    return kept


def _suppress(
    violation: Violation, suppressions: dict[int, Suppression]
) -> bool:
    entry = suppressions.get(violation.line)
    if entry is None or not entry.well_formed:
        return False
    if violation.rule in entry.codes:
        entry.used_codes.add(violation.rule)
        return True
    return False


def _suppression_violations(
    path: str, suppressions: dict[int, Suppression]
) -> list[Violation]:
    flagged: list[Violation] = []
    for entry in suppressions.values():
        if not entry.well_formed:
            detail = (
                "no rule codes given"
                if not entry.codes
                else "missing the mandatory `-- justification`"
            )
            flagged.append(
                Violation(
                    path=path,
                    line=entry.line,
                    col=entry.col,
                    rule=NOQA_MISSING_JUSTIFICATION,
                    message=(
                        f"malformed suppression ({detail}); write "
                        "`# repro: noqa DETxxx -- reason`"
                    ),
                )
            )
        elif not entry.used_codes:
            codes = ",".join(sorted(entry.codes))
            flagged.append(
                Violation(
                    path=path,
                    line=entry.line,
                    col=entry.col,
                    rule=NOQA_UNUSED,
                    message=(
                        f"suppression for {codes} matched no violation "
                        "on this line; remove the stale noqa"
                    ),
                )
            )
    return flagged


#: One worker's result for one file: (path, violations, error message
#: or None, per-rule timings).  Shipped back over the pool pickle
#: boundary, so everything in it must be picklable.
_FileResult = tuple[str, list[Violation], str | None, dict[str, float]]


def _lint_one_file(name: str) -> _FileResult:
    """Process-pool task: lint a single file with the full rule set.

    Top-level (picklable) and rule-set-free on purpose: each worker
    builds the registry's rules itself, so only the path crosses the
    pool boundary going in.
    """
    timings: dict[str, float] = {}
    try:
        text = Path(name).read_text(encoding="utf-8")
    except OSError as exc:
        return name, [], f"unreadable: {exc}", timings
    try:
        violations = lint_source(text, name, None, timings)
    except SyntaxError as exc:
        return (
            name,
            [],
            f"syntax error at line {exc.lineno}: {exc.msg}",
            timings,
        )
    return name, violations, None, timings


def _merge(report: LintReport, result: _FileResult) -> None:
    name, violations, error, timings = result
    if error is not None:
        report.errors.append((name, error))
    else:
        report.violations.extend(violations)
        report.checked_files += 1
    for code, elapsed in timings.items():
        report.rule_timings[code] = (
            report.rule_timings.get(code, 0.0) + elapsed
        )


def resolve_jobs(jobs: int) -> int:
    """``jobs <= 0`` means one worker per CPU (minimum 1)."""
    if jobs > 0:
        return jobs
    return max(1, os.cpu_count() or 1)


def lint_paths(
    paths: Sequence[str],
    rules: Iterable[Rule] | None = None,
    jobs: int = 1,
) -> LintReport:
    """Lint every Python file under *paths*.

    With ``jobs != 1`` the files are linted by a process pool (``0``
    = one worker per CPU); a custom *rules* iterable forces the serial
    path, since pool workers always run the registered rule set.
    Output is identical either way: results merge in path order.
    """
    report = LintReport()
    files = iter_python_files(paths)
    effective_jobs = resolve_jobs(jobs)

    if rules is None and effective_jobs > 1 and len(files) > 1:
        names = [f.as_posix() for f in files]
        workers = min(effective_jobs, len(names))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for result in pool.map(_lint_one_file, names, chunksize=8):
                _merge(report, result)
    else:
        active = list(all_rules() if rules is None else rules)
        for file_path in files:
            name = file_path.as_posix()
            timings: dict[str, float] = {}
            try:
                text = file_path.read_text(encoding="utf-8")
            except OSError as exc:
                _merge(report, (name, [], f"unreadable: {exc}", timings))
                continue
            try:
                violations = lint_source(text, name, active, timings)
            except SyntaxError as exc:
                _merge(
                    report,
                    (
                        name,
                        [],
                        f"syntax error at line {exc.lineno}: {exc.msg}",
                        timings,
                    ),
                )
                continue
            _merge(report, (name, violations, None, timings))
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report
