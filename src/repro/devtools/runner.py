"""Per-file lint driver: parse once, run every applicable rule.

The runner owns the parts that are rule-independent: file discovery,
parsing, suppression bookkeeping (including flagging unjustified and
unused ``# repro: noqa`` comments), and stable ordering of results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .noqa import (
    NOQA_MISSING_JUSTIFICATION,
    NOQA_UNUSED,
    Suppression,
    parse_suppressions,
)
from .registry import Rule, SourceFile, Violation, all_rules

#: Directories never worth descending into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass(slots=True)
class LintReport:
    """Everything one lint invocation produced."""

    violations: list[Violation] = field(default_factory=list)
    #: Files that could not be parsed: (path, error message).
    errors: list[tuple[str, str]] = field(default_factory=list)
    checked_files: int = 0

    @property
    def exit_code(self) -> int:
        """The CLI contract: 0 clean, 1 violations, 2 internal errors."""
        if self.errors:
            return 2
        return 1 if self.violations else 0


def iter_python_files(paths: Sequence[str]) -> list[Path]:
    """Every ``.py`` file under *paths*, deduplicated and sorted."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            found.add(path)
        else:
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
    return sorted(found)


def lint_source(
    text: str, path: str, rules: Iterable[Rule] | None = None
) -> list[Violation]:
    """Lint one source string as if it lived at *path*.

    This is the unit-test surface: rule fixtures feed snippets through
    it with a fake path to exercise scope handling.  Raises
    :class:`SyntaxError` if *text* does not parse.
    """
    file = SourceFile.parse(path, text)
    active = list(all_rules() if rules is None else rules)

    raw: list[Violation] = []
    for rule in active:
        if rule.applies_to(file):
            raw.extend(rule.check(file))

    suppressions = parse_suppressions(text)
    kept = [v for v in raw if not _suppress(v, suppressions)]
    kept.extend(_suppression_violations(path, suppressions))
    kept.sort(key=lambda v: (v.line, v.col, v.rule))
    return kept


def _suppress(
    violation: Violation, suppressions: dict[int, Suppression]
) -> bool:
    entry = suppressions.get(violation.line)
    if entry is None or not entry.well_formed:
        return False
    if violation.rule in entry.codes:
        entry.used_codes.add(violation.rule)
        return True
    return False


def _suppression_violations(
    path: str, suppressions: dict[int, Suppression]
) -> list[Violation]:
    flagged: list[Violation] = []
    for entry in suppressions.values():
        if not entry.well_formed:
            detail = (
                "no rule codes given"
                if not entry.codes
                else "missing the mandatory `-- justification`"
            )
            flagged.append(
                Violation(
                    path=path,
                    line=entry.line,
                    col=entry.col,
                    rule=NOQA_MISSING_JUSTIFICATION,
                    message=(
                        f"malformed suppression ({detail}); write "
                        "`# repro: noqa DETxxx -- reason`"
                    ),
                )
            )
        elif not entry.used_codes:
            codes = ",".join(sorted(entry.codes))
            flagged.append(
                Violation(
                    path=path,
                    line=entry.line,
                    col=entry.col,
                    rule=NOQA_UNUSED,
                    message=(
                        f"suppression for {codes} matched no violation "
                        "on this line; remove the stale noqa"
                    ),
                )
            )
    return flagged


def lint_paths(
    paths: Sequence[str], rules: Iterable[Rule] | None = None
) -> LintReport:
    """Lint every Python file under *paths*."""
    report = LintReport()
    active = list(all_rules() if rules is None else rules)
    for file_path in iter_python_files(paths):
        name = file_path.as_posix()
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            report.errors.append((name, f"unreadable: {exc}"))
            continue
        try:
            report.violations.extend(lint_source(text, name, active))
        except SyntaxError as exc:
            report.errors.append(
                (name, f"syntax error at line {exc.lineno}: {exc.msg}")
            )
            continue
        report.checked_files += 1
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report
