"""Per-function effect summaries and interprocedural propagation.

The effect lattice is a flat powerset over six kinds of impurity, each
chosen because it has broken (or would break) the jobs=1 == jobs=N
bit-identity contract at least once:

* ``WALL_CLOCK`` -- reads the host clock (``time.time`` & co.).
* ``UNSEEDED_RNG`` -- draws randomness outside the seeded
  ``repro.util.rng`` streams.
* ``GLOBAL_MUTATION`` -- writes module-level state or closure cells,
  so one call's history leaks into the next.
* ``ENV_READ`` -- reads ``os.environ``; output depends on the shell.
* ``FS_WRITE`` -- writes the filesystem.
* ``NONDET_ITERATION`` -- consumes a bare set's arbitrary order.

:func:`direct_effects` extracts each function's *own* effects from its
AST (sharing the reference-resolution machinery with the per-file DET
rules, so e.g. the wall-clock callable list lives in exactly one
place).  :class:`EffectAnalysis` then propagates summaries bottom-up
over the call graph's SCC condensation: a function has an effect if it
performs it directly or calls -- transitively -- something that does.

Every acquired effect carries a *witness*: either the direct origin
(file/line/detail) or the call edge through which it arrived.  Witness
assignment is origin-once -- a function's witness for an effect is set
when the effect is first acquired and never overwritten -- which makes
witness chains acyclic even inside recursion cycles, so
:meth:`EffectAnalysis.witness_path` always terminates at a direct
origin.

An *allowlist* (see :mod:`repro.devtools.purity`) kills an effect at a
function's boundary: the function may perform it, but its summary does
not expose it to callers.  The analysis records which (function,
effect) grants actually fired so stale entries can be flagged.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from .callgraph import CallEdge, FunctionInfo, ModuleInfo, ProjectIndex
from .rules import _NUMPY_RANDOM_TYPES, _WALL_CLOCK, BareSetIteration


class Effect(enum.Enum):
    """One kind of impurity tracked by the purity analyzer."""

    WALL_CLOCK = "WALL_CLOCK"
    UNSEEDED_RNG = "UNSEEDED_RNG"
    GLOBAL_MUTATION = "GLOBAL_MUTATION"
    ENV_READ = "ENV_READ"
    FS_WRITE = "FS_WRITE"
    NONDET_ITERATION = "NONDET_ITERATION"


#: ``os.environ``-family references; anything under these reads the
#: process environment.  ``repro.util.env.read_env`` is the sanctioned
#: (allowlisted) choke point for the whole package.
_ENV_READS = ("os.environ", "os.environb", "os.getenv")

#: Callables that write the filesystem outright.
_FS_WRITERS = frozenset(
    {
        "os.remove", "os.unlink", "os.rename", "os.replace", "os.mkdir",
        "os.makedirs", "os.rmdir", "os.removedirs", "os.symlink",
        "os.link", "os.truncate", "os.chmod", "os.chown",
        "shutil.rmtree", "shutil.move", "shutil.copy", "shutil.copy2",
        "shutil.copyfile", "shutil.copytree", "shutil.copymode",
        "tempfile.mkdtemp", "tempfile.mkstemp",
        "tempfile.NamedTemporaryFile", "tempfile.TemporaryDirectory",
        "numpy.save", "numpy.savez", "numpy.savez_compressed",
        "numpy.savetxt",
    }
)

#: ``Path``-style method names distinctive enough to flag without a
#: typed receiver (``.write`` itself is too ambient -- any buffer has
#: one -- so ``open(..., "w")`` is the signal for file handles).
_FS_WRITE_METHODS = frozenset(
    {"write_text", "write_bytes", "unlink", "touch", "rmdir", "symlink_to",
     "hardlink_to", "lchmod"}
)

#: Method names that mutate a container in place; a call on a
#: module-global receiver is a global mutation.
_MUTATORS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popitem", "popleft", "remove",
        "setdefault", "sort", "reverse", "update",
    }
)


#: Callback a scanner uses to record one effect at one node.
_Note = Callable[[Effect, ast.AST, str], None]


@dataclass(frozen=True, slots=True)
class Origin:
    """Where an effect is performed directly."""

    path: str
    line: int
    col: int
    detail: str


@dataclass(frozen=True, slots=True)
class Witness:
    """How a function acquired an effect: exactly one of *origin*
    (performed here) or *edge* (inherited through a call)."""

    origin: Origin | None = None
    edge: CallEdge | None = None


def _local_bindings(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound in *node*'s scope (parameters and targets), minus
    those re-exported to module scope via ``global``."""
    bound: set[str] = set()
    globals_declared: set[str] = set()
    args = node.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
    ):
        bound.add(arg.arg)
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            globals_declared.update(sub.names)
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                bound.update(_names_in_target(target))
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            bound.update(_names_in_target(sub.target))
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            bound.update(_names_in_target(sub.target))
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    bound.update(_names_in_target(item.optional_vars))
        elif isinstance(sub, ast.comprehension):
            bound.update(_names_in_target(sub.target))
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
        elif isinstance(sub, ast.NamedExpr) and isinstance(
            sub.target, ast.Name
        ):
            bound.add(sub.target.id)
    return bound - globals_declared


def _names_in_target(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _names_in_target(element)
    elif isinstance(target, ast.Starred):
        yield from _names_in_target(target.value)


def _mutation_base(target: ast.expr) -> str | None:
    """The root Name of a ``x[...] = `` / ``x.attr = `` target chain."""
    current = target
    saw_access = False
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        saw_access = True
        current = current.value
    if saw_access and isinstance(current, ast.Name):
        return current.id
    return None


class _DirectScanner:
    """Extracts one function's own effects from its AST."""

    def __init__(self, module: ModuleInfo, function: FunctionInfo) -> None:
        self.module = module
        self.function = function
        self.locals = _local_bindings(function.node)
        #: parent map restricted to the function subtree, for
        #: reference-head detection.
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(function.node):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def origin(self, node: ast.AST, detail: str) -> Origin:
        return Origin(
            path=self.function.path,
            line=getattr(node, "lineno", self.function.line),
            col=getattr(node, "col_offset", 0) + 1,
            detail=detail,
        )

    def scan(self) -> dict[Effect, Origin]:
        found: dict[Effect, Origin] = {}

        def note(effect: Effect, node: ast.AST, detail: str) -> None:
            # Origin-once: keep the first (outermost-walk-order)
            # witness per effect; one is enough to act on.
            if effect not in found:
                found[effect] = self.origin(node, detail)

        for node in ast.walk(self.function.node):
            if isinstance(node, (ast.Name, ast.Attribute)):
                self._scan_reference(node, note)
            elif isinstance(node, ast.Call):
                self._scan_call(node, note)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._scan_store(node, note)
            elif isinstance(node, ast.Nonlocal):
                note(
                    Effect.GLOBAL_MUTATION,
                    node,
                    f"writes closure cell(s) {', '.join(node.names)} "
                    "via nonlocal",
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if BareSetIteration._is_set_expr(node.iter):
                    note(
                        Effect.NONDET_ITERATION,
                        node.iter,
                        "iterates a bare set (arbitrary order)",
                    )
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for generator in node.generators:
                    if BareSetIteration._is_set_expr(generator.iter):
                        note(
                            Effect.NONDET_ITERATION,
                            generator.iter,
                            "comprehension over a bare set "
                            "(arbitrary order)",
                        )
        return found

    # -- reference-based effects ---------------------------------------

    def _scan_reference(self, node: ast.expr, note: _Note) -> None:
        parent = self.parents.get(node)
        if isinstance(parent, ast.Attribute):
            return  # only resolve the head of each dotted chain
        full = self.module.imports.resolve(node)
        if full is None:
            return
        if full in _WALL_CLOCK:
            note(Effect.WALL_CLOCK, node, f"`{full}` reads the host clock")
        elif full == "random" or full.startswith("random."):
            note(
                Effect.UNSEEDED_RNG,
                node,
                f"`{full}` uses the process-global stdlib RNG",
            )
        elif full.startswith("numpy.random."):
            tail = full[len("numpy.random.") :]
            if tail in _NUMPY_RANDOM_TYPES:
                return
            if tail == "default_rng":
                call = self.parents.get(node)
                if (
                    isinstance(call, ast.Call)
                    and call.func is node
                    and (call.args or call.keywords)
                ):
                    return  # explicitly seeded
                note(
                    Effect.UNSEEDED_RNG,
                    node,
                    "argless `numpy.random.default_rng()` seeds from "
                    "the OS",
                )
            else:
                note(
                    Effect.UNSEEDED_RNG,
                    node,
                    f"`{full}` is global-state numpy RNG",
                )
        elif any(
            full == head or full.startswith(head + ".")
            for head in _ENV_READS
        ):
            note(
                Effect.ENV_READ,
                node,
                f"`{full}` reads the process environment",
            )
        elif full in _FS_WRITERS:
            note(Effect.FS_WRITE, node, f"`{full}` writes the filesystem")

    # -- call-based effects --------------------------------------------

    def _scan_call(self, node: ast.Call, note: _Note) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = self._open_mode(node)
            if mode is not None and any(c in mode for c in "wax+"):
                note(
                    Effect.FS_WRITE,
                    node,
                    f"`open(..., {mode!r})` opens a file for writing",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _FS_WRITE_METHODS:
            note(
                Effect.FS_WRITE,
                node,
                f"`.{func.attr}(...)` writes the filesystem",
            )
        if func.attr in _MUTATORS and isinstance(func.value, ast.Name):
            name = func.value.id
            if self._is_module_global(name):
                note(
                    Effect.GLOBAL_MUTATION,
                    node,
                    f"`.{func.attr}(...)` mutates module global "
                    f"`{name}` in place",
                )
        # ``json.dump`` / ``pickle.dump`` take an open file: writing.
        full = self.module.imports.resolve(func)
        if full in ("json.dump", "pickle.dump", "marshal.dump"):
            note(
                Effect.FS_WRITE, node, f"`{full}` writes to a file object"
            )

    @staticmethod
    def _open_mode(call: ast.Call) -> str | None:
        mode: ast.expr | None = None
        if len(call.args) >= 2:
            mode = call.args[1]
        else:
            for keyword in call.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        if mode is None:
            return "r"  # open() defaults to read-only
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None  # dynamic mode: out of static reach

    # -- store-based effects -------------------------------------------

    def _scan_store(
        self, node: ast.Assign | ast.AugAssign | ast.AnnAssign, note: _Note
    ) -> None:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]
        for target in targets:
            # Rebinding a module global requires a ``global`` decl,
            # which _local_bindings already subtracts -- so a bare
            # Name store is global iff declared global here.
            if isinstance(target, ast.Name):
                if (
                    target.id not in self.locals
                    and target.id in self.module.global_names
                    and self._declared_global(target.id)
                ):
                    note(
                        Effect.GLOBAL_MUTATION,
                        node,
                        f"rebinds module global `{target.id}`",
                    )
                continue
            base = _mutation_base(target)
            if base is not None and self._is_module_global(base):
                note(
                    Effect.GLOBAL_MUTATION,
                    node,
                    f"writes into module global `{base}`",
                )

    def _declared_global(self, name: str) -> bool:
        for sub in ast.walk(self.function.node):
            if isinstance(sub, ast.Global) and name in sub.names:
                return True
        return False

    def _is_module_global(self, name: str) -> bool:
        return (
            name in self.module.global_names and name not in self.locals
        )


def direct_effects(
    index: ProjectIndex, function: FunctionInfo
) -> dict[Effect, Origin]:
    """The effects *function* performs in its own body."""
    module = index.modules[function.module]
    return _DirectScanner(module, function).scan()


@dataclass(slots=True)
class EffectAnalysis:
    """Interprocedural effect summaries over a :class:`ProjectIndex`.

    ``summaries[qualname]`` maps each effect the function exposes (its
    own plus everything inherited through resolved calls, minus
    allowlisted grants) to the witness through which it was first
    acquired.  ``used_grants`` records which allowlist entries fired.
    """

    index: ProjectIndex
    summaries: dict[str, dict[Effect, Witness]] = field(default_factory=dict)
    used_grants: set[tuple[str, Effect]] = field(default_factory=set)

    @classmethod
    def run(
        cls,
        index: ProjectIndex,
        allowlist: Mapping[tuple[str, Effect], str] | None = None,
    ) -> "EffectAnalysis":
        """Compute summaries bottom-up over the SCC condensation.

        *allowlist* maps (function qualname, effect) to a justification
        string; matching effects are killed at that function's boundary
        and the grant recorded in :attr:`used_grants`.
        """
        analysis = cls(index=index)
        blocked = dict(allowlist or {})

        def acquire(
            qualname: str, effect: Effect, witness: Witness
        ) -> bool:
            summary = analysis.summaries[qualname]
            if effect in summary:
                return False
            if (qualname, effect) in blocked:
                analysis.used_grants.add((qualname, effect))
                return False
            summary[effect] = witness
            return True

        for component in index.sccs():
            for qualname in component:
                analysis.summaries[qualname] = {}
                own = direct_effects(
                    index, index.functions[qualname]
                )
                for effect, origin in own.items():
                    acquire(qualname, effect, Witness(origin=origin))
            # Fixpoint over the component: effects can flow around a
            # recursion cycle, but each member acquires each effect at
            # most once, so this terminates in <= |effects| rounds.
            changed = True
            while changed:
                changed = False
                for qualname in component:
                    for edge in index.callees_of(qualname):
                        callee_summary = analysis.summaries.get(
                            edge.callee
                        )
                        if callee_summary is None:
                            continue
                        for effect in callee_summary:
                            if acquire(
                                qualname, effect, Witness(edge=edge)
                            ):
                                changed = True
        return analysis

    def effects_of(self, qualname: str) -> dict[Effect, Witness]:
        return self.summaries.get(qualname, {})

    def witness_path(
        self, qualname: str, effect: Effect
    ) -> tuple[str, ...]:
        """The call chain from *qualname* down to the direct origin of
        *effect*, rendered one ``qualname (file:line)`` hop per
        element, ending with the offending operation itself."""
        hops: list[str] = []
        current = qualname
        seen: set[str] = set()
        while True:
            if current in seen:  # defensive; origin-once prevents this
                hops.append(f"{current} (cycle)")
                return tuple(hops)
            seen.add(current)
            witness = self.summaries.get(current, {}).get(effect)
            if witness is None:
                hops.append(f"{current} (witness lost)")
                return tuple(hops)
            function = self.index.functions[current]
            if witness.origin is not None:
                hops.append(
                    f"{current} ({function.path}:{witness.origin.line}): "
                    f"{witness.origin.detail}"
                )
                return tuple(hops)
            assert witness.edge is not None
            hops.append(
                f"{current} ({function.path}:{witness.edge.line}) calls "
                f"{witness.edge.callee}"
            )
            current = witness.edge.callee
