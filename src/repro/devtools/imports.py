"""Resolve local names back to absolute dotted module paths.

The determinism rules reason about *what* a name refers to, not what
it is spelled as: ``np.random.seed``, ``numpy.random.seed`` and
``from numpy import random as npr; npr.seed`` are the same violation.
:class:`ImportMap` records every absolute import binding in a module
so rules can normalise attribute chains to full dotted names.

Relative imports (``from ..util import rng``) resolve inside this
package and are never the stdlib/numpy modules the rules target, so
they are deliberately left out of the map.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass(slots=True)
class ImportMap:
    """Maps a module-local name to the absolute module/object it names."""

    bindings: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        """Collect bindings from every import statement in *tree*."""
        bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        bindings[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds ``numpy``.
                        top = alias.name.split(".", 1)[0]
                        bindings[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative import: out of scope
                for alias in node.names:
                    local = alias.asname or alias.name
                    bindings[local] = f"{node.module}.{alias.name}"
        return cls(bindings=bindings)

    def resolve(self, node: ast.AST) -> str | None:
        """Absolute dotted path of a Name/Attribute chain, or ``None``.

        ``None`` means the chain does not start at an imported name
        (locals, builtins, and computed expressions all resolve to
        ``None``; rules then ignore them).
        """
        chain: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.bindings.get(current.id)
        if base is None:
            return None
        chain.append(base)
        return ".".join(reversed(chain))
