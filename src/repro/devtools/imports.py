"""Resolve local names back to absolute dotted module paths.

The determinism rules reason about *what* a name refers to, not what
it is spelled as: ``np.random.seed``, ``numpy.random.seed`` and
``from numpy import random as npr; npr.seed`` are the same violation.
:class:`ImportMap` records every absolute import binding in a module
so rules can normalise attribute chains to full dotted names.

For the per-file rules, relative imports (``from ..util import rng``)
resolve inside this package and are never the stdlib/numpy modules the
rules target, so they are left out of the map by default.  The
interprocedural analyzer (:mod:`repro.devtools.callgraph`) *does* need
them -- a purity witness path follows project-internal edges -- so
:meth:`ImportMap.from_tree` optionally takes the module's own dotted
name and resolves relative imports against it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


def resolve_relative(
    module: str, is_package: bool, level: int, target: str | None
) -> str | None:
    """Absolute dotted path of a level-*level* relative import written
    inside *module* (``None`` if the import escapes the root package).

    ``from . import x`` in ``repro.netsim.bgp`` has ``level=1`` and
    resolves against ``repro.netsim``; each further level drops one
    more package component.
    """
    parts = module.split(".")
    package = parts if is_package else parts[:-1]
    if level - 1 > len(package):
        return None
    base = package[: len(package) - (level - 1)]
    if target:
        base = base + target.split(".")
    if not base:
        return None
    return ".".join(base)


@dataclass(slots=True)
class ImportMap:
    """Maps a module-local name to the absolute module/object it names."""

    bindings: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(
        cls,
        tree: ast.Module,
        *,
        module: str | None = None,
        is_package: bool = False,
    ) -> "ImportMap":
        """Collect bindings from every import statement in *tree*.

        With *module* (the tree's own dotted module name), relative
        imports are resolved against it; without it they are skipped,
        which is the right behaviour for the per-file rules.
        """
        bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        bindings[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds ``numpy``.
                        top = alias.name.split(".", 1)[0]
                        bindings[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    if module is None:
                        continue  # relative import: out of scope
                    base = resolve_relative(
                        module, is_package, node.level, node.module
                    )
                    if base is None:
                        continue
                elif node.module is None:
                    continue
                else:
                    base = node.module
                for alias in node.names:
                    local = alias.asname or alias.name
                    bindings[local] = f"{base}.{alias.name}"
        return cls(bindings=bindings)

    def resolve(self, node: ast.AST) -> str | None:
        """Absolute dotted path of a Name/Attribute chain, or ``None``.

        ``None`` means the chain does not start at an imported name
        (locals, builtins, and computed expressions all resolve to
        ``None``; rules then ignore them).
        """
        chain: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.bindings.get(current.id)
        if base is None:
            return None
        chain.append(base)
        return ".".join(reversed(chain))
