"""Runtime sanitizer: make purity violations fail loudly, at the site.

The static purity analyzer (:mod:`repro.devtools.purity`) proves that
nothing *in the call graph* of a sweep worker mutates shared state or
draws nondeterministic randomness -- but a dynamic escape (``getattr``
tricks, a C extension, a future refactor the resolver cannot follow)
would still corrupt sibling cells silently.  ``REPRO_SANITIZE=1``
closes that gap at runtime:

* **Frozen shared arrays.**  :func:`freeze_array` /
  :func:`freeze_substrate` mark the substrate's constant numpy arrays
  (VP table, botnet placement, collector peers, capacity vectors) and
  every :class:`~repro.netsim.asgraph.CompiledGraph` view read-only,
  so an in-place write raises ``ValueError: assignment destination is
  read-only`` *at the mutation site* instead of poisoning every later
  cell that shares the substrate.
* **RNG draw accounting.**  :func:`counting_generator` wraps each
  per-component stream handed out by
  :func:`repro.util.rng.component_rng`; every draw-method call bumps a
  per-label counter in :data:`STREAM_DRAWS`.  The sweep worker
  snapshots the counters around each cell and reports them as
  ``sanitize/stream/<label>`` telemetry, so tests can assert that
  ``jobs=N`` performs exactly the per-cell draws ``jobs=1`` does --
  a drifted draw count is the earliest symptom of a stream leaking
  between cells.

The sanitizer is observational: wrapped generators delegate every call
to the real ``numpy.random.Generator`` unchanged, and freezing only
flips the ``writeable`` flag.  A sanitized run is bit-identical to a
plain one (the determinism CI job runs once under ``REPRO_SANITIZE=1``
to prove it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, cast

import numpy as np

from ..util.env import SANITIZE, env_flag

if TYPE_CHECKING:
    from ..scenario.engine import Substrate

#: Draw-method calls per stream label since the last :func:`reset_streams`.
#: Mutated only in sanitize mode; observational telemetry, never an
#: input to any simulated quantity.
STREAM_DRAWS: dict[str, int] = {}


def enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` is on (re-read per call, so tests
    can flip it with ``monkeypatch.setenv``)."""
    return env_flag(SANITIZE)


def freeze_array(array: np.ndarray) -> np.ndarray:
    """Mark *array* read-only (no-op when the sanitizer is off, or for
    arrays that are already frozen / not owned base arrays)."""
    if enabled() and isinstance(array, np.ndarray):
        try:
            array.flags.writeable = False
        except ValueError:
            # A view over an exposed writable buffer cannot be locked;
            # leave it -- freezing is best-effort hardening.
            pass
    return array


def freeze_substrate(substrate: "Substrate") -> None:
    """Freeze every constant array a :class:`Substrate` shares between
    runs: the VP table, botnet placement, collector peers, and each
    deployment's capacity/threshold vectors.

    Called by :func:`repro.scenario.engine.build_substrate` when the
    sanitizer is on.  Deployment *state* (announcements, change logs)
    stays mutable -- it is reset per run by design; only the arrays
    whose silent mutation would leak between sweep cells are locked.
    """
    if not enabled():
        return
    vps = substrate.vps
    for array in (
        vps.ids, vps.asns, vps.lats, vps.lons,
        vps.regions, vps.firmware, vps.hijacked,
    ):
        freeze_array(array)
    freeze_array(substrate.botnet.asns)
    freeze_array(substrate.botnet.weights)
    freeze_array(substrate.collectors.peer_asns)
    for letter in substrate.letters:
        deployment = substrate.deployments[letter]
        freeze_array(deployment.capacity_vector)
        freeze_array(deployment._fastpath_thresholds)


#: ``numpy.random.Generator`` methods that consume bits from the
#: stream.  Only these are counted; ``spawn``/``bit_generator`` and
#: friends pass through uncounted.
_DRAW_METHODS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "f", "gamma", "geometric", "gumbel",
        "hypergeometric", "integers", "laplace", "logistic", "lognormal",
        "logseries", "multinomial", "multivariate_hypergeometric",
        "multivariate_normal", "negative_binomial", "noncentral_chisquare",
        "noncentral_f", "normal", "pareto", "permutation", "permuted",
        "poisson", "power", "random", "rayleigh", "shuffle",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "standard_normal", "standard_t", "triangular", "uniform",
        "vonmises", "wald", "weibull", "zipf",
    }
)


class CountingGenerator:
    """A transparent proxy over ``numpy.random.Generator`` that counts
    draw-method calls per stream label.

    Draw *values* are untouched -- every method call is forwarded to
    the wrapped generator verbatim, so a sanitized run stays
    bit-identical to a plain one.  Counting calls (not variates) keeps
    the wrapper O(1) per draw regardless of ``size=``.
    """

    __slots__ = ("_generator", "_label")

    def __init__(self, generator: np.random.Generator, label: str) -> None:
        self._generator = generator
        self._label = label

    def __getattr__(self, name: str) -> object:
        attribute = getattr(self._generator, name)
        if name in _DRAW_METHODS:
            label = self._label

            def counted(*args: object, **kwargs: object) -> object:
                STREAM_DRAWS[label] = STREAM_DRAWS.get(label, 0) + 1
                return attribute(*args, **kwargs)

            return counted
        return attribute

    def __repr__(self) -> str:
        return f"CountingGenerator({self._label!r}, {self._generator!r})"


def counting_generator(
    generator: np.random.Generator, label: str
) -> np.random.Generator:
    """Wrap *generator* so its draws are tallied under *label*.

    Declared as returning ``Generator`` because the proxy is a drop-in
    duck type (the package never isinstance-checks generators); the
    cast keeps call sites' annotations honest.
    """
    return cast(np.random.Generator, CountingGenerator(generator, label))


def reset_streams() -> None:
    """Zero the per-stream draw counters (start of a cell)."""
    STREAM_DRAWS.clear()


def stream_report() -> dict[str, int]:
    """Per-label draw counts since the last reset, label-sorted."""
    return {label: STREAM_DRAWS[label] for label in sorted(STREAM_DRAWS)}
