"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from .runner import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable ``file:line:col: RULE message`` listing."""
    lines = [v.format() for v in report.violations]
    for path, message in report.errors:
        lines.append(f"{path}: error: {message}")
    n = len(report.violations)
    if report.errors:
        lines.append(
            f"{len(report.errors)} file(s) could not be checked"
        )
    if n or report.errors:
        lines.append(
            f"{n} violation(s) in {report.checked_files} checked file(s)"
        )
    else:
        lines.append(
            f"repro lint: {report.checked_files} file(s) clean"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, one JSON object)."""
    payload: dict[str, object] = {
        "checked_files": report.checked_files,
        "violations": [v.to_json() for v in report.violations],
        "errors": [
            {"path": path, "message": message}
            for path, message in report.errors
        ],
        "exit_code": report.exit_code,
    }
    if report.rule_timings:
        payload["rule_timings"] = {
            code: round(seconds, 6)
            for code, seconds in report.rule_timings.items()
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_timings(report: LintReport) -> str:
    """Per-rule wall-time table, slowest rule first."""
    if not report.rule_timings:
        return "no per-rule timing collected"
    total = sum(report.rule_timings.values())
    rows = ["rule     seconds   share"]
    for code, seconds in sorted(
        report.rule_timings.items(), key=lambda item: (-item[1], item[0])
    ):
        share = seconds / total if total > 0 else 0.0
        rows.append(f"{code:<8} {seconds:8.4f}   {share:5.1%}")
    rows.append(f"total    {total:8.4f}")
    return "\n".join(rows)
