"""The determinism (DET) and correctness (COR) rule set.

Each rule encodes one invariant the golden-equivalence fixture and
``scripts/check_determinism.py`` depend on.  Scopes differ: RNG and
wall-clock discipline binds simulation/analysis code (``src``), while
mutable default arguments are a bug anywhere.  See
``docs/architecture.md`` ("Correctness tooling") for the rationale
behind each rule and the suppression syntax.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .registry import Rule, SourceFile, Violation, register

#: ``numpy.random`` attributes that are safe to reference: generator
#: and bit-generator *types* (construction requires an explicit seed
#: to be useful) rather than module-level draw functions.
_NUMPY_RANDOM_TYPES = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Callables that read the wall clock (or a process-relative clock
#: whose origin is wall-time dependent).  Referencing one at all is a
#: violation -- passing ``time.time`` as a callback is as harmful as
#: calling it.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Container methods whose argument acts as a key/membership token.
_TOKEN_SINKS = frozenset(
    {"add", "discard", "remove", "get", "setdefault", "pop", "__contains__"}
)

#: Builtins that realise an iterable into an ordered sequence.
_ORDERING_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_reference_head(file: SourceFile, node: ast.AST) -> bool:
    """True for the outermost Name/Attribute of a dotted reference."""
    return not isinstance(file.parent(node), ast.Attribute)


def _iter_references(
    file: SourceFile,
) -> Iterator[tuple[ast.expr, str]]:
    """Yield (node, absolute dotted path) for every imported-name use."""
    for node in ast.walk(file.tree):
        if not isinstance(node, (ast.Name, ast.Attribute)):
            continue
        if not _is_reference_head(file, node):
            continue
        full = file.imports.resolve(node)
        if full is not None:
            yield node, full


def _call_parent(
    file: SourceFile, node: ast.AST
) -> ast.Call | None:
    """The Call node of which *node* is the callee, if any."""
    parent = file.parent(node)
    if isinstance(parent, ast.Call) and parent.func is node:
        return parent
    return None


@register
class UnseededRandomness(Rule):
    """DET001: randomness outside the seeded per-component streams."""

    code = "DET001"
    summary = "global or unseeded RNG use"
    rationale = (
        "Every stochastic draw must come from repro.util.rng streams "
        "derived from the scenario seed; module-level RNG state makes "
        "runs depend on import order and draw history."
    )

    def applies_to(self, file: SourceFile) -> bool:
        # util/rng.py is the one sanctioned home of default_rng().
        return file.scope == "src" and not file.path.replace(
            "\\", "/"
        ).endswith("repro/util/rng.py")

    def check(self, file: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".", 1)[0]
                    if top == "random":
                        yield file.violation(
                            node,
                            self.code,
                            "import of the stdlib `random` module "
                            "(global RNG state); draw from a seeded "
                            "repro.util.rng stream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield file.violation(
                        node,
                        self.code,
                        "import from the stdlib `random` module "
                        "(global RNG state); draw from a seeded "
                        "repro.util.rng stream instead",
                    )
        for node, full in _iter_references(file):
            if full == "random" or full.startswith("random."):
                yield file.violation(
                    node,
                    self.code,
                    f"`{full}` uses the process-global RNG; draw from "
                    "a seeded repro.util.rng stream instead",
                )
            elif full.startswith("numpy.random."):
                tail = full[len("numpy.random.") :]
                if tail in _NUMPY_RANDOM_TYPES:
                    continue
                if tail == "default_rng":
                    call = _call_parent(file, node)
                    if call is not None and (call.args or call.keywords):
                        continue  # explicitly seeded: fine
                    yield file.violation(
                        node,
                        self.code,
                        "argless `default_rng()` seeds from the OS; "
                        "derive the seed via repro.util.rng instead",
                    )
                else:
                    yield file.violation(
                        node,
                        self.code,
                        f"`{full}` is legacy global-state numpy RNG; "
                        "use a seeded numpy.random.Generator from "
                        "repro.util.rng",
                    )


@register
class IdAsToken(Rule):
    """DET002: ``id()`` used as a cache key or comparison token."""

    code = "DET002"
    summary = "id() used as a dict/cache key or comparison token"
    rationale = (
        "id() values are reused once an object is garbage-collected; "
        "PR 1 fixed a real id(table)-keyed cache returning stale "
        "catchments.  Use an explicit version/key attribute."
    )

    def applies_to(self, file: SourceFile) -> bool:
        return file.scope in ("src", "tests")

    def check(self, file: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                continue
            if self._used_as_token(file, node):
                yield file.violation(
                    node,
                    self.code,
                    "id(...) used as a key/token aliases after garbage "
                    "collection; use an explicit version counter or "
                    "key attribute (see RoutingTable.version)",
                )

    def _used_as_token(self, file: SourceFile, call: ast.Call) -> bool:
        node: ast.AST = call
        parent = file.parent(node)
        # A tuple of ids is still a token: climb through it.
        while isinstance(parent, ast.Tuple):
            node, parent = parent, file.parent(parent)
        if parent is None:
            return False
        if isinstance(parent, ast.Dict) and node in parent.keys:
            return True
        if isinstance(parent, ast.Compare):
            return True
        if isinstance(parent, ast.Subscript) and parent.slice is node:
            return True
        if isinstance(
            parent, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.NamedExpr)
        ) and getattr(parent, "value", None) is node:
            return True
        if (
            isinstance(parent, ast.Call)
            and node in parent.args
            and isinstance(parent.func, ast.Attribute)
            and parent.func.attr in _TOKEN_SINKS
        ):
            return True
        return False


@register
class WallClockRead(Rule):
    """DET003: wall-clock reads in simulation/analysis code."""

    code = "DET003"
    summary = "wall-clock read in simulation/analysis code"
    rationale = (
        "All simulated time flows from TimeGrid and scenario "
        "timestamps; reading the host clock makes outputs depend on "
        "when (and how fast) the run happened."
    )

    def applies_to(self, file: SourceFile) -> bool:
        return file.scope == "src"

    def check(self, file: SourceFile) -> Iterator[Violation]:
        for node, full in _iter_references(file):
            if full in _WALL_CLOCK:
                yield file.violation(
                    node,
                    self.code,
                    f"`{full}` reads the host clock; simulation time "
                    "must come from TimeGrid / scenario timestamps",
                )


@register
class BareSetIteration(Rule):
    """DET004: iterating a set in an order-sensitive position."""

    code = "DET004"
    summary = "iteration over a bare set (arbitrary order)"
    rationale = (
        "Set iteration order varies with insertion history and hash "
        "seeding; feeding it into RNG draws, list construction, or "
        "serialization makes output order a run-time accident.  Wrap "
        "the set in sorted(...)."
    )

    def applies_to(self, file: SourceFile) -> bool:
        return file.scope == "src"

    def check(self, file: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter):
                    yield self._flag(file, node.iter, "a for loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if self._is_set_expr(generator.iter):
                        yield self._flag(file, generator.iter, "a comprehension")
            elif isinstance(node, ast.Call):
                yield from self._check_call(file, node)

    def _check_call(
        self, file: SourceFile, call: ast.Call
    ) -> Iterator[Violation]:
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in _ORDERING_CONSUMERS
            and call.args
            and self._is_set_expr(call.args[0])
        ):
            yield self._flag(file, call.args[0], f"{call.func.id}(...)")
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "join"
            and call.args
            and self._is_set_expr(call.args[0])
        ):
            yield self._flag(file, call.args[0], "str.join(...)")

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _flag(
        self, file: SourceFile, node: ast.expr, where: str
    ) -> Violation:
        return file.violation(
            node,
            self.code,
            f"bare set iterated by {where} has arbitrary order; wrap "
            "it in sorted(...) before consuming",
        )


@register
class MutableDefaultArgument(Rule):
    """COR001: mutable default arguments."""

    code = "COR001"
    summary = "mutable default argument"
    rationale = (
        "A mutable default is shared across calls, so one call's "
        "mutation leaks into the next -- state that survives between "
        "scenario runs breaks run isolation."
    )

    _MUTABLE_LITERALS = (
        ast.List,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
    )
    _MUTABLE_CONSTRUCTORS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
    )

    def check(self, file: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(file.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield file.violation(
                        default,
                        self.code,
                        f"mutable default argument in {name}(); use "
                        "None (or a dataclass default_factory) and "
                        "construct inside the function",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, self._MUTABLE_LITERALS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CONSTRUCTORS
        )


@register
class FloatEquality(Rule):
    """COR002: exact float equality comparisons."""

    code = "COR002"
    summary = "float == / != comparison"
    rationale = (
        "Exact equality on floats silently flips with reassociation "
        "(e.g. the vectorized engine paths); compare with a tolerance "
        "(math.isclose / np.isclose) or restructure as an ordering."
    )

    def applies_to(self, file: SourceFile) -> bool:
        # Tests compare via pytest.approx helpers; the rule guards the
        # simulation/analysis code itself.
        return file.scope == "src"

    def check(self, file: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[i], operands[i + 1]):
                    if self._is_float_literal(side):
                        yield file.violation(
                            node,
                            self.code,
                            "exact equality against a float literal is "
                            "brittle; use math.isclose/np.isclose or an "
                            "ordering comparison",
                        )
                        break

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        )
