"""Command-line entry point: ``python -m repro.devtools.lint src tests``.

Two analysis modes share one CLI and one report/exit-code contract:

* default -- the per-file DET/COR rules;
* ``--purity`` -- the interprocedural PUR rules: build the project
  call graph under the given paths and check every declared purity
  root against the effect summaries (see :mod:`repro.devtools.purity`).

Exit codes form a contract CI relies on:

* ``0`` -- every checked file is clean;
* ``1`` -- at least one violation (printed as ``file:line:col: RULE``);
* ``2`` -- the lint itself failed (missing path, unparseable file,
  missing purity root).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .registry import rule_descriptions
from .report import render_json, render_text, render_timings
from .runner import lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "Enforce the repo's determinism/correctness invariants "
            "(DET001-DET004, COR001-COR002 per file; PUR001-PUR006 "
            "interprocedurally with --purity) over Python sources."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "lint N files in parallel (0 = one worker per CPU; "
            "default: 1; per-file mode only)"
        ),
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="print per-rule wall time after the report (per-file mode)",
    )
    parser.add_argument(
        "--purity",
        action="store_true",
        help=(
            "run the interprocedural purity analysis (PUR001-PUR006) "
            "instead of the per-file rules"
        ),
    )
    parser.add_argument(
        "--purity-root",
        action="append",
        default=None,
        metavar="QUALNAME",
        help=(
            "check this function qualname instead of the declared "
            "purity roots (repeatable)"
        ),
    )
    parser.add_argument(
        "--purity-allowlist",
        default=None,
        metavar="FILE",
        help=(
            "purity allowlist file (default: the in-repo "
            "purity_allowlist.txt next to repro.devtools.purity)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        from .purity import purity_rule_descriptions

        for code, summary, rationale in (
            *rule_descriptions(),
            *purity_rule_descriptions(),
        ):
            print(f"{code}  {summary}")
            print(f"        {rationale}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    if args.purity:
        from .purity import run_purity

        roots = None
        if args.purity_root:
            roots = {
                qualname: "requested via --purity-root"
                for qualname in args.purity_root
            }
        report = run_purity(
            args.paths,
            roots=roots,
            allowlist_path=args.purity_allowlist,
        )
    else:
        report = lint_paths(args.paths, jobs=args.jobs)

    rendered = (
        render_json(report) if args.format == "json" else render_text(report)
    )
    print(rendered)
    if args.timing and args.format == "text":
        print()
        print(render_timings(report))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
