"""Command-line entry point: ``python -m repro.devtools.lint src tests``.

Exit codes form a contract CI relies on:

* ``0`` -- every checked file is clean;
* ``1`` -- at least one violation (printed as ``file:line:col: RULE``);
* ``2`` -- the lint itself failed (missing path, unparseable file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .registry import rule_descriptions
from .report import render_json, render_text
from .runner import lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "Enforce the repo's determinism/correctness invariants "
            "(DET001-DET004, COR001-COR002) over Python sources."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code, summary, rationale in rule_descriptions():
            print(f"{code}  {summary}")
            print(f"        {rationale}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    report = lint_paths(args.paths)
    rendered = (
        render_json(report) if args.format == "json" else render_text(report)
    )
    print(rendered)
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
