"""The ``# repro: noqa`` suppression syntax.

A violation that is intentional is silenced *in place*, with a
mandatory justification::

    rng = np.random.default_rng()  # repro: noqa DET001 -- demo only, result unused

Several codes may be listed, comma-separated.  The justification (the
text after ``--``) is not decoration: a suppression without one is
itself reported (NOQ001), as is a suppression that no longer matches
any violation on its line (NOQ002) -- stale exemptions rot into
blanket ones otherwise.  NOQ violations cannot be suppressed.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

#: Matches the whole suppression comment; codes and reason are parsed
#: separately so malformed variants can be reported precisely.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b(?P<rest>.*)$", re.IGNORECASE
)

#: One rule code: three letters, three digits.
_CODE_RE = re.compile(r"^[A-Z]{3}\d{3}$")

#: Codes that identify problems with suppressions themselves.
NOQA_MISSING_JUSTIFICATION = "NOQ001"
NOQA_UNUSED = "NOQ002"


@dataclass(slots=True)
class Suppression:
    """One parsed ``# repro: noqa`` comment."""

    line: int
    col: int
    codes: frozenset[str]
    reason: str
    #: Set by the runner when a violation is actually silenced.
    used_codes: set[str] = field(default_factory=set)

    @property
    def justified(self) -> bool:
        return bool(self.reason.strip())

    @property
    def well_formed(self) -> bool:
        return bool(self.codes) and self.justified


def parse_suppressions(text: str) -> dict[int, Suppression]:
    """All suppression comments in *text*, keyed by physical line.

    Comments are found with :mod:`tokenize` so a ``# repro: noqa``
    inside a string literal is never mistaken for a suppression.
    """
    found: dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return found
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(tok.string)
        if match is None:
            continue
        rest = match.group("rest")
        if "--" in rest:
            code_part, _, reason = rest.partition("--")
        else:
            code_part, reason = rest, ""
        codes = frozenset(
            c
            for c in re.split(r"[,\s]+", code_part.strip())
            if _CODE_RE.match(c)
        )
        line = tok.start[0]
        found[line] = Suppression(
            line=line,
            col=tok.start[1] + 1,
            codes=codes,
            reason=reason.strip(),
        )
    return found
