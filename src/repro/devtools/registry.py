"""Rule registry, source-file model, and the violation record.

A rule is a small class: a stable code (``DET001``), a one-line
``summary``, a ``rationale`` explaining why the invariant matters for
this repo, a scope predicate (:meth:`Rule.applies_to`), and a
:meth:`Rule.check` generator over one parsed file.  Rules register
themselves with :func:`register` at import time; the runner asks
:func:`all_rules` for the active set, so tests can also instantiate a
single rule directly against fixture snippets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import ClassVar, Iterator, Type

from .imports import ImportMap

#: Files whose basename matches one of these are test code.
_TEST_BASENAMES = ("test_", "conftest")


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule violation at one source location.

    ``witness`` is empty for the per-file rules; the interprocedural
    purity rules (PUR001-PUR006) fill it with the call chain from the
    purity root to the offending operation, one ``qualname
    (file:line)`` hop per element.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    witness: tuple[str, ...] = ()

    def format(self) -> str:
        """The text reporter's ``file:line:col: RULE message`` line(s).

        Witness hops, when present, follow on indented continuation
        lines so the first line stays grep/editor friendly.
        """
        head = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if not self.witness:
            return head
        hops = "\n".join(f"    {hop}" for hop in self.witness)
        return f"{head}\n{hops}"

    def to_json(self) -> dict[str, object]:
        """A JSON-serialisable record of this violation."""
        record: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.witness:
            record["witness"] = list(self.witness)
        return record


@dataclass(slots=True)
class SourceFile:
    """One file, parsed once and shared by every rule.

    ``scope`` is ``"src"`` for package/simulation code, ``"tests"``
    for test code, and ``"other"`` for anything else; rules use it to
    express where an invariant applies (e.g. wall-clock reads are
    fine in a benchmark harness but not in the engine).
    """

    path: str
    text: str
    tree: ast.Module
    scope: str
    #: Maps every AST node to its parent, for context-sensitive rules.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: Local name -> absolute dotted module path for imported names.
    imports: ImportMap = field(default_factory=ImportMap)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        """Parse *text*, raising :class:`SyntaxError` on bad input."""
        tree = ast.parse(text, filename=path)
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        return cls(
            path=path,
            text=text,
            tree=tree,
            scope=classify_scope(path),
            parents=parents,
            imports=ImportMap.from_tree(tree),
        )

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of *node* (None for the module)."""
        return self.parents.get(node)

    def violation(self, node: ast.AST, rule: str, message: str) -> Violation:
        """A :class:`Violation` anchored at *node*'s location."""
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def classify_scope(path: str) -> str:
    """Classify a lint path as ``"src"``, ``"tests"``, or ``"other"``."""
    pure = PurePosixPath(path.replace("\\", "/"))
    name = pure.name
    if any(part == "tests" for part in pure.parts) or name.startswith(
        _TEST_BASENAMES
    ):
        return "tests"
    if any(part in ("src", "repro") for part in pure.parts):
        return "src"
    return "other"


class Rule:
    """Base class for one lint rule.  Subclass and :func:`register`."""

    code: ClassVar[str] = "XXX000"
    summary: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def applies_to(self, file: SourceFile) -> bool:
        """Whether this rule runs on *file* at all (default: always)."""
        return True

    def check(self, file: SourceFile) -> Iterator[Violation]:
        """Yield every violation of this rule in *file*."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_class* to the active rule set."""
    code = rule_class.code
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> tuple[Rule, ...]:
    """Fresh instances of every registered rule, sorted by code."""
    # Importing the rule module populates the registry on first use.
    from . import rules as _rules  # noqa: F401

    return tuple(_REGISTRY[code]() for code in sorted(_REGISTRY))


def rule_descriptions() -> tuple[tuple[str, str, str], ...]:
    """(code, summary, rationale) for every registered rule."""
    return tuple(
        (r.code, r.summary, r.rationale) for r in all_rules()
    )
