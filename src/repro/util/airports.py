"""Airport code table used to place anycast sites and vantage points.

The paper identifies anycast sites as ``X-APT`` where ``X`` is the root
letter and ``APT`` a three-letter airport code near the site (section
2.4.1).  This module provides approximate coordinates for every site code
appearing in the paper's figures (all E- and K-Root sites of Figs. 5-6,
H-Root's two sites, B-Root's single site, ...) plus a worldwide pool used
to synthesise sites for letters whose per-site data the paper does not
publish.

Coordinates are approximate (a tenth of a degree is ~11 km, irrelevant at
RTT scale).  A few of the paper's codes are not IATA airports: ``ARC`` is
NASA Ames Research Center (operator of E-Root), and we place the handful
of otherwise-ambiguous codes (``ABO``, ``AVN``, ``KAE``, ``PLX``) at
plausible hosts; only their coarse geography matters for the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from .geo import Location

#: Continental region tags used for vantage-point biasing.
REGIONS = ("EU", "NA", "SA", "AS", "ME", "AF", "OC")


@dataclass(frozen=True, slots=True)
class Airport:
    """A place where an anycast site or a vantage point can live."""

    code: str
    city: str
    location: Location
    region: str

    def __post_init__(self) -> None:
        if len(self.code) != 3 or not self.code.isupper():
            raise ValueError(f"airport codes are 3 uppercase letters: {self.code}")
        if self.region not in REGIONS:
            raise ValueError(f"unknown region {self.region!r} for {self.code}")


def _a(code: str, city: str, lat: float, lon: float, region: str) -> Airport:
    return Airport(code, city, Location(lat, lon), region)


_AIRPORTS = [
    # --- Europe ---------------------------------------------------------
    _a("AMS", "Amsterdam", 52.3, 4.8, "EU"),
    _a("LHR", "London", 51.5, -0.5, "EU"),
    _a("FRA", "Frankfurt", 50.0, 8.6, "EU"),
    _a("CDG", "Paris", 49.0, 2.5, "EU"),
    _a("VIE", "Vienna", 48.1, 16.6, "EU"),
    _a("ZRH", "Zurich", 47.5, 8.6, "EU"),
    _a("GVA", "Geneva", 46.2, 6.1, "EU"),
    _a("WAW", "Warsaw", 52.2, 20.9, "EU"),
    _a("POZ", "Poznan", 52.4, 16.8, "EU"),
    _a("BER", "Berlin", 52.4, 13.5, "EU"),
    _a("HAM", "Hamburg", 53.6, 10.0, "EU"),
    _a("MUC", "Munich", 48.4, 11.8, "EU"),
    _a("DUS", "Dusseldorf", 51.3, 6.8, "EU"),
    _a("STR", "Stuttgart", 48.7, 9.2, "EU"),
    _a("MAN", "Manchester", 53.4, -2.3, "EU"),
    _a("LBA", "Leeds", 53.9, -1.7, "EU"),
    _a("DUB", "Dublin", 53.4, -6.2, "EU"),
    _a("BRU", "Brussels", 50.9, 4.5, "EU"),
    _a("LUX", "Luxembourg", 49.6, 6.2, "EU"),
    _a("MIL", "Milan", 45.5, 9.3, "EU"),
    _a("TRN", "Turin", 45.2, 7.6, "EU"),
    _a("VCE", "Venice", 45.5, 12.4, "EU"),
    _a("FCO", "Rome", 41.8, 12.3, "EU"),
    _a("NAP", "Naples", 40.9, 14.3, "EU"),
    _a("PRG", "Prague", 50.1, 14.3, "EU"),
    _a("BTS", "Bratislava", 48.2, 17.2, "EU"),
    _a("BUD", "Budapest", 47.4, 19.3, "EU"),
    _a("ATH", "Athens", 37.9, 23.9, "EU"),
    _a("SKG", "Thessaloniki", 40.5, 23.0, "EU"),
    _a("BEG", "Belgrade", 44.8, 20.3, "EU"),
    _a("ZAG", "Zagreb", 45.7, 16.1, "EU"),
    _a("LJU", "Ljubljana", 46.2, 14.5, "EU"),
    _a("SOF", "Sofia", 42.7, 23.4, "EU"),
    _a("OTP", "Bucharest", 44.6, 26.1, "EU"),
    _a("RIX", "Riga", 56.9, 23.9, "EU"),
    _a("VNO", "Vilnius", 54.6, 25.3, "EU"),
    _a("TLL", "Tallinn", 59.4, 24.8, "EU"),
    _a("HEL", "Helsinki", 60.3, 24.9, "EU"),
    _a("ARN", "Stockholm", 59.7, 18.0, "EU"),
    _a("OSL", "Oslo", 60.2, 11.1, "EU"),
    _a("CPH", "Copenhagen", 55.6, 12.6, "EU"),
    _a("MAD", "Madrid", 40.5, -3.6, "EU"),
    _a("BCN", "Barcelona", 41.3, 2.1, "EU"),
    _a("LIS", "Lisbon", 38.8, -9.1, "EU"),
    _a("AVN", "Avignon", 43.9, 4.9, "EU"),
    _a("REY", "Reykjavik", 64.1, -21.9, "EU"),
    _a("KBP", "Kyiv", 50.3, 30.9, "EU"),
    _a("LED", "St. Petersburg", 59.8, 30.3, "EU"),
    _a("DME", "Moscow", 55.4, 37.9, "EU"),
    # --- North America --------------------------------------------------
    _a("IAD", "Washington DC", 38.9, -77.5, "NA"),
    _a("BWI", "Baltimore", 39.2, -76.7, "NA"),
    _a("JFK", "New York", 40.6, -73.8, "NA"),
    _a("LGA", "New York LGA", 40.8, -73.9, "NA"),
    _a("PHL", "Philadelphia", 39.9, -75.2, "NA"),
    _a("BOS", "Boston", 42.4, -71.0, "NA"),
    _a("ATL", "Atlanta", 33.6, -84.4, "NA"),
    _a("MIA", "Miami", 25.8, -80.3, "NA"),
    _a("ORD", "Chicago", 42.0, -87.9, "NA"),
    _a("MSP", "Minneapolis", 44.9, -93.2, "NA"),
    _a("DTW", "Detroit", 42.2, -83.4, "NA"),
    _a("DFW", "Dallas", 32.9, -97.0, "NA"),
    _a("IAH", "Houston", 30.0, -95.3, "NA"),
    _a("DEN", "Denver", 39.9, -104.7, "NA"),
    _a("PHX", "Phoenix", 33.4, -112.0, "NA"),
    _a("SLC", "Salt Lake City", 40.8, -112.0, "NA"),
    _a("LAS", "Las Vegas", 36.1, -115.2, "NA"),
    _a("NLV", "North Las Vegas", 36.2, -115.2, "NA"),
    _a("RNO", "Reno", 39.5, -119.8, "NA"),
    _a("LAX", "Los Angeles", 33.9, -118.4, "NA"),
    _a("BUR", "Burbank", 34.2, -118.4, "NA"),
    _a("SNA", "Santa Ana", 33.7, -117.9, "NA"),
    _a("SAN", "San Diego", 32.7, -117.2, "NA"),
    _a("SFO", "San Francisco", 37.6, -122.4, "NA"),
    _a("SJC", "San Jose", 37.4, -121.9, "NA"),
    _a("PAO", "Palo Alto", 37.5, -122.1, "NA"),
    _a("ARC", "NASA Ames (Moffett Field)", 37.4, -122.1, "NA"),
    _a("SEA", "Seattle", 47.4, -122.3, "NA"),
    _a("PDX", "Portland", 45.6, -122.6, "NA"),
    _a("MCI", "Kansas City Intl", 39.3, -94.7, "NA"),
    _a("MKC", "Kansas City", 39.1, -94.6, "NA"),
    _a("ANC", "Anchorage", 61.2, -150.0, "NA"),
    _a("KAE", "Kake, Alaska", 57.0, -134.0, "NA"),
    _a("HNL", "Honolulu", 21.3, -157.9, "NA"),
    _a("YYZ", "Toronto", 43.7, -79.6, "NA"),
    _a("YUL", "Montreal", 45.5, -73.7, "NA"),
    _a("YVR", "Vancouver", 49.2, -123.2, "NA"),
    _a("YYC", "Calgary", 51.1, -114.0, "NA"),
    _a("MEX", "Mexico City", 19.4, -99.1, "NA"),
    # --- South America ---------------------------------------------------
    _a("GRU", "Sao Paulo", -23.4, -46.5, "SA"),
    _a("GIG", "Rio de Janeiro", -22.8, -43.2, "SA"),
    _a("EZE", "Buenos Aires", -34.8, -58.5, "SA"),
    _a("SCL", "Santiago", -33.4, -70.8, "SA"),
    _a("BOG", "Bogota", 4.7, -74.1, "SA"),
    _a("LIM", "Lima", -12.0, -77.1, "SA"),
    _a("UIO", "Quito", -0.1, -78.4, "SA"),
    _a("CCS", "Caracas", 10.6, -67.0, "SA"),
    # --- Asia ------------------------------------------------------------
    _a("NRT", "Tokyo Narita", 35.8, 140.4, "AS"),
    _a("HND", "Tokyo Haneda", 35.6, 139.8, "AS"),
    _a("KIX", "Osaka", 34.4, 135.2, "AS"),
    _a("ICN", "Seoul", 37.5, 126.5, "AS"),
    _a("PEK", "Beijing", 40.1, 116.6, "AS"),
    _a("PVG", "Shanghai", 31.1, 121.8, "AS"),
    _a("HKG", "Hong Kong", 22.3, 113.9, "AS"),
    _a("TPE", "Taipei", 25.1, 121.2, "AS"),
    _a("SIN", "Singapore", 1.4, 104.0, "AS"),
    _a("QPG", "Singapore Paya Lebar", 1.4, 103.9, "AS"),
    _a("KUL", "Kuala Lumpur", 2.7, 101.7, "AS"),
    _a("BKK", "Bangkok", 13.7, 100.8, "AS"),
    _a("CGK", "Jakarta", -6.1, 106.7, "AS"),
    _a("MNL", "Manila", 14.5, 121.0, "AS"),
    _a("BOM", "Mumbai", 19.1, 72.9, "AS"),
    _a("DEL", "Delhi", 28.6, 77.1, "AS"),
    _a("MAA", "Chennai", 13.0, 80.2, "AS"),
    _a("OVB", "Novosibirsk", 55.0, 82.7, "AS"),
    _a("PLX", "Semey", 50.4, 80.2, "AS"),
    _a("ALA", "Almaty", 43.4, 77.0, "AS"),
    # --- Middle East -----------------------------------------------------
    _a("DXB", "Dubai", 25.3, 55.4, "ME"),
    _a("AUH", "Abu Dhabi", 24.4, 54.7, "ME"),
    _a("ABO", "Abu Dhabi area", 24.5, 54.4, "ME"),
    _a("DOH", "Doha", 25.3, 51.6, "ME"),
    _a("THR", "Tehran", 35.7, 51.3, "ME"),
    _a("TLV", "Tel Aviv", 32.0, 34.9, "ME"),
    _a("AMM", "Amman", 31.7, 36.0, "ME"),
    _a("IST", "Istanbul", 41.0, 28.8, "ME"),
    _a("KWI", "Kuwait City", 29.2, 48.0, "ME"),
    # --- Africa ----------------------------------------------------------
    _a("JNB", "Johannesburg", -26.1, 28.2, "AF"),
    _a("CPT", "Cape Town", -34.0, 18.6, "AF"),
    _a("NBO", "Nairobi", -1.3, 36.9, "AF"),
    _a("KGL", "Kigali", -2.0, 30.1, "AF"),
    _a("LAD", "Luanda", -8.9, 13.2, "AF"),
    _a("CAI", "Cairo", 30.1, 31.4, "AF"),
    _a("CMN", "Casablanca", 33.4, -7.6, "AF"),
    _a("DKR", "Dakar", 14.7, -17.5, "AF"),
    _a("TUN", "Tunis", 36.9, 10.2, "AF"),
    _a("LOS", "Lagos", 6.6, 3.3, "AF"),
    # --- Oceania ---------------------------------------------------------
    _a("SYD", "Sydney", -33.9, 151.2, "OC"),
    _a("MEL", "Melbourne", -37.7, 144.8, "OC"),
    _a("BNE", "Brisbane", -27.4, 153.1, "OC"),
    _a("PER", "Perth", -31.9, 116.0, "OC"),
    _a("ADL", "Adelaide", -34.9, 138.5, "OC"),
    _a("AKL", "Auckland", -37.0, 174.8, "OC"),
    _a("WLG", "Wellington", -41.3, 174.8, "OC"),
]

#: Mapping of airport code to :class:`Airport` for every known code.
AIRPORTS: dict[str, Airport] = {ap.code: ap for ap in _AIRPORTS}

if len(AIRPORTS) != len(_AIRPORTS):  # pragma: no cover - table sanity
    raise AssertionError("duplicate airport codes in table")


def airport(code: str) -> Airport:
    """Look up an airport by code, raising :class:`KeyError` if unknown."""
    try:
        return AIRPORTS[code]
    except KeyError:
        raise KeyError(f"unknown airport code {code!r}") from None


def codes_in_region(region: str) -> list[str]:
    """All airport codes in *region*, in table order."""
    if region not in REGIONS:
        raise ValueError(f"unknown region {region!r}")
    return [ap.code for ap in _AIRPORTS if ap.region == region]
