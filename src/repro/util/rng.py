"""Randomness discipline for reproducible simulations.

Every stochastic component in the package draws from a
:class:`numpy.random.Generator` that is derived from a single scenario
seed plus a stable component label.  This keeps results reproducible
(same seed, same dataset) while decoupling components: adding draws to
one component does not shift the streams of others.
"""

from __future__ import annotations

import zlib

import numpy as np

from .env import SANITIZE, env_flag


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a per-component seed from a root seed and a stable label."""
    if root_seed < 0:
        raise ValueError("root seed must be non-negative")
    tag = zlib.crc32(label.encode("utf-8"))
    return (root_seed * 0x9E3779B1 + tag) % (2**63)


def component_rng(root_seed: int, label: str) -> np.random.Generator:
    """A generator dedicated to one named component of the simulation.

    Under ``REPRO_SANITIZE=1`` the generator is wrapped in a
    draw-counting proxy (:mod:`repro.devtools.sanitize`); draw values
    are bit-identical either way, the proxy only tallies calls per
    stream label so sweep tests can assert ``jobs=N`` draw parity.
    """
    generator = np.random.default_rng(derive_seed(root_seed, label))
    if env_flag(SANITIZE):
        from ..devtools.sanitize import counting_generator

        return counting_generator(generator, label)
    return generator


class RngFactory:
    """Hands out independent per-component generators for one scenario.

    >>> rngs = RngFactory(seed=42)
    >>> a = rngs.get("atlas.probes")
    >>> b = rngs.get("attack.botnet")
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = seed
        self._issued: set[str] = set()

    def get(self, label: str) -> np.random.Generator:
        """Return a fresh generator for *label*.

        Each label may be requested once per factory, which catches the
        bug of two components accidentally sharing a stream.
        """
        if label in self._issued:
            raise ValueError(f"RNG stream {label!r} already issued")
        self._issued.add(label)
        return component_rng(self.seed, label)
