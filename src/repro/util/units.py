"""Unit conversions used throughout the reproduction.

The paper reports traffic in Mq/s (million queries per second) and Gb/s
(gigabits per second).  Converting between them requires the on-wire
packet size; section 3.1 derives 84/85-byte queries and 493/494-byte
responses for the event traffic (DNS payload plus 40 bytes of IP, UDP
and DNS header overhead).
"""

from __future__ import annotations

#: Bytes of IP + UDP + DNS header overhead added to a DNS payload
#: (section 3.1 of the paper).
HEADER_OVERHEAD_BYTES = 40

#: Bits per byte; spelled out so bitrate formulas read naturally.
BITS_PER_BYTE = 8

#: Full on-wire sizes the paper confirms for the event traffic.
EVENT_QUERY_WIRE_BYTES_NOV30 = 84
EVENT_QUERY_WIRE_BYTES_DEC1 = 85
EVENT_RESPONSE_WIRE_BYTES = 494


def mqps(queries_per_second: float) -> float:
    """Queries/s expressed in Mq/s (the paper's unit)."""
    return queries_per_second / 1e6

def qps_from_mqps(mega_queries_per_second: float) -> float:
    """Mq/s back to raw queries/s."""
    return mega_queries_per_second * 1e6


def gbps(queries_per_second: float, wire_bytes: float) -> float:
    """Bitrate in Gb/s for a query stream of fixed on-wire size."""
    if wire_bytes < 0:
        raise ValueError("packet size cannot be negative")
    return queries_per_second * wire_bytes * BITS_PER_BYTE / 1e9


def wire_bytes(payload_bytes: float) -> float:
    """On-wire packet size for a DNS payload (adds header overhead)."""
    if payload_bytes < 0:
        raise ValueError("payload size cannot be negative")
    return payload_bytes + HEADER_OVERHEAD_BYTES
