"""The single sanctioned choke point for environment-variable reads.

Determinism contract: a simulated quantity must never depend on the
host environment, but a handful of *operational* toggles legitimately
live there -- the incremental-routing escape hatch
(``REPRO_BGP_DELTA``), the test-only sweep chaos hook
(``REPRO_SWEEP_CHAOS``), the runtime sanitizer
(``REPRO_SANITIZE``), the zero-copy sweep-substrate toggle
(``REPRO_SWEEP_SHM``), and the segment-batched engine escape hatch
(``REPRO_ENGINE_BATCH``).  Every one of those reads goes through
:func:`read_env` so the interprocedural purity analyzer
(:mod:`repro.devtools.purity`) has exactly one allowlisted ENV_READ
source to reason about; an ``os.environ`` read anywhere else in the
call graph of a purity root is a violation.

All accessors re-read the environment on every call, so tests can
flip a knob with ``monkeypatch.setenv`` and see the change
immediately -- no import-time caching.
"""

from __future__ import annotations

import os

#: The operational toggles this repo recognises.  Names are collected
#: here so call sites never spell a raw string twice.
BGP_DELTA = "REPRO_BGP_DELTA"
SWEEP_CHAOS = "REPRO_SWEEP_CHAOS"
SANITIZE = "REPRO_SANITIZE"
#: Zero-copy shared-memory substrates for parallel sweeps; set to
#: ``"0"`` to force the legacy per-worker rebuild (pickled) path.
SWEEP_SHM = "REPRO_SWEEP_SHM"
#: Segment-batched engine execution; set to ``"0"`` to force the
#: per-bin reference path (bit-identical by construction, see
#: docs/architecture.md "Segment-batched execution").
ENGINE_BATCH = "REPRO_ENGINE_BATCH"


def read_env(name: str, default: str = "") -> str:
    """The one environment read in the package.

    Everything else in ``repro`` that consults the environment goes
    through here (or a typed accessor below, which does).  The purity
    allowlist grants this function -- and only this function -- the
    ENV_READ effect.
    """
    return os.environ.get(name, default)


def env_flag(name: str, *, default: bool = False) -> bool:
    """A boolean toggle: ``"0"``/``""``/unset-with-default-False are
    off, anything else is on.

    ``env_flag(BGP_DELTA, default=True)`` preserves the historical
    semantics of that knob: set-but-``"0"`` disables, unset enables.
    """
    raw = read_env(name, "1" if default else "")
    return raw not in ("", "0")


def env_str(name: str, default: str = "") -> str:
    """A free-form string toggle (e.g. the chaos spec grammar)."""
    return read_env(name, default)
