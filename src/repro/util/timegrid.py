"""Time handling for event simulation and analysis.

The paper analyses two days of data (2015-11-30 and 2015-12-01, UTC),
mapping raw RIPE Atlas observations onto ten-minute bins (2.5 probing
intervals, see paper section 2.4.1).  All simulation and analysis code in
this package shares the :class:`TimeGrid` abstraction defined here:
timestamps are POSIX seconds, bins are half-open intervals
``[start + i * bin_seconds, start + (i + 1) * bin_seconds)``.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

#: POSIX timestamp of 2015-11-30T00:00:00Z, the start of the paper's
#: observation window ("hours after 2015-11-30t00:00 UTC" in Figs. 5-11).
EVENT_WINDOW_START = int(
    _dt.datetime(2015, 11, 30, tzinfo=_dt.timezone.utc).timestamp()
)

#: Duration, in seconds, of the paper's two-day observation window.
EVENT_WINDOW_SECONDS = 48 * 3600

#: The paper's analysis bin width (section 2.4.1): ten minutes.
PAPER_BIN_SECONDS = 600

#: RIPE Atlas CHAOS probing interval at the time of the events.
ATLAS_PROBE_INTERVAL = 240

#: A-Root's (then) exceptional probing interval (section 2.4.1).
ATLAS_PROBE_INTERVAL_A = 1800

#: Atlas query timeout (section 2.4.1): five seconds.
ATLAS_TIMEOUT_MS = 5000.0


def utc(year: int, month: int, day: int, hour: int = 0, minute: int = 0) -> int:
    """Return the POSIX timestamp of a UTC wall-clock time."""
    moment = _dt.datetime(
        year, month, day, hour, minute, tzinfo=_dt.timezone.utc
    )
    return int(moment.timestamp())


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open time interval ``[start, end)`` in POSIX seconds."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def seconds(self) -> int:
        """Length of the interval in seconds."""
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        """Return whether *timestamp* falls inside the interval."""
        return self.start <= timestamp < self.end

    def overlaps(self, other: "Interval") -> bool:
        """Return whether two intervals share any instant."""
        return self.start < other.end and other.start < self.end

    def hours_after(self, origin: int) -> tuple[float, float]:
        """Return (start, end) expressed as hours after *origin*."""
        return (self.start - origin) / 3600.0, (self.end - origin) / 3600.0


#: First event: Nov 30, 06:50-09:30 UTC (160 minutes; section 2.3).
EVENT_1 = Interval(utc(2015, 11, 30, 6, 50), utc(2015, 11, 30, 9, 30))

#: Second event: Dec 1, 05:10-06:10 UTC (60 minutes; section 2.3).
EVENT_2 = Interval(utc(2015, 12, 1, 5, 10), utc(2015, 12, 1, 6, 10))

#: Both events, in chronological order.
EVENTS = (EVENT_1, EVENT_2)


@dataclass(frozen=True, slots=True)
class TimeGrid:
    """A uniform grid of time bins.

    Parameters
    ----------
    start:
        POSIX timestamp of the left edge of bin 0.
    bin_seconds:
        Width of each bin in seconds.
    n_bins:
        Number of bins in the grid.
    """

    start: int
    bin_seconds: int
    n_bins: int

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if self.n_bins <= 0:
            raise ValueError("n_bins must be positive")

    @classmethod
    def paper_window(cls, bin_seconds: int = PAPER_BIN_SECONDS) -> "TimeGrid":
        """The two-day window of the paper, in ten-minute bins by default."""
        if EVENT_WINDOW_SECONDS % bin_seconds:
            raise ValueError(
                f"bin width {bin_seconds}s does not tile the 48 h window"
            )
        return cls(
            start=EVENT_WINDOW_START,
            bin_seconds=bin_seconds,
            n_bins=EVENT_WINDOW_SECONDS // bin_seconds,
        )

    @property
    def end(self) -> int:
        """POSIX timestamp of the right edge of the last bin."""
        return self.start + self.bin_seconds * self.n_bins

    @property
    def seconds(self) -> int:
        """Total covered duration in seconds."""
        return self.bin_seconds * self.n_bins

    def bin_index(self, timestamp: float) -> int:
        """Return the bin index containing *timestamp*.

        Raises :class:`ValueError` for timestamps outside the grid.
        """
        offset = timestamp - self.start
        if offset < 0 or offset >= self.seconds:
            raise ValueError(
                f"timestamp {timestamp} outside grid "
                f"[{self.start}, {self.end})"
            )
        return int(offset // self.bin_seconds)

    def bin_indices(self, timestamps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`bin_index`; out-of-grid values raise."""
        timestamps = np.asarray(timestamps, dtype=np.float64)
        offsets = timestamps - self.start
        if ((offsets < 0) | (offsets >= self.seconds)).any():
            raise ValueError("one or more timestamps outside grid")
        return (offsets // self.bin_seconds).astype(np.int64)

    def bin_start(self, index: int) -> int:
        """POSIX timestamp of the left edge of bin *index*."""
        self._check_index(index)
        return self.start + index * self.bin_seconds

    def bin_interval(self, index: int) -> Interval:
        """The half-open interval covered by bin *index*."""
        left = self.bin_start(index)
        return Interval(left, left + self.bin_seconds)

    def bin_centers(self) -> np.ndarray:
        """POSIX timestamps of all bin centres, shape ``(n_bins,)``."""
        edges = self.start + np.arange(self.n_bins) * self.bin_seconds
        return edges + self.bin_seconds / 2.0

    def hours(self) -> np.ndarray:
        """Bin centres as hours after the grid start (paper's x axes)."""
        return (self.bin_centers() - self.start) / 3600.0

    def bins_overlapping(self, interval: Interval) -> np.ndarray:
        """Indices of all bins that overlap *interval*."""
        first = max(0, int((interval.start - self.start) // self.bin_seconds))
        last_edge = interval.end - 1
        last = min(
            self.n_bins - 1,
            int((last_edge - self.start) // self.bin_seconds),
        )
        if last < first:
            return np.empty(0, dtype=np.int64)
        indices = np.arange(first, last + 1)
        keep = [
            i for i in indices if self.bin_interval(int(i)).overlaps(interval)
        ]
        return np.asarray(keep, dtype=np.int64)

    def event_mask(self, intervals: tuple[Interval, ...] = EVENTS) -> np.ndarray:
        """Boolean mask over bins that overlap any of *intervals*."""
        mask = np.zeros(self.n_bins, dtype=bool)
        for interval in intervals:
            clipped = Interval(
                max(interval.start, self.start), min(interval.end, self.end)
            )
            if clipped.seconds <= 0:
                continue
            mask[self.bins_overlapping(clipped)] = True
        return mask

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_bins:
            raise IndexError(
                f"bin index {index} out of range [0, {self.n_bins})"
            )
