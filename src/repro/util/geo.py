"""Geographic primitives: coordinates, great-circle distance, RTT model.

Catchments in the paper are shaped by BGP policy, but latency between a
vantage point and an anycast site is dominated by geography.  We model
propagation delay from great-circle distance with a path-inflation factor,
which reproduces the per-letter baseline RTT differences visible in the
paper's Figure 4 (e.g. H-Root's US-east vs US-west RTT step as seen from
mostly-European Atlas probes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Mean Earth radius in kilometres.
EARTH_RADIUS_KM = 6371.0

#: Signal speed in fibre, km per millisecond (about 2/3 c).
FIBRE_KM_PER_MS = 200.0

#: Multiplier accounting for paths not following great circles.
PATH_INFLATION = 1.5

#: Fixed per-query overhead (serialisation, processing), milliseconds.
BASE_OVERHEAD_MS = 8.0


@dataclass(frozen=True, slots=True)
class Location:
    """A point on Earth, in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")


def haversine_km(a: Location, b: Location) -> float:
    """Great-circle distance between two locations in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def haversine_km_vec(
    lats1: np.ndarray,
    lons1: np.ndarray,
    lats2: np.ndarray,
    lons2: np.ndarray,
) -> np.ndarray:
    """Vectorised great-circle distance, broadcasting over inputs."""
    lat1 = np.radians(np.asarray(lats1, dtype=np.float64))
    lon1 = np.radians(np.asarray(lons1, dtype=np.float64))
    lat2 = np.radians(np.asarray(lats2, dtype=np.float64))
    lon2 = np.radians(np.asarray(lons2, dtype=np.float64))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        np.sin(dlat / 2.0) ** 2
        + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))


def propagation_rtt_ms(distance_km: float) -> float:
    """Unloaded round-trip time for a path of *distance_km* kilometres."""
    one_way = distance_km * PATH_INFLATION / FIBRE_KM_PER_MS
    return 2.0 * one_way + BASE_OVERHEAD_MS


def propagation_rtt_ms_vec(distance_km: np.ndarray) -> np.ndarray:
    """Vectorised :func:`propagation_rtt_ms`."""
    distance_km = np.asarray(distance_km, dtype=np.float64)
    return 2.0 * distance_km * PATH_INFLATION / FIBRE_KM_PER_MS + BASE_OVERHEAD_MS


def rtt_between(a: Location, b: Location) -> float:
    """Unloaded RTT between two locations, in milliseconds."""
    return propagation_rtt_ms(haversine_km(a, b))
