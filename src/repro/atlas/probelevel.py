"""Probe-level record generation (the raw RIPE Atlas result shape).

The binned matrices of :mod:`repro.datasets.observations` are the
analysis-ready form, but real Atlas data arrives as individual probe
results: one CHAOS query per VP per probing interval, carrying the raw
TXT answer string.  This module expands binned observations back into
that raw shape -- used by the cleaning/binning pipeline tests (which
must parse identities and apply the paper's bin-preference rule) and
by the NDJSON export examples.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..datasets.io import ProbeRecord
from ..datasets.observations import (
    RESP_BOGUS,
    RESP_ERROR,
    RESP_NOT_PROBED,
    RESP_TIMEOUT,
    AtlasDataset,
)
from ..dns.chaos import format_identity
from ..util.timegrid import ATLAS_PROBE_INTERVAL

#: Reply string a hijacking middlebox returns (matches no letter).
BOGUS_ANSWER = "local-forwarder"


def to_probe_records(
    dataset: AtlasDataset,
    letter: str,
    rng: np.random.Generator,
    vp_ids: np.ndarray | None = None,
    probe_interval_s: int = ATLAS_PROBE_INTERVAL,
) -> Iterator[ProbeRecord]:
    """Expand binned observations of *letter* into raw probe records.

    Each VP probes every *probe_interval_s* seconds at a per-VP phase;
    each probe inherits the outcome of the bin it falls in, with small
    per-probe RTT jitter.  Records are yielded in time order per VP.
    """
    obs = dataset.letter(letter)
    grid = dataset.grid
    if vp_ids is None:
        vp_positions = np.arange(len(dataset.vps))
    else:
        id_to_pos = {int(v): i for i, v in enumerate(dataset.vps.ids)}
        vp_positions = np.array([id_to_pos[int(v)] for v in vp_ids])

    for pos in vp_positions:
        vp_id = int(dataset.vps.ids[pos])
        firmware = int(dataset.vps.firmware[pos])
        phase = float(rng.uniform(0, probe_interval_s))
        t = grid.start + phase
        while t < grid.end:
            bin_index = grid.bin_index(t)
            code = int(obs.site_idx[bin_index, pos])
            if code == RESP_NOT_PROBED:
                t += probe_interval_s
                continue
            if code >= 0:
                rtt = float(obs.rtt_ms[bin_index, pos])
                answer = format_identity(
                    letter,
                    obs.site_codes[code],
                    int(obs.server[bin_index, pos]),
                )
                yield ProbeRecord(
                    vp_id=vp_id,
                    letter=letter,
                    timestamp=t,
                    answer=answer,
                    rtt_ms=rtt * float(np.exp(rng.normal(0, 0.05))),
                    rcode=0,
                    firmware=firmware,
                )
            elif code == RESP_ERROR:
                yield ProbeRecord(
                    vp_id=vp_id,
                    letter=letter,
                    timestamp=t,
                    answer=None,
                    rtt_ms=None,
                    rcode=2,  # SERVFAIL
                    firmware=firmware,
                )
            elif code == RESP_BOGUS:
                rtt = float(obs.rtt_ms[bin_index, pos])
                yield ProbeRecord(
                    vp_id=vp_id,
                    letter=letter,
                    timestamp=t,
                    answer=BOGUS_ANSWER,
                    rtt_ms=rtt,
                    rcode=0,
                    firmware=firmware,
                )
            elif code == RESP_TIMEOUT:
                yield ProbeRecord(
                    vp_id=vp_id,
                    letter=letter,
                    timestamp=t,
                    answer=None,
                    rtt_ms=None,
                    rcode=None,
                    firmware=firmware,
                )
            else:
                raise ValueError(f"unknown sentinel {code}")
            t += probe_interval_s
