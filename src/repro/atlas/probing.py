"""The probing engine: per-bin CHAOS measurements of one letter.

For every ten-minute bin the scenario engine hands this module the
letter's current conditions -- the routing table (who reaches which
site) and each site's loss fraction and queueing delay -- and the
engine samples what every vantage point would observe:

* the site answering (from the VP's AS catchment),
* the server answering (source-hash load balancing, modified by the
  site's stress behaviour, section 3.5),
* the RTT (geographic baseline + queueing delay + jitter), subject to
  the 5-second Atlas timeout,
* or a failure: timeout (queue drop / no route) or an error RCODE.

Hijacked VPs (section 2.4.1) are answered by a third party regardless
of the letter's state: a non-matching reply with a very short RTT.
A-Root's 30-minute probing cadence leaves 2 of each 3 bins unprobed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.observations import (
    RESP_BOGUS,
    RESP_ERROR,
    RESP_NOT_PROBED,
    RESP_TIMEOUT,
    LetterObservations,
    VantagePointTable,
)
from ..netsim.bgp import RoutingTable
from ..rootdns.deployment import LetterDeployment
from ..rootdns.servers import (
    observed_servers,
    server_delay_multipliers,
    server_loss_multipliers,
)
from ..util.geo import haversine_km_vec, propagation_rtt_ms_vec
from ..util.timegrid import ATLAS_TIMEOUT_MS, TimeGrid

#: Background failure probability of a healthy query (packet loss,
#: probe restarts); keeps the "normal" curves of Fig. 3 mildly noisy.
BASELINE_FAILURE_PROB = 0.005

#: Probability that a failed query surfaces as an error RCODE rather
#: than a timeout (overloaded servers sometimes answer SERVFAIL).
ERROR_GIVEN_FAILURE = 0.1

#: RTT of a hijacker's local answer (the paper flags < 7 ms).
HIJACK_RTT_MS = 3.0

#: Lognormal RTT jitter sigma.
RTT_JITTER_SIGMA = 0.12


@dataclass(frozen=True, slots=True)
class SiteBinConditions:
    """Per-site conditions for one letter in one bin (site order)."""

    loss: np.ndarray          # float64 (n_sites,)
    delay_ms: np.ndarray      # float64 (n_sites,)
    overloaded: np.ndarray    # bool    (n_sites,)

    def __post_init__(self) -> None:
        if not (
            self.loss.shape == self.delay_ms.shape == self.overloaded.shape
        ):
            raise ValueError("condition arrays misaligned")


class LetterProber:
    """Samples one letter's observations bin by bin."""

    def __init__(
        self,
        deployment: LetterDeployment,
        vps: VantagePointTable,
        grid: TimeGrid,
        rng: np.random.Generator,
    ) -> None:
        self.deployment = deployment
        self.vps = vps
        self.grid = grid
        self.rng = rng
        self.letter = deployment.letter
        self.site_codes = list(deployment.site_order)
        n_vps = len(vps)
        n_sites = len(self.site_codes)

        # Baseline RTT from each VP to each site.
        site_lats = np.array(
            [s.location.lat for s in deployment.spec.sites]
        )
        site_lons = np.array(
            [s.location.lon for s in deployment.spec.sites]
        )
        distances = haversine_km_vec(
            vps.lats[:, None], vps.lons[:, None],
            site_lats[None, :], site_lons[None, :],
        )
        self.base_rtt = propagation_rtt_ms_vec(distances)

        # Source hashes for load balancing; stable per VP.
        self.vp_hashes = (vps.ids * np.int64(2654435761)) & np.int64(
            0x7FFFFFFF
        )

        # Probing cadence: A-Root was probed every 30 minutes, giving
        # one probe per three bins; the other letters probe every four
        # minutes, giving 2.5 probes per ten-minute bin.  Bins prefer a
        # site answer over errors over missing (section 2.4.1), so a
        # bin succeeds when *any* of its probes succeeds.
        interval = deployment.spec.probe_interval_s
        self.bins_per_probe = max(1, interval // grid.bin_seconds)
        self.probes_per_bin = max(1.0, grid.bin_seconds / interval)
        self.probe_phase = rng.integers(
            self.bins_per_probe, size=n_vps
        )

        self.n_servers = np.array(
            [s.n_servers for s in deployment.spec.sites], dtype=np.int64
        )

        # Output matrices.
        self.site_idx = np.full(
            (grid.n_bins, n_vps), RESP_NOT_PROBED, dtype=np.int16
        )
        self.rtt_ms = np.full((grid.n_bins, n_vps), np.nan, dtype=np.float32)
        self.server = np.zeros((grid.n_bins, n_vps), dtype=np.int16)

        self._catchment_cache: dict[int, np.ndarray] = {}

    def _vp_site_indices(self, table: RoutingTable) -> np.ndarray:
        """Site index per VP (-1 when the VP's AS has no route)."""
        key = id(table)
        cached = self._catchment_cache.get(key)
        if cached is not None:
            return cached
        code_to_idx = {c: i for i, c in enumerate(self.site_codes)}
        asn_site: dict[int, int] = {}
        for asn in np.unique(self.vps.asns):
            site = table.site_of(int(asn))
            asn_site[int(asn)] = code_to_idx[site] if site else -1
        result = np.array(
            [asn_site[int(a)] for a in self.vps.asns], dtype=np.int64
        )
        self._catchment_cache[key] = result
        return result

    def sample_bin(
        self,
        bin_index: int,
        table: RoutingTable,
        conditions: SiteBinConditions,
    ) -> None:
        """Fill in one bin's observations for every VP."""
        n_vps = len(self.vps)
        probed = (
            (bin_index + self.probe_phase) % self.bins_per_probe == 0
        )
        if not probed.any():
            return

        out_site = np.full(n_vps, RESP_NOT_PROBED, dtype=np.int16)
        out_rtt = np.full(n_vps, np.nan, dtype=np.float32)
        out_server = np.zeros(n_vps, dtype=np.int16)

        vp_site = self._vp_site_indices(table)
        active = probed & ~self.vps.hijacked
        routed = active & (vp_site >= 0)

        # Hijacked VPs: local bogus answer, fast, always "up".
        hijacked = probed & self.vps.hijacked
        out_site[hijacked] = RESP_BOGUS
        out_rtt[hijacked] = HIJACK_RTT_MS * (
            1.0
            + self.rng.normal(0.0, 0.1, int(hijacked.sum())).clip(-0.3, 0.3)
        )

        # Unrouted VPs: no path to any site -> timeout.
        out_site[active & (vp_site < 0)] = RESP_TIMEOUT

        if routed.any():
            sites = vp_site[routed]
            # Server selection per site behaviour.
            servers = np.empty(sites.size, dtype=np.int64)
            loss = conditions.loss[sites].copy()
            delay = conditions.delay_ms[sites].copy()
            for idx in np.unique(sites):
                spec = self.deployment.spec.sites[idx]
                state = self.deployment.states[spec.code]
                mask = sites == idx
                overloaded = bool(conditions.overloaded[idx])
                chosen = observed_servers(
                    spec.server_behavior,
                    spec.n_servers,
                    self.vp_hashes[routed][mask],
                    overloaded,
                    state.shed_server,
                )
                servers[mask] = chosen
                loss_mult = server_loss_multipliers(
                    spec.server_behavior, spec.code, spec.n_servers,
                    overloaded,
                )
                delay_mult = server_delay_multipliers(
                    spec.server_behavior, spec.code, spec.n_servers,
                    overloaded,
                )
                loss[mask] = np.clip(
                    loss[mask] * loss_mult[chosen - 1], 0.0, 1.0
                )
                delay[mask] = delay[mask] * delay_mult[chosen - 1]

            fail_prob = np.clip(
                loss + BASELINE_FAILURE_PROB, 0.0, 1.0
            )
            # A bin fails only when every probe in it fails.
            bin_fail_prob = fail_prob**self.probes_per_bin
            failed = self.rng.random(sites.size) < bin_fail_prob
            jitter = np.exp(
                self.rng.normal(0.0, RTT_JITTER_SIGMA, sites.size)
            )
            rtts = (
                self.base_rtt[np.flatnonzero(routed), sites] * jitter + delay
            )
            timed_out = rtts > ATLAS_TIMEOUT_MS

            site_result = sites.astype(np.int16)
            site_result[failed] = np.where(
                self.rng.random(int(failed.sum())) < ERROR_GIVEN_FAILURE,
                RESP_ERROR,
                RESP_TIMEOUT,
            ).astype(np.int16)
            site_result[timed_out & ~failed] = RESP_TIMEOUT

            ok = site_result >= 0
            rtt_result = np.where(ok, rtts, np.nan).astype(np.float32)
            server_result = np.where(ok, servers, 0).astype(np.int16)

            routed_idx = np.flatnonzero(routed)
            out_site[routed_idx] = site_result
            out_rtt[routed_idx] = rtt_result
            out_server[routed_idx] = server_result

        self.site_idx[bin_index] = out_site
        self.rtt_ms[bin_index] = out_rtt
        self.server[bin_index] = out_server

    def finish(self) -> LetterObservations:
        """Package the filled matrices."""
        return LetterObservations(
            letter=self.letter,
            site_codes=self.site_codes,
            site_idx=self.site_idx,
            rtt_ms=self.rtt_ms,
            server=self.server,
        )
