"""The probing engine: per-bin CHAOS measurements of one letter.

For every ten-minute bin the scenario engine hands this module the
letter's current conditions -- the routing table (who reaches which
site) and each site's loss fraction and queueing delay -- and the
engine samples what every vantage point would observe:

* the site answering (from the VP's AS catchment),
* the server answering (source-hash load balancing, modified by the
  site's stress behaviour, section 3.5),
* the RTT (geographic baseline + queueing delay + jitter), subject to
  the 5-second Atlas timeout,
* or a failure: timeout (queue drop / no route) or an error RCODE.

Hijacked VPs (section 2.4.1) are answered by a third party regardless
of the letter's state: a non-matching reply with a very short RTT.
A-Root's 30-minute probing cadence leaves 2 of each 3 bins unprobed.

Performance architecture: the engine *records* each bin's conditions
(:meth:`LetterProber.record_bin`, cheap array stores) and the actual
sampling happens in one batched pass at :meth:`LetterProber.finish`.
Everything that depends only on the routing epoch -- VP catchments,
probe-cadence gathers, balanced server assignment, baseline RTT
gathers -- is precomputed once per ``(table.version, cadence phase)``
and reused across all bins of that epoch; per-site server-behaviour
multipliers are precomputed tables indexed by ``(site, server)``.
Bins are still sampled in ascending order with the exact draw sizes
and call sequence of the original per-bin code, so seeded results are
bit-identical to the pre-batched implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.observations import (
    RESP_BOGUS,
    RESP_ERROR,
    RESP_NOT_PROBED,
    RESP_TIMEOUT,
    LetterObservations,
    VantagePointTable,
)
from ..netsim.bgp import RoutingTable
from ..rootdns.deployment import LetterDeployment
from ..rootdns.servers import (
    server_delay_multipliers,
    server_loss_multipliers,
)
from ..rootdns.sites import ServerBehavior
from ..util.geo import haversine_km_vec, propagation_rtt_ms_vec
from ..util.timegrid import ATLAS_TIMEOUT_MS, TimeGrid

#: Background failure probability of a healthy query (packet loss,
#: probe restarts); keeps the "normal" curves of Fig. 3 mildly noisy.
BASELINE_FAILURE_PROB = 0.005

#: Probability that a failed query surfaces as an error RCODE rather
#: than a timeout (overloaded servers sometimes answer SERVFAIL).
ERROR_GIVEN_FAILURE = 0.1

#: RTT of a hijacker's local answer (the paper flags < 7 ms).
HIJACK_RTT_MS = 3.0

#: Lognormal RTT jitter sigma.
RTT_JITTER_SIGMA = 0.12


@dataclass(frozen=True, slots=True)
class SiteBinConditions:
    """Per-site conditions for one letter in one bin (site order)."""

    loss: np.ndarray          # float64 (n_sites,)
    delay_ms: np.ndarray      # float64 (n_sites,)
    overloaded: np.ndarray    # bool    (n_sites,)

    def __post_init__(self) -> None:
        if not (
            self.loss.shape == self.delay_ms.shape == self.overloaded.shape
        ):
            raise ValueError("condition arrays misaligned")


@dataclass(slots=True)
class _EpochGathers:
    """Catchment-dependent gathers shared by all bins of one
    ``(routing version, probe-cadence phase)`` combination."""

    hijacked_idx: np.ndarray   # VPs probed this phase and hijacked
    unrouted_idx: np.ndarray   # probed, healthy, no route -> timeout
    routed_idx: np.ndarray     # probed, healthy, routed
    sites: np.ndarray          # site per routed VP
    balanced: np.ndarray       # hash-balanced server per routed VP
    base_rtt: np.ndarray       # baseline RTT per routed VP
    any_probed: bool
    #: ``sites``/``balanced`` pre-cast to the output dtype: the final
    #: store of a bin with no failure and no timeout writes exactly
    #: these values, so the per-bin casts are hoisted here.
    sites_i16: np.ndarray
    balanced_i16: np.ndarray
    #: ``_cond_delay[:, sites]`` gathered once; row ``b`` equals the
    #: per-bin fancy gather ``_cond_delay[b][sites]`` element for
    #: element, replacing it with a contiguous row view.
    delay_sub: np.ndarray


class LetterProber:
    """Samples one letter's observations bin by bin."""

    def __init__(
        self,
        deployment: LetterDeployment,
        vps: VantagePointTable,
        grid: TimeGrid,
        rng: np.random.Generator,
    ) -> None:
        self.deployment = deployment
        self.vps = vps
        self.grid = grid
        self.rng = rng
        self.letter = deployment.letter
        self.site_codes = list(deployment.site_order)
        n_vps = len(vps)
        n_sites = len(self.site_codes)

        # Baseline RTT from each VP to each site.
        site_lats = np.array(
            [s.location.lat for s in deployment.spec.sites]
        )
        site_lons = np.array(
            [s.location.lon for s in deployment.spec.sites]
        )
        distances = haversine_km_vec(
            vps.lats[:, None], vps.lons[:, None],
            site_lats[None, :], site_lons[None, :],
        )
        self.base_rtt = propagation_rtt_ms_vec(distances)

        # Source hashes for load balancing; stable per VP.
        self.vp_hashes = (vps.ids * np.int64(2654435761)) & np.int64(
            0x7FFFFFFF
        )

        # Probing cadence: A-Root was probed every 30 minutes, giving
        # one probe per three bins; the other letters probe every four
        # minutes, giving 2.5 probes per ten-minute bin.  Bins prefer a
        # site answer over errors over missing (section 2.4.1), so a
        # bin succeeds when *any* of its probes succeeds.
        interval = deployment.spec.probe_interval_s
        self.bins_per_probe = max(1, interval // grid.bin_seconds)
        self.probes_per_bin = max(1.0, grid.bin_seconds / interval)
        self.probe_phase = rng.integers(
            self.bins_per_probe, size=n_vps
        )

        self.n_servers = np.array(
            [s.n_servers for s in deployment.spec.sites], dtype=np.int64
        )

        # Per-site server-behaviour tables, padded to the widest site:
        # row i scales loss/delay for queries answered at site i's
        # server j+1 while the site is overloaded (rows are all-ones
        # when not overloaded).  SHED_TO_ONE redirection is handled
        # via ``shed_flags`` plus the per-bin shed-server snapshot.
        max_servers = int(self.n_servers.max())
        self._over_loss = np.ones((n_sites, max_servers))
        self._over_delay = np.ones((n_sites, max_servers))
        self._shed_flags = np.zeros(n_sites, dtype=bool)
        for i, spec in enumerate(deployment.spec.sites):
            k = spec.n_servers
            self._over_loss[i, :k] = server_loss_multipliers(
                spec.server_behavior, spec.code, k, overloaded=True
            )
            self._over_delay[i, :k] = server_delay_multipliers(
                spec.server_behavior, spec.code, k, overloaded=True
            )
            self._shed_flags[i] = (
                spec.server_behavior is ServerBehavior.SHED_TO_ONE
            )

        # Output matrices.
        self.site_idx = np.full(
            (grid.n_bins, n_vps), RESP_NOT_PROBED, dtype=np.int16
        )
        self.rtt_ms = np.full((grid.n_bins, n_vps), np.nan, dtype=np.float32)
        self.server = np.zeros((grid.n_bins, n_vps), dtype=np.int16)

        # Deferred per-bin conditions, filled by record_bin and
        # consumed in one batched pass by finish().
        self._cond_loss = np.zeros((grid.n_bins, n_sites))
        self._cond_delay = np.zeros((grid.n_bins, n_sites))
        self._cond_over = np.zeros((grid.n_bins, n_sites), dtype=bool)
        self._shed_of_bin = np.ones((grid.n_bins, n_sites), dtype=np.int64)
        self._version_of_bin = np.zeros(grid.n_bins, dtype=np.int64)
        self._recorded = np.zeros(grid.n_bins, dtype=bool)
        self._tables: dict[int, RoutingTable] = {}
        self._flushed = False

        self._catchment_cache: dict[int, np.ndarray] = {}
        self._gather_cache: dict[tuple[int, int], _EpochGathers] = {}

    def _vp_site_indices(self, table: RoutingTable) -> np.ndarray:
        """Site index per VP (-1 when the VP's AS has no route).

        Keyed on ``table.version`` (stable across table reuse, never
        aliased like ``id()``).
        """
        cached = self._catchment_cache.get(table.version)
        if cached is not None:
            return cached
        code_to_idx = {c: i for i, c in enumerate(self.site_codes)}
        uniq, inverse = np.unique(self.vps.asns, return_inverse=True)
        uniq_sites = table.sites_of(uniq.astype(np.int64), code_to_idx)
        result = uniq_sites.astype(np.int64)[inverse]
        self._catchment_cache[table.version] = result
        return result

    def record_bin(
        self,
        bin_index: int,
        table: RoutingTable,
        conditions: SiteBinConditions,
    ) -> None:
        """Record one bin's conditions for the batched sampling pass.

        Snapshots everything time-varying (conditions, the shed-server
        rotation state) so the deferred pass reproduces exactly what
        immediate sampling would have seen.
        """
        if self._flushed:
            raise RuntimeError("prober already finished")
        self._tables.setdefault(table.version, table)
        self._version_of_bin[bin_index] = table.version
        self._cond_loss[bin_index] = conditions.loss
        self._cond_delay[bin_index] = conditions.delay_ms
        self._cond_over[bin_index] = conditions.overloaded
        states = self.deployment.states
        self._shed_of_bin[bin_index] = [
            states[c].shed_server for c in self.site_codes
        ]
        self._recorded[bin_index] = True

    def record_bins(
        self,
        start: int,
        table: RoutingTable,
        loss: np.ndarray,
        delay_ms: np.ndarray,
        overloaded: np.ndarray,
    ) -> None:
        """Batched :meth:`record_bin` over one contiguous segment.

        All bins of the segment share one routing table and one
        shed-server snapshot (the engine only batches across bins with
        no policy action, so the per-site states cannot change inside
        the run); the condition matrices are ``(n_bins_seg, n_sites)``.
        """
        if self._flushed:
            raise RuntimeError("prober already finished")
        stop = start + loss.shape[0]
        self._tables.setdefault(table.version, table)
        self._version_of_bin[start:stop] = table.version
        self._cond_loss[start:stop] = loss
        self._cond_delay[start:stop] = delay_ms
        self._cond_over[start:stop] = overloaded
        states = self.deployment.states
        self._shed_of_bin[start:stop] = [
            states[c].shed_server for c in self.site_codes
        ]
        self._recorded[start:stop] = True

    def _epoch_gathers(self, version: int, phase: int) -> _EpochGathers:
        """Catchment/cadence gathers for one (routing epoch, phase)."""
        key = (version, phase)
        cached = self._gather_cache.get(key)
        if cached is not None:
            return cached
        probed = (
            (phase + self.probe_phase) % self.bins_per_probe == 0
        )
        vp_site = self._vp_site_indices(self._tables[version])
        hijacked = probed & self.vps.hijacked
        active = probed & ~self.vps.hijacked
        routed = active & (vp_site >= 0)
        routed_idx = np.flatnonzero(routed)
        sites = vp_site[routed_idx]
        balanced = self.vp_hashes[routed_idx] % self.n_servers[sites] + 1
        gathers = _EpochGathers(
            hijacked_idx=np.flatnonzero(hijacked),
            unrouted_idx=np.flatnonzero(active & (vp_site < 0)),
            routed_idx=routed_idx,
            sites=sites,
            balanced=balanced,
            base_rtt=self.base_rtt[routed_idx, sites],
            any_probed=bool(probed.any()),
            sites_i16=sites.astype(np.int16),
            balanced_i16=balanced.astype(np.int16),
            delay_sub=self._cond_delay[:, sites],
        )
        self._gather_cache[key] = gathers
        return gathers

    def _sample_recorded_bin(
        self,
        b: int,
        quiet: bool,
        baseline_bin_fail: np.floating,
        g: _EpochGathers,
        d: list,
    ) -> None:
        """Sample one recorded bin (batched path).

        Matches the original immediate-mode sampling draw for draw:
        the RNG call sequence and sizes are identical, so outputs are
        bit-identical.  *quiet* marks bins with zero loss and no
        overloaded site everywhere; for those the shed/multiplier/
        clip/power pipeline provably reduces to the precomputed
        *baseline_bin_fail* constant (``loss * 1.0 == loss``,
        ``delay * 1.0 == delay``, ``clip(0 + p, 0, 1) == p``), so it
        is skipped without changing a single drawn bit.

        Output stores whose values are gather constants (hijacked /
        unrouted markers, clean-bin site and server columns) or pure
        draw results are *deferred* into per-gather lists and written
        in one fancy-indexed store each by :meth:`_scatter_deferred`;
        all deferred regions are row/column-disjoint from the
        immediate stores, so the final matrices are identical.
        """
        if not g.any_probed:
            return
        rng = self.rng

        # Hijacked VPs: local bogus answer, fast, always "up".  A
        # zero-size draw consumes no RNG state, so the empty case is
        # skipped outright.
        if g.hijacked_idx.size:
            d[0].append(b)
            d[1].append(
                HIJACK_RTT_MS
                * (
                    1.0
                    + rng.normal(
                        0.0, 0.1, g.hijacked_idx.size
                    ).clip(-0.3, 0.3)
                )
            )

        # Unrouted VPs: no path to any site -> timeout.
        if g.unrouted_idx.size:
            d[2].append(b)

        if g.routed_idx.size == 0:
            return
        sites = g.sites
        if quiet:
            chosen = g.balanced
            delay = g.delay_sub[b]
            bin_fail_prob: np.ndarray | np.floating = baseline_bin_fail
        else:
            over = self._cond_over[b]
            shed_mask = over[sites] & self._shed_flags[sites]
            if shed_mask.any():
                shed = self._shed_of_bin[b]
                shed_sites = np.unique(sites[shed_mask])
                bad = (shed[shed_sites] < 1) | (
                    shed[shed_sites] > self.n_servers[shed_sites]
                )
                if bad.any():
                    i = int(shed_sites[np.flatnonzero(bad)[0]])
                    raise ValueError(
                        f"shed server {int(shed[i])} out of range"
                        f" 1..{int(self.n_servers[i])}"
                    )
                chosen = np.where(shed_mask, shed[sites], g.balanced)
            else:
                chosen = g.balanced

            # Server-behaviour multipliers: table lookup instead of a
            # per-unique-site python loop.
            over_r = over[sites]
            loss = self._cond_loss[b][sites]
            delay = g.delay_sub[b]
            loss = np.clip(
                loss * np.where(
                    over_r, self._over_loss[sites, chosen - 1], 1.0
                ),
                0.0,
                1.0,
            )
            delay = delay * np.where(
                over_r, self._over_delay[sites, chosen - 1], 1.0
            )

            fail_prob = np.clip(
                loss + BASELINE_FAILURE_PROB, 0.0, 1.0
            )
            # A bin fails only when every probe in it fails.
            bin_fail_prob = fail_prob**self.probes_per_bin
        failed = rng.random(sites.size) < bin_fail_prob
        jitter = np.exp(
            rng.normal(0.0, RTT_JITTER_SIGMA, sites.size)
        )
        rtts = g.base_rtt * jitter + delay

        n_failed = int(np.count_nonzero(failed))
        if (
            n_failed == 0
            and chosen is g.balanced
            and float(rtts.max()) <= ATLAS_TIMEOUT_MS
        ):
            # Nothing failed and nothing timed out (``max() <= T`` is
            # exactly ``not (rtts > T).any()`` -- all values finite):
            # every mask below is all-True, so the masked stores
            # reduce to the precast gather constants.  Defer them for
            # one batched store per gather.
            d[3].append(b)
            d[4].append(rtts)
            return
        self._store_sampled_bin(b, g, chosen, failed, n_failed, rtts)

    def _store_sampled_bin(
        self,
        b: int,
        g: _EpochGathers,
        chosen: np.ndarray,
        failed: np.ndarray,
        n_failed: int,
        rtts: np.ndarray,
    ) -> None:
        """Write one sampled bin that has failures or timeouts."""
        rng = self.rng
        out_site = self.site_idx[b]
        timed_out = rtts > ATLAS_TIMEOUT_MS
        site_result = g.sites.astype(np.int16)
        if n_failed:
            site_result[failed] = np.where(
                rng.random(n_failed) < ERROR_GIVEN_FAILURE,
                RESP_ERROR,
                RESP_TIMEOUT,
            ).astype(np.int16)
        site_result[timed_out & ~failed] = RESP_TIMEOUT

        ok = site_result >= 0
        out_site[g.routed_idx] = site_result
        self.rtt_ms[b][g.routed_idx] = np.where(
            ok, rtts, np.nan
        ).astype(np.float32)
        self.server[b][g.routed_idx] = np.where(ok, chosen, 0).astype(
            np.int16
        )

    @staticmethod
    def _block_index(bins: list[int], cols: np.ndarray) -> tuple:
        """An outer ``(rows, cols)`` indexer for the deferred block.

        Probe phases stride the bin axis evenly, so deferred bins are
        almost always a pure arithmetic progression; a basic row slice
        plus one fancy column index assigns several times faster than
        the double fancy index ``np.ix_`` builds.  Both spellings are
        outer indexers addressing exactly the same cells; irregular
        bin lists keep ``np.ix_``.
        """
        if len(bins) > 2:
            step = bins[1] - bins[0]
            if step > 0 and bins[-1] == bins[0] + step * (len(bins) - 1):
                arr = np.asarray(bins)
                if bool((np.diff(arr) == step).all()):
                    return (slice(bins[0], bins[-1] + 1, step), cols)
        return np.ix_(bins, cols)

    def _scatter_deferred(
        self, deferred: dict[tuple[int, int], list]
    ) -> None:
        """Write the deferred constant/draw stores, one per gather.

        Float64 draw rows cast to the float32 output on assignment
        exactly as the per-bin ``astype`` did, and every deferred
        region is disjoint from the immediate stores, so the filled
        matrices match the per-bin order bit for bit.
        """
        for key, d in deferred.items():
            g = self._gather_cache[key]
            bins_h, rtts_h, bins_u, bins_c, rtts_c = d
            if bins_h:
                ix = self._block_index(bins_h, g.hijacked_idx)
                self.site_idx[ix] = RESP_BOGUS
                self.rtt_ms[ix] = np.asarray(rtts_h)
            if bins_u:
                self.site_idx[
                    self._block_index(bins_u, g.unrouted_idx)
                ] = RESP_TIMEOUT
            if bins_c:
                ix = self._block_index(bins_c, g.routed_idx)
                self.site_idx[ix] = g.sites_i16
                self.rtt_ms[ix] = np.asarray(rtts_c)
                self.server[ix] = g.balanced_i16

    def flush(self) -> None:
        """Run the batched sampling pass over all recorded bins.

        Bins are sampled in ascending order so the seeded RNG sequence
        matches immediate per-bin sampling exactly.  Quiet bins (zero
        loss, nothing overloaded -- the common case outside events)
        share one precomputed baseline failure probability; it is
        computed through the same ufunc (array ** float) as the
        per-bin expression so the compared bits are identical.
        """
        if self._flushed:
            return
        quiet = ~(
            self._cond_loss.any(axis=1) | self._cond_over.any(axis=1)
        )
        baseline_bin_fail = (
            np.asarray([BASELINE_FAILURE_PROB]) ** self.probes_per_bin
        )[0]
        deferred: dict[tuple[int, int], list] = {}
        versions = self._version_of_bin.tolist()
        quiet_l = quiet.tolist()
        # Hoist the (version, phase) -> (gathers, deferred-lists)
        # resolution out of the per-bin call: versions change only at
        # epoch boundaries, so one small lookup table per version run
        # replaces a tuple-build plus two dict probes per bin.
        bins_per = self.bins_per_probe
        rng = self.rng
        current_version = None
        by_phase: list[tuple] = []
        for b in np.flatnonzero(self._recorded).tolist():
            version = versions[b]
            if version != current_version:
                current_version = version
                by_phase = []
                for phase in range(bins_per):
                    key = (version, phase)
                    d = deferred.get(key)
                    if d is None:
                        d = deferred[key] = [[], [], [], [], []]
                    g = self._epoch_gathers(*key)
                    # Quiet bins of a gather with routed VPs run
                    # inline below with these hoisted fields; gathers
                    # probing nothing (or nothing routed) keep the
                    # general path.
                    fast = None
                    if g.any_probed and g.routed_idx.size:
                        fast = (
                            g.base_rtt,
                            g.delay_sub,
                            g.routed_idx.size,
                            g.hijacked_idx.size,
                            d[0].append,
                            d[1].append,
                            d[2].append if g.unrouted_idx.size else None,
                            d[3].append,
                            d[4].append,
                        )
                    by_phase.append((g, d, fast))
            g, d, fast = by_phase[b % bins_per]
            if fast is None or not quiet_l[b]:
                self._sample_recorded_bin(
                    b, quiet_l[b], baseline_bin_fail, g, d
                )
                continue
            # Inline quiet fast path: draw for draw and op for op the
            # same sequence as _sample_recorded_bin's quiet branch,
            # minus the per-bin call and gather-field dispatch.
            (
                base_rtt, delay_sub, n_routed, n_hijacked,
                hijack_bins, hijack_rtts,
                unrouted_append, clean_bins, clean_rtts,
            ) = fast
            if n_hijacked:
                hijack_bins(b)
                hijack_rtts(
                    HIJACK_RTT_MS
                    * (
                        1.0
                        + rng.normal(
                            0.0, 0.1, n_hijacked
                        ).clip(-0.3, 0.3)
                    )
                )
            if unrouted_append is not None:
                unrouted_append(b)
            failed = rng.random(n_routed) < baseline_bin_fail
            jitter = np.exp(
                rng.normal(0.0, RTT_JITTER_SIGMA, n_routed)
            )
            rtts = base_rtt * jitter + delay_sub[b]
            n_failed = int(np.count_nonzero(failed))
            if (
                n_failed == 0
                and float(rtts.max()) <= ATLAS_TIMEOUT_MS
            ):
                clean_bins(b)
                clean_rtts(rtts)
                continue
            self._store_sampled_bin(
                b, g, g.balanced, failed, n_failed, rtts
            )
        self._scatter_deferred(deferred)
        self._flushed = True

    def finish(self) -> LetterObservations:
        """Run any pending sampling and package the filled matrices."""
        self.flush()
        return LetterObservations(
            letter=self.letter,
            site_codes=self.site_codes,
            site_idx=self.site_idx,
            rtt_ms=self.rtt_ms,
            server=self.server,
        )
