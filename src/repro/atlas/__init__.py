"""RIPE-Atlas-style measurement platform simulation."""

from .probelevel import BOGUS_ANSWER, to_probe_records
from .probing import (
    BASELINE_FAILURE_PROB,
    ERROR_GIVEN_FAILURE,
    HIJACK_RTT_MS,
    LetterProber,
    SiteBinConditions,
)
from .vps import VpPopulationConfig, build_vps

__all__ = [
    "BASELINE_FAILURE_PROB",
    "BOGUS_ANSWER",
    "ERROR_GIVEN_FAILURE",
    "HIJACK_RTT_MS",
    "LetterProber",
    "SiteBinConditions",
    "VpPopulationConfig",
    "build_vps",
    "to_probe_records",
]
