"""Vantage-point population (the RIPE Atlas probe fleet).

Atlas had ~9000 active probes at the time of the events, heavily
biased towards Europe (section 2.4.1).  We attach each VP to one of
the topology's stub ASes (whose placement already carries the Europe
bias) with a small location jitter, assign firmware versions (a few
percent of probes lag below the version-4570 cleaning threshold), and
mark a small fraction as *hijacked*: their root queries are answered
by a third party, visible as non-matching CHAOS replies with very
short RTTs (74 of 9363 probes, under 1 %, in the paper's data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.observations import VantagePointTable
from ..netsim.topology import Topology


@dataclass(frozen=True, slots=True)
class VpPopulationConfig:
    """Knobs for the VP fleet."""

    n_vps: int = 1500
    old_firmware_fraction: float = 0.03
    hijacked_fraction: float = 0.008
    location_jitter_deg: float = 0.5
    current_firmware: int = 4740
    old_firmware: int = 4520

    def __post_init__(self) -> None:
        if self.n_vps <= 0:
            raise ValueError("need at least one VP")
        for name in ("old_firmware_fraction", "hijacked_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")


def build_vps(
    topology: Topology,
    config: VpPopulationConfig,
    rng: np.random.Generator,
) -> VantagePointTable:
    """Place the VP fleet on the topology's stub ASes."""
    stub_asns = np.asarray(topology.stub_asns, dtype=np.int64)
    if stub_asns.size == 0:
        raise ValueError("topology has no stub ASes")
    choice = rng.integers(stub_asns.size, size=config.n_vps)
    asns = stub_asns[choice]

    lats = np.empty(config.n_vps)
    lons = np.empty(config.n_vps)
    regions = np.empty(config.n_vps, dtype="U2")
    node_cache = {
        asn: topology.graph.node(int(asn)) for asn in np.unique(asns)
    }
    for i, asn in enumerate(asns):
        node = node_cache[int(asn)]
        lats[i] = node.location.lat
        lons[i] = node.location.lon
        region = node.name.split("-")[1] if "-" in node.name else "EU"
        regions[i] = region
    lats = np.clip(
        lats + rng.normal(0.0, config.location_jitter_deg, config.n_vps),
        -89.0,
        89.0,
    )
    lons = (
        lons + rng.normal(0.0, config.location_jitter_deg, config.n_vps)
        + 180.0
    ) % 360.0 - 180.0

    firmware = np.full(config.n_vps, config.current_firmware, dtype=np.int32)
    old = rng.random(config.n_vps) < config.old_firmware_fraction
    firmware[old] = config.old_firmware

    hijacked = rng.random(config.n_vps) < config.hijacked_fraction

    return VantagePointTable(
        ids=np.arange(config.n_vps, dtype=np.int64),
        asns=asns,
        lats=lats,
        lons=lons,
        regions=regions,
        firmware=firmware,
        hijacked=hijacked,
    )
