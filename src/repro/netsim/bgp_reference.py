"""Scalar reference implementation of valley-free route propagation.

This is the original per-Route BFS that :func:`repro.netsim.bgp.
propagate` replaced with an array kernel.  It is kept, bit-compatible,
for three reasons: it is the executable specification the property
tests pin the kernel against (``tests/property/test_bgp_kernel.py``),
it is far easier to audit against the paper's §2.1 routing model than
the vectorized code, and it is the baseline the routing benchmark
(``benchmarks/bench_routing.py``) measures speedups over.

Every ordering quirk here is load-bearing: ``min`` is stable (first
candidate wins full-key ties), candidate dicts iterate in first-
occurrence order, and the best dict iterates in first-install order.
The kernel reproduces all of it.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .asgraph import ASGraph, Relationship
from .bgp import Origin, Route, RouteClass, RoutingTable, Scope


def propagate(graph: ASGraph, origins: list[Origin]) -> RoutingTable:
    """Compute best routes at every AS for one anycast prefix.

    Withdrawn sites are simply omitted from *origins*.
    """
    for origin in origins:
        if origin.asn not in graph:
            raise KeyError(f"origin AS {origin.asn} not in graph")

    # Tie-break distances, precomputed per origin over all ASes in one
    # vectorized pass and memoized on the graph across re-propagations
    # (policy loops re-announce the same origins every few bins).  The
    # coordinate arrays are only needed when some origin actually has a
    # location; an unlocated deployment ties everything at 0.0.
    dist_rows: dict[str, np.ndarray] = {
        o.site: graph.distance_row(
            o.asn, o.location, 1.0 - o.preference_discount
        )
        for o in origins
        if o.location is not None
    }
    row_of: dict[int, int] = {}
    if dist_rows:
        row_of, _, _ = graph.coordinate_arrays()

    def tiebreak(asn: int, origin: Origin) -> float:
        row = dist_rows.get(origin.site)
        if row is None:
            return 0.0
        return float(row[row_of[asn]])

    best: dict[int, Route] = {}

    def offer(asn: int, route: Route) -> bool:
        """Install *route* at *asn* if it wins; report whether it did."""
        if route.better_than(best.get(asn)):
            best[asn] = route
            return True
        return False

    global_origins = [o for o in origins if o.scope is Scope.GLOBAL]
    local_origins = [o for o in origins if o.scope is Scope.LOCAL]

    # --- Stage 1: customer-learned routes climb provider edges. -------
    frontier: list[tuple[int, Route]] = []
    for origin in global_origins:
        route = Route(
            site=origin.site,
            origin_asn=origin.asn,
            path=(origin.asn,),
            route_class=RouteClass.CUSTOMER,
            tiebreak=0.0,
        )
        if offer(origin.asn, route):
            frontier.append((origin.asn, route))
    origin_by_site = {o.site: o for o in origins}

    while frontier:
        candidates: dict[int, list[Route]] = defaultdict(list)
        for asn, route in frontier:
            if best.get(asn) != route:
                continue  # superseded at this level
            origin = origin_by_site[route.site]
            at_origin = len(route.path) == 1
            for provider in graph.providers(asn):
                if at_origin and provider in origin.blocked_neighbors:
                    continue
                candidates[provider].append(
                    Route(
                        site=route.site,
                        origin_asn=route.origin_asn,
                        path=route.path + (provider,),
                        route_class=RouteClass.CUSTOMER,
                        tiebreak=tiebreak(provider, origin),
                    )
                )
        frontier = []
        for asn, routes in candidates.items():
            winner = min(routes, key=Route.preference_key)
            if offer(asn, winner):
                frontier.append((asn, winner))

    customer_routed = {
        asn: route
        for asn, route in best.items()
        if route.route_class is RouteClass.CUSTOMER
    }

    # --- Stage 2: one peer hop from every customer-routed AS. ---------
    for asn, route in customer_routed.items():
        origin = origin_by_site[route.site]
        at_origin = len(route.path) == 1
        for peer in graph.peers(asn):
            if at_origin and peer in origin.blocked_neighbors:
                continue
            offer(
                peer,
                Route(
                    site=route.site,
                    origin_asn=route.origin_asn,
                    path=route.path + (peer,),
                    route_class=RouteClass.PEER,
                    tiebreak=tiebreak(peer, origin),
                ),
            )

    # --- Stage 3: everything rolls downhill to customers. -------------
    frontier = [(asn, route) for asn, route in best.items()]
    while frontier:
        candidates = defaultdict(list)
        for asn, route in frontier:
            if best.get(asn) != route:
                continue
            origin = origin_by_site[route.site]
            at_origin = len(route.path) == 1
            for customer in graph.customers(asn):
                if at_origin and customer in origin.blocked_neighbors:
                    continue
                candidates[customer].append(
                    Route(
                        site=route.site,
                        origin_asn=route.origin_asn,
                        path=route.path + (customer,),
                        route_class=RouteClass.PROVIDER,
                        tiebreak=tiebreak(customer, origin),
                    )
                )
        frontier = []
        for asn, routes in candidates.items():
            winner = min(routes, key=Route.preference_key)
            if offer(asn, winner):
                frontier.append((asn, winner))

    # --- Local sites: host AS and direct neighbors only. --------------
    for origin in local_origins:
        self_route = Route(
            site=origin.site,
            origin_asn=origin.asn,
            path=(origin.asn,),
            route_class=RouteClass.CUSTOMER,
            tiebreak=0.0,
        )
        offer(origin.asn, self_route)
        for neighbor, rel in graph.neighbors(origin.asn).items():
            if neighbor in origin.blocked_neighbors:
                continue
            # *rel* is the neighbor's role as seen from the origin; the
            # neighbor itself learned the route from the inverse side.
            if rel is Relationship.PROVIDER:
                neighbor_class = RouteClass.CUSTOMER  # learned from customer
            elif rel is Relationship.PEER:
                neighbor_class = RouteClass.PEER
            else:
                neighbor_class = RouteClass.PROVIDER  # learned from provider
            offer(
                neighbor,
                Route(
                    site=origin.site,
                    origin_asn=origin.asn,
                    path=(origin.asn, neighbor),
                    route_class=neighbor_class,
                    tiebreak=tiebreak(neighbor, origin),
                ),
            )

    return RoutingTable(best)
