"""Anycast prefix state: which sites announce, and the resulting routes.

One :class:`AnycastPrefix` models one root letter's service address.
Sites can be withdrawn and re-announced over time (the paper's
"withdraw" policy and post-event recovery); the best-route table is
recomputed on demand and cached per announcement set, since the same
sets recur (before/during/after each event).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import MutableMapping

from .asgraph import ASGraph
from .bgp import (
    Origin,
    RoutingTable,
    delta_enabled,
    propagate,
    propagate_delta,
)

#: Default bound of the per-prefix routing-table cache.  Policy loops
#: cycle through a handful of announcement states, but fault-injected
#: runs (BgpSessionReset flapping different sites every bin) can visit
#: arbitrarily many distinct states; an unbounded cache would retain
#: every table for the life of a sweep worker.
DEFAULT_CACHE_SIZE = 64

#: Bound of a shared (substrate-level) routing memo, when attached.
#: Larger than the per-prefix LRU because it serves every letter of a
#: substrate across sweep cells.
DEFAULT_MEMO_SIZE = 256

#: Cache-path instrumentation, for tests and benchmarks: how routing()
#: requests were served.  ``delta_derived`` counts computes that went
#: through :func:`~repro.netsim.bgp.propagate_delta` (the call itself
#: may still fall back internally; see
#: :data:`~repro.netsim.bgp.DELTA_STATS`).
PREFIX_CACHE_STATS: dict[str, int] = {
    "lru_hits": 0,
    "memo_hits": 0,
    "computes": 0,
    "delta_derived": 0,
}

#: Below this graph size :meth:`AnycastPrefix._compute` skips the
#: delta path: on scenario-scale graphs (~1 k nodes) a full propagation
#: costs 1-5 ms while hunting for a base plus replaying its trace costs
#: more than it saves; the replay only pays for itself on the as-rel2
#: internet-scale graphs (50 k+ nodes).  The cutoff is a pure speed
#: heuristic -- both paths produce bit-identical tables.
DELTA_MIN_NODES = 4096


def _state_distance(key_a: tuple, key_b: tuple) -> int:
    """How many announce/withdraw/block edits separate two state keys."""
    announced_a, announced_b = key_a[0], key_b[0]
    distance = len(announced_a ^ announced_b)
    blocked_b = dict(key_b[1])
    for site, blocked in key_a[1]:
        if site in blocked_b and blocked_b[site] != blocked:
            distance += 1
    return distance


@dataclass(frozen=True, slots=True)
class RouteChangeRecord:
    """One routing transition, for BGP collectors to observe."""

    timestamp: float
    changed_asns: frozenset[int]


class AnycastPrefix:
    """The announcement state of one anycast service (one letter)."""

    def __init__(
        self,
        graph: ASGraph,
        origins: list[Origin],
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if not origins:
            raise ValueError("an anycast prefix needs at least one origin")
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        sites = [o.site for o in origins]
        if len(set(sites)) != len(sites):
            raise ValueError("duplicate site ids among origins")
        self.graph = graph
        self._origins = {o.site: o for o in origins}
        self._announced = {o.site: True for o in origins}
        self._blocked: dict[str, frozenset[int]] = {
            o.site: o.blocked_neighbors for o in origins
        }
        self._cache: OrderedDict[tuple, RoutingTable] = OrderedDict()
        self._cache_size = cache_size
        self._current: RoutingTable | None = None
        self._change_log: list[RouteChangeRecord] = []
        self._shared_memo: MutableMapping[tuple, RoutingTable] | None = None
        self._memo_label: object = None
        self._memo_size = DEFAULT_MEMO_SIZE

    def attach_shared_memo(
        self,
        memo: MutableMapping[tuple, RoutingTable],
        label: object,
        memo_size: int = DEFAULT_MEMO_SIZE,
    ) -> None:
        """Share *memo* as a second-level routing-table cache.

        The memo outlives this prefix's bounded LRU (and
        :meth:`reset`), so sweep cells that revisit an announcement
        state after eviction -- or after the substrate was handed to a
        different cell -- reuse the table instead of recomputing.
        Entries are keyed ``(label, state_key)``; *label* namespaces
        prefixes (letters) sharing one memo.  Reuse is output-invariant
        for the same reason LRU eviction is: tables are pure functions
        of graph + announcement state.
        """
        self._shared_memo = memo
        self._memo_label = label
        self._memo_size = memo_size

    @property
    def sites(self) -> list[str]:
        """All site ids, announced or not."""
        return list(self._origins)

    def origin(self, site: str) -> Origin:
        """The origin definition of *site*."""
        try:
            return self._origins[site]
        except KeyError:
            raise KeyError(f"unknown site {site!r}") from None

    def is_announced(self, site: str) -> bool:
        """Whether *site* currently announces the prefix."""
        if site not in self._origins:
            raise KeyError(f"unknown site {site!r}")
        return self._announced[site]

    def announced_sites(self) -> frozenset[str]:
        """The set of currently announced sites."""
        return frozenset(s for s, up in self._announced.items() if up)

    def blocked_neighbors(self, site: str) -> frozenset[int]:
        """Neighbors *site* currently refuses to export to."""
        if site not in self._origins:
            raise KeyError(f"unknown site {site!r}")
        return self._blocked[site]

    def _state_key(self) -> tuple:
        announced = self.announced_sites()
        return (
            announced,
            tuple(sorted((s, self._blocked[s]) for s in announced)),
        )

    def routing(self) -> RoutingTable:
        """Best routes for the current announcement state (cached).

        The returned table carries a stable ``version`` token (see
        :class:`~repro.netsim.bgp.RoutingTable`): recurring
        announcement states return the *same* table object (while it
        stays cached), so callers can key their own caches on
        ``table.version``.  The current table is additionally memoized
        until the next announce / withdraw / block change, making
        per-bin ``routing()`` calls O(1).

        The cache is a bounded LRU (*cache_size* states): recomputing
        an evicted state yields a table with identical routes but a
        fresh ``version``, so downstream version-keyed caches recompute
        the same derived values -- eviction never changes outputs.
        """
        if self._current is not None:
            return self._current
        key = self._state_key()
        table = self._cache.get(key)
        if table is not None:
            PREFIX_CACHE_STATS["lru_hits"] += 1
            self._cache.move_to_end(key)
        else:
            memo = self._shared_memo
            if memo is not None:
                table = memo.get((self._memo_label, key))
            if table is not None:
                PREFIX_CACHE_STATS["memo_hits"] += 1
            else:
                table = self._compute(key)
                PREFIX_CACHE_STATS["computes"] += 1
                if memo is not None:
                    memo[(self._memo_label, key)] = table
                    while len(memo) > self._memo_size:
                        memo.pop(next(iter(memo)))
            self._cache[key] = table
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        self._current = table
        return table

    def _compute(self, key: tuple) -> RoutingTable:
        """Propagate the state *key* describes, via delta if possible.

        Any cached table works as a delta base --
        :func:`~repro.netsim.bgp.propagate_delta` is bit-identical to
        full propagation whatever it starts from -- so the base choice
        (nearest by announce/withdraw/block edit distance, most
        recently used winning ties) only affects speed, never output.
        Graphs smaller than :data:`DELTA_MIN_NODES` always propagate
        in full: at that scale the replay costs more than it saves.
        """
        origins = [
            self._origins[s].with_blocked(self._blocked[s])
            for s in sorted(key[0])
        ]
        if not origins:
            return RoutingTable({})
        base = (
            self._nearest_base(key)
            if delta_enabled() and len(self.graph) >= DELTA_MIN_NODES
            else None
        )
        if base is None:
            return propagate(self.graph, origins)
        base_key, base_table = base
        withdraw = sorted(base_key[0] - key[0])
        base_blocked = dict(base_key[1])
        announce = [
            self._origins[s].with_blocked(self._blocked[s])
            for s in sorted(key[0])
            if s not in base_key[0]
            or base_blocked[s] != self._blocked[s]
        ]
        PREFIX_CACHE_STATS["delta_derived"] += 1
        return propagate_delta(
            self.graph, base_table,
            announce=announce, withdraw=withdraw,
        )

    def _nearest_base(
        self, key: tuple
    ) -> tuple[tuple, RoutingTable] | None:
        """The cached state closest to *key*, to derive it from."""
        best: tuple[tuple, RoutingTable] | None = None
        best_distance = 0
        candidates: list[tuple[tuple, RoutingTable]] = [
            (k, t) for k, t in reversed(self._cache.items())
        ]
        if self._shared_memo is not None:
            candidates.extend(
                (k[1], t)
                for k, t in reversed(self._shared_memo.items())
                if k[0] == self._memo_label
            )
        for base_key, table in candidates:
            if not base_key[0]:
                continue  # empty table: no trace to replay
            arrays = table._arrays
            if arrays is None or arrays.trace is None:
                # Dict-backed or trace-less tables (the reference
                # implementation, deserialized fixtures) cannot seed a
                # replay; they are simply never picked as a base.
                continue
            distance = _state_distance(base_key, key)
            if best is None or distance < best_distance:
                best = (base_key, table)
                best_distance = distance
        return best

    def set_announced(self, site: str, up: bool, timestamp: float) -> bool:
        """Announce or withdraw *site*; log the routing delta.

        Returns ``True`` if the state actually changed.
        """
        if site not in self._origins:
            raise KeyError(f"unknown site {site!r}")
        if self._announced[site] == up:
            return False
        before = self.routing()
        self._announced[site] = up
        self._current = None
        after = self.routing()
        changed = after.changes_from(before)
        if changed:
            self._change_log.append(
                RouteChangeRecord(
                    timestamp=timestamp, changed_asns=frozenset(changed)
                )
            )
        return True

    def set_blocked(
        self, site: str, blocked: frozenset[int], timestamp: float
    ) -> bool:
        """Partially withdraw: stop exporting to *blocked* neighbors.

        Returns ``True`` if the routing actually changed.  Passing an
        empty set restores full export.
        """
        if site not in self._origins:
            raise KeyError(f"unknown site {site!r}")
        if self._blocked[site] == blocked:
            return False
        before = self.routing()
        self._blocked[site] = blocked
        self._current = None
        after = self.routing()
        changed = after.changes_from(before)
        if changed:
            self._change_log.append(
                RouteChangeRecord(
                    timestamp=timestamp, changed_asns=frozenset(changed)
                )
            )
        return True

    def withdraw(self, site: str, timestamp: float) -> bool:
        """Withdraw *site*'s announcement (the §2.2 withdraw policy)."""
        return self.set_announced(site, False, timestamp)

    def announce(self, site: str, timestamp: float) -> bool:
        """Re-announce *site* (post-event recovery)."""
        return self.set_announced(site, True, timestamp)

    def reset(self) -> None:
        """Restore the post-construction announcement state.

        Every site returns to announced with its original export
        policy and the change log empties; the routing-table cache is
        kept (tables are pure functions of graph + announcement state,
        and their ``version`` tokens never reach simulated outputs).
        Callers modelling standby sites must replay their initial
        withdrawals, as construction does.
        """
        for site, origin in self._origins.items():
            self._announced[site] = True
            self._blocked[site] = origin.blocked_neighbors
        self._current = None
        self._change_log = []

    def change_log(self) -> list[RouteChangeRecord]:
        """All routing transitions so far, in time order."""
        return list(self._change_log)

    def catchment_of(self, asn: int) -> str | None:
        """The site *asn* currently reaches, or ``None``."""
        return self.routing().site_of(asn)
