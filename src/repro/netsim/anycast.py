"""Anycast prefix state: which sites announce, and the resulting routes.

One :class:`AnycastPrefix` models one root letter's service address.
Sites can be withdrawn and re-announced over time (the paper's
"withdraw" policy and post-event recovery); the best-route table is
recomputed on demand and cached per announcement set, since the same
sets recur (before/during/after each event).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .asgraph import ASGraph
from .bgp import Origin, RoutingTable, propagate

#: Default bound of the per-prefix routing-table cache.  Policy loops
#: cycle through a handful of announcement states, but fault-injected
#: runs (BgpSessionReset flapping different sites every bin) can visit
#: arbitrarily many distinct states; an unbounded cache would retain
#: every table for the life of a sweep worker.
DEFAULT_CACHE_SIZE = 64


@dataclass(frozen=True, slots=True)
class RouteChangeRecord:
    """One routing transition, for BGP collectors to observe."""

    timestamp: float
    changed_asns: frozenset[int]


class AnycastPrefix:
    """The announcement state of one anycast service (one letter)."""

    def __init__(
        self,
        graph: ASGraph,
        origins: list[Origin],
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if not origins:
            raise ValueError("an anycast prefix needs at least one origin")
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        sites = [o.site for o in origins]
        if len(set(sites)) != len(sites):
            raise ValueError("duplicate site ids among origins")
        self.graph = graph
        self._origins = {o.site: o for o in origins}
        self._announced = {o.site: True for o in origins}
        self._blocked: dict[str, frozenset[int]] = {
            o.site: o.blocked_neighbors for o in origins
        }
        self._cache: OrderedDict[tuple, RoutingTable] = OrderedDict()
        self._cache_size = cache_size
        self._current: RoutingTable | None = None
        self._change_log: list[RouteChangeRecord] = []

    @property
    def sites(self) -> list[str]:
        """All site ids, announced or not."""
        return list(self._origins)

    def origin(self, site: str) -> Origin:
        """The origin definition of *site*."""
        try:
            return self._origins[site]
        except KeyError:
            raise KeyError(f"unknown site {site!r}") from None

    def is_announced(self, site: str) -> bool:
        """Whether *site* currently announces the prefix."""
        if site not in self._origins:
            raise KeyError(f"unknown site {site!r}")
        return self._announced[site]

    def announced_sites(self) -> frozenset[str]:
        """The set of currently announced sites."""
        return frozenset(s for s, up in self._announced.items() if up)

    def blocked_neighbors(self, site: str) -> frozenset[int]:
        """Neighbors *site* currently refuses to export to."""
        if site not in self._origins:
            raise KeyError(f"unknown site {site!r}")
        return self._blocked[site]

    def _state_key(self) -> tuple:
        announced = self.announced_sites()
        return (
            announced,
            tuple(sorted((s, self._blocked[s]) for s in announced)),
        )

    def routing(self) -> RoutingTable:
        """Best routes for the current announcement state (cached).

        The returned table carries a stable ``version`` token (see
        :class:`~repro.netsim.bgp.RoutingTable`): recurring
        announcement states return the *same* table object (while it
        stays cached), so callers can key their own caches on
        ``table.version``.  The current table is additionally memoized
        until the next announce / withdraw / block change, making
        per-bin ``routing()`` calls O(1).

        The cache is a bounded LRU (*cache_size* states): recomputing
        an evicted state yields a table with identical routes but a
        fresh ``version``, so downstream version-keyed caches recompute
        the same derived values -- eviction never changes outputs.
        """
        if self._current is not None:
            return self._current
        key = self._state_key()
        table = self._cache.get(key)
        if table is None:
            origins = [
                self._origins[s].with_blocked(self._blocked[s])
                for s in sorted(key[0])
            ]
            table = (
                propagate(self.graph, origins)
                if origins
                else RoutingTable({})
            )
            self._cache[key] = table
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        else:
            self._cache.move_to_end(key)
        self._current = table
        return table

    def set_announced(self, site: str, up: bool, timestamp: float) -> bool:
        """Announce or withdraw *site*; log the routing delta.

        Returns ``True`` if the state actually changed.
        """
        if site not in self._origins:
            raise KeyError(f"unknown site {site!r}")
        if self._announced[site] == up:
            return False
        before = self.routing()
        self._announced[site] = up
        self._current = None
        after = self.routing()
        changed = after.changes_from(before)
        if changed:
            self._change_log.append(
                RouteChangeRecord(
                    timestamp=timestamp, changed_asns=frozenset(changed)
                )
            )
        return True

    def set_blocked(
        self, site: str, blocked: frozenset[int], timestamp: float
    ) -> bool:
        """Partially withdraw: stop exporting to *blocked* neighbors.

        Returns ``True`` if the routing actually changed.  Passing an
        empty set restores full export.
        """
        if site not in self._origins:
            raise KeyError(f"unknown site {site!r}")
        if self._blocked[site] == blocked:
            return False
        before = self.routing()
        self._blocked[site] = blocked
        self._current = None
        after = self.routing()
        changed = after.changes_from(before)
        if changed:
            self._change_log.append(
                RouteChangeRecord(
                    timestamp=timestamp, changed_asns=frozenset(changed)
                )
            )
        return True

    def withdraw(self, site: str, timestamp: float) -> bool:
        """Withdraw *site*'s announcement (the §2.2 withdraw policy)."""
        return self.set_announced(site, False, timestamp)

    def announce(self, site: str, timestamp: float) -> bool:
        """Re-announce *site* (post-event recovery)."""
        return self.set_announced(site, True, timestamp)

    def reset(self) -> None:
        """Restore the post-construction announcement state.

        Every site returns to announced with its original export
        policy and the change log empties; the routing-table cache is
        kept (tables are pure functions of graph + announcement state,
        and their ``version`` tokens never reach simulated outputs).
        Callers modelling standby sites must replay their initial
        withdrawals, as construction does.
        """
        for site, origin in self._origins.items():
            self._announced[site] = True
            self._blocked[site] = origin.blocked_neighbors
        self._current = None
        self._change_log = []

    def change_log(self) -> list[RouteChangeRecord]:
        """All routing transitions so far, in time order."""
        return list(self._change_log)

    def catchment_of(self, asn: int) -> str | None:
        """The site *asn* currently reaches, or ``None``."""
        return self.routing().site_of(asn)
