"""Synthetic Internet topology: transit core, stub edges, site hosts.

The reproduction needs an Internet for BGP to run over.  We build a
two-tier topology that captures what matters for anycast catchments:

* a full mesh of **transit** ASes placed at major interconnection
  metros (the tier-1 core);
* **stub** ASes (eyeball networks hosting vantage points and botnet
  members) attached as customers of their one or two geographically
  nearest transits -- so a stub's traffic enters the core near the
  stub;
* **site-host** ASes created on demand for each anycast site, attached
  as customers of the transits nearest the site; *local* sites
  additionally peer directly with nearby stubs (the IXP model), which
  is where their NO_EXPORT catchment comes from.

Geographic attachment plus the geographic tie-break in
:mod:`repro.netsim.bgp` yields catchments that look like the real
ones: mostly-nearest-site, with policy exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.airports import AIRPORTS, airport
from ..util.geo import Location, haversine_km_vec
from .asgraph import ASGraph, AsNode, AsRole, Relationship
from .bgp import Scope

#: Metros hosting the transit core, chosen for global coverage.
TRANSIT_METROS = (
    "AMS", "LHR", "FRA", "CDG", "ARN", "WAW",
    "IAD", "JFK", "ORD", "DFW", "LAX", "SEA", "YYZ",
    "SIN", "NRT", "HKG", "BOM",
    "SYD", "GRU", "JNB", "DXB",
)

#: Region weights approximating the RIPE Atlas VP distribution
#: (heavily biased towards Europe; paper section 2.4.1).
ATLAS_REGION_WEIGHTS = {
    "EU": 0.62,
    "NA": 0.18,
    "AS": 0.08,
    "SA": 0.04,
    "OC": 0.04,
    "ME": 0.02,
    "AF": 0.02,
}

#: Relative interconnection density ("gravity") of major metros: more
#: edge networks anchor near the big IXP cities, which is why the
#: paper's K-AMS and K-LHR catchments dwarf the rest (Fig. 6b).
METRO_GRAVITY = {
    "AMS": 8.0, "LHR": 7.0, "FRA": 6.0, "CDG": 3.0, "VIE": 2.5,
    "ZRH": 2.0, "WAW": 2.0, "LED": 2.0, "ARN": 2.0, "MIL": 1.5,
    "IAD": 4.0, "JFK": 3.0, "ORD": 3.0, "LAX": 4.0, "MIA": 3.0,
    "SEA": 2.0, "PAO": 2.0,
    "NRT": 5.0, "SIN": 3.0, "HKG": 2.0,
    "SYD": 3.0,
}

_TRANSIT_ASN_BASE = 100
_STUB_ASN_BASE = 10_000
_SITE_ASN_BASE = 20_000


@dataclass(frozen=True, slots=True)
class TopologyConfig:
    """Knobs for the synthetic Internet."""

    n_stubs: int = 600
    multihome_fraction: float = 0.3
    region_weights: dict[str, float] = field(
        default_factory=lambda: dict(ATLAS_REGION_WEIGHTS)
    )
    stub_jitter_deg: float = 2.0
    local_site_ixp_radius_km: float = 200.0
    local_site_max_peers: int = 4

    def __post_init__(self) -> None:
        if self.n_stubs <= 0:
            raise ValueError("need at least one stub AS")
        if not 0.0 <= self.multihome_fraction <= 1.0:
            raise ValueError("multihome_fraction must be within [0, 1]")
        total = sum(self.region_weights.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"region weights must sum to 1, got {total}")


class Topology:
    """A built topology plus helpers for attaching anycast sites."""

    def __init__(self, graph: ASGraph, config: TopologyConfig) -> None:
        self.graph = graph
        self.config = config
        self.transit_asns: list[int] = []
        self.stub_asns: list[int] = []
        self.site_host_asns: dict[str, int] = {}
        self._next_site_asn = _SITE_ASN_BASE
        self._transit_coords: tuple | None = None
        self._stub_coords: tuple | None = None

    def _coords(self, asns: list[int], cache: tuple | None) -> tuple:
        """(n, lats, lons) for *asns*, rebuilt when the list grew."""
        if cache is not None and cache[0] == len(asns):
            return cache
        lats = np.array(
            [self.graph.node(a).location.lat for a in asns],
            dtype=np.float64,
        )
        lons = np.array(
            [self.graph.node(a).location.lon for a in asns],
            dtype=np.float64,
        )
        return (len(asns), lats, lons)

    def transit_distances(self, location: Location) -> np.ndarray:
        """Distance from *location* to every transit AS (list order)."""
        self._transit_coords = self._coords(
            self.transit_asns, self._transit_coords
        )
        _, lats, lons = self._transit_coords
        return haversine_km_vec(lats, lons, location.lat, location.lon)

    def stub_distances(self, location: Location) -> np.ndarray:
        """Distance from *location* to every stub AS (list order)."""
        self._stub_coords = self._coords(self.stub_asns, self._stub_coords)
        _, lats, lons = self._stub_coords
        return haversine_km_vec(lats, lons, location.lat, location.lon)

    def nearest_transits(self, location: Location, k: int = 2) -> list[int]:
        """The *k* transit ASes closest to *location*."""
        distances = self.transit_distances(location)
        order = np.argsort(distances, kind="stable")[:k]
        return [self.transit_asns[i] for i in order]

    def stubs_within(self, location: Location, radius_km: float) -> list[int]:
        """Stub ASes within *radius_km* of *location*."""
        if not self.stub_asns:
            return []
        distances = self.stub_distances(location)
        return [
            self.stub_asns[i]
            for i in np.flatnonzero(distances <= radius_km)
        ]

    def add_site_host(
        self,
        site_label: str,
        location: Location,
        scope: Scope,
        ixp_peering: bool | None = None,
        ixp_radius_km: float | None = None,
        ixp_max_peers: int | None = None,
        n_transits: int | None = None,
    ) -> int:
        """Create the host AS for one anycast site and wire it in.

        Returns the new ASN.  Global sites become customers of their
        two nearest transits; local sites buy transit from one and peer
        with nearby stubs at the local IXP.  *ixp_peering* overrides
        the IXP default (local: on, global: off) -- big IXP-present
        global sites like K-LHR peer directly with nearby networks,
        which is where "stuck" catchments come from under partial
        withdrawal.
        """
        if site_label in self.site_host_asns:
            raise ValueError(f"site {site_label} already has a host AS")
        if ixp_peering is None:
            ixp_peering = scope is Scope.LOCAL
        asn = self._next_site_asn
        self._next_site_asn += 1
        self.graph.add_as(
            AsNode(
                asn=asn,
                location=location,
                role=AsRole.SITE_HOST,
                name=site_label,
            )
        )
        if n_transits is None:
            n_transits = 2 if scope is Scope.GLOBAL else 1
        transits = self.nearest_transits(location, k=n_transits)
        for transit in transits:
            self.graph.add_link(asn, transit, Relationship.PROVIDER)
        if ixp_peering:
            radius = (
                ixp_radius_km
                if ixp_radius_km is not None
                else self.config.local_site_ixp_radius_km
            )
            max_peers = (
                ixp_max_peers
                if ixp_max_peers is not None
                else self.config.local_site_max_peers
            )
            distances = self.stub_distances(location)
            within = np.flatnonzero(distances <= radius)
            ranked = within[
                np.argsort(distances[within], kind="stable")
            ]
            nearby = [self.stub_asns[i] for i in ranked]
            for stub in nearby[:max_peers]:
                self.graph.add_link(asn, stub, Relationship.PEER)
        self.site_host_asns[site_label] = asn
        return asn

    def stub_locations(self) -> dict[int, Location]:
        """Location of every stub AS."""
        return {
            asn: self.graph.node(asn).location for asn in self.stub_asns
        }


def build_topology(
    config: TopologyConfig, rng: np.random.Generator
) -> Topology:
    """Build the transit core and the stub edge."""
    graph = ASGraph()
    topo = Topology(graph, config)

    # Transit core: full peer mesh.
    for i, code in enumerate(TRANSIT_METROS):
        asn = _TRANSIT_ASN_BASE + i
        graph.add_as(
            AsNode(
                asn=asn,
                location=airport(code).location,
                role=AsRole.TRANSIT,
                name=f"transit-{code}",
            )
        )
        topo.transit_asns.append(asn)
    for i, a in enumerate(topo.transit_asns):
        for b in topo.transit_asns[i + 1 :]:
            graph.add_link(a, b, Relationship.PEER)

    # Stub edge: placed around airports sampled by region weight.
    regions = sorted(config.region_weights)
    weights = np.array([config.region_weights[r] for r in regions])
    region_airports = {
        r: [ap for ap in AIRPORTS.values() if ap.region == r] for r in regions
    }
    region_choices = rng.choice(len(regions), size=config.n_stubs, p=weights)
    gravity = {
        r: np.array(
            [METRO_GRAVITY.get(ap.code, 1.0) for ap in region_airports[r]]
        )
        for r in regions
    }
    for r in regions:
        if region_airports[r]:
            gravity[r] = gravity[r] / gravity[r].sum()
    for i in range(config.n_stubs):
        region = regions[region_choices[i]]
        anchor = region_airports[region][
            rng.choice(len(region_airports[region]), p=gravity[region])
        ]
        lat = float(
            np.clip(
                anchor.location.lat
                + rng.normal(0.0, config.stub_jitter_deg),
                -89.0,
                89.0,
            )
        )
        lon = float(
            ((anchor.location.lon + rng.normal(0.0, config.stub_jitter_deg))
             + 180.0) % 360.0 - 180.0
        )
        location = Location(lat, lon)
        asn = _STUB_ASN_BASE + i
        graph.add_as(
            AsNode(
                asn=asn,
                location=location,
                role=AsRole.STUB,
                name=f"stub-{region}-{i}",
            )
        )
        nearest = topo.nearest_transits(location, k=2)
        graph.add_link(asn, nearest[0], Relationship.PROVIDER)
        if rng.random() < config.multihome_fraction and len(nearest) > 1:
            graph.add_link(asn, nearest[1], Relationship.PROVIDER)
        topo.stub_asns.append(asn)

    graph.validate()
    return topo
