"""Synthetic Internet topology: transit core, stub edges, site hosts.

The reproduction needs an Internet for BGP to run over.  We build a
two-tier topology that captures what matters for anycast catchments:

* a full mesh of **transit** ASes placed at major interconnection
  metros (the tier-1 core);
* **stub** ASes (eyeball networks hosting vantage points and botnet
  members) attached as customers of their one or two geographically
  nearest transits -- so a stub's traffic enters the core near the
  stub;
* **site-host** ASes created on demand for each anycast site, attached
  as customers of the transits nearest the site; *local* sites
  additionally peer directly with nearby stubs (the IXP model), which
  is where their NO_EXPORT catchment comes from.

Geographic attachment plus the geographic tie-break in
:mod:`repro.netsim.bgp` yields catchments that look like the real
ones: mostly-nearest-site, with policy exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..util.airports import AIRPORTS, airport
from ..util.geo import Location, haversine_km_vec
from .asgraph import ASGraph, AsNode, AsRole, Relationship
from .bgp import Scope

#: Metros hosting the transit core, chosen for global coverage.
TRANSIT_METROS = (
    "AMS", "LHR", "FRA", "CDG", "ARN", "WAW",
    "IAD", "JFK", "ORD", "DFW", "LAX", "SEA", "YYZ",
    "SIN", "NRT", "HKG", "BOM",
    "SYD", "GRU", "JNB", "DXB",
)

#: Region weights approximating the RIPE Atlas VP distribution
#: (heavily biased towards Europe; paper section 2.4.1).
ATLAS_REGION_WEIGHTS = {
    "EU": 0.62,
    "NA": 0.18,
    "AS": 0.08,
    "SA": 0.04,
    "OC": 0.04,
    "ME": 0.02,
    "AF": 0.02,
}

#: Relative interconnection density ("gravity") of major metros: more
#: edge networks anchor near the big IXP cities, which is why the
#: paper's K-AMS and K-LHR catchments dwarf the rest (Fig. 6b).
METRO_GRAVITY = {
    "AMS": 8.0, "LHR": 7.0, "FRA": 6.0, "CDG": 3.0, "VIE": 2.5,
    "ZRH": 2.0, "WAW": 2.0, "LED": 2.0, "ARN": 2.0, "MIL": 1.5,
    "IAD": 4.0, "JFK": 3.0, "ORD": 3.0, "LAX": 4.0, "MIA": 3.0,
    "SEA": 2.0, "PAO": 2.0,
    "NRT": 5.0, "SIN": 3.0, "HKG": 2.0,
    "SYD": 3.0,
}

_TRANSIT_ASN_BASE = 100
_STUB_ASN_BASE = 10_000
_SITE_ASN_BASE = 20_000


@dataclass(frozen=True, slots=True)
class TopologyConfig:
    """Knobs for the synthetic Internet."""

    n_stubs: int = 600
    multihome_fraction: float = 0.3
    region_weights: dict[str, float] = field(
        default_factory=lambda: dict(ATLAS_REGION_WEIGHTS)
    )
    stub_jitter_deg: float = 2.0
    local_site_ixp_radius_km: float = 200.0
    local_site_max_peers: int = 4

    def __post_init__(self) -> None:
        if self.n_stubs <= 0:
            raise ValueError("need at least one stub AS")
        if not 0.0 <= self.multihome_fraction <= 1.0:
            raise ValueError("multihome_fraction must be within [0, 1]")
        total = sum(self.region_weights.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"region weights must sum to 1, got {total}")


class Topology:
    """A built topology plus helpers for attaching anycast sites."""

    def __init__(self, graph: ASGraph, config: TopologyConfig) -> None:
        self.graph = graph
        self.config = config
        self.transit_asns: list[int] = []
        self.stub_asns: list[int] = []
        self.site_host_asns: dict[str, int] = {}
        self._next_site_asn = _SITE_ASN_BASE
        self._transit_coords: tuple | None = None
        self._stub_coords: tuple | None = None
        self._distance_memo: dict[
            tuple[str, int, float, float], np.ndarray
        ] = {}

    def _coords(self, asns: list[int], cache: tuple | None) -> tuple:
        """(n, lats, lons) for *asns*, rebuilt when the list grew."""
        if cache is not None and cache[0] == len(asns):
            return cache
        lats = np.array(
            [self.graph.node(a).location.lat for a in asns],
            dtype=np.float64,
        )
        lons = np.array(
            [self.graph.node(a).location.lon for a in asns],
            dtype=np.float64,
        )
        return (len(asns), lats, lons)

    def _distances(
        self, kind: str, coords: tuple, location: Location
    ) -> np.ndarray:
        """Distance row, memoised per (AS list length, location).

        Many sites share a metro, so the same great-circle row is
        requested over and over during substrate build; the memo key
        includes the list length so a grown AS list invalidates it.
        """
        key = (kind, coords[0], location.lat, location.lon)
        row = self._distance_memo.get(key)
        if row is None:
            _, lats, lons = coords
            row = haversine_km_vec(lats, lons, location.lat, location.lon)
            self._distance_memo[key] = row
        return row

    def transit_distances(self, location: Location) -> np.ndarray:
        """Distance from *location* to every transit AS (list order)."""
        self._transit_coords = self._coords(
            self.transit_asns, self._transit_coords
        )
        return self._distances("transit", self._transit_coords, location)

    def stub_distances(self, location: Location) -> np.ndarray:
        """Distance from *location* to every stub AS (list order)."""
        self._stub_coords = self._coords(self.stub_asns, self._stub_coords)
        return self._distances("stub", self._stub_coords, location)

    def nearest_transits(self, location: Location, k: int = 2) -> list[int]:
        """The *k* transit ASes closest to *location*."""
        distances = self.transit_distances(location)
        order = np.argsort(distances, kind="stable")[:k]
        return [self.transit_asns[i] for i in order]

    def stubs_within(self, location: Location, radius_km: float) -> list[int]:
        """Stub ASes within *radius_km* of *location*."""
        if not self.stub_asns:
            return []
        distances = self.stub_distances(location)
        return [
            self.stub_asns[i]
            for i in np.flatnonzero(distances <= radius_km)
        ]

    def add_site_host(
        self,
        site_label: str,
        location: Location,
        scope: Scope,
        ixp_peering: bool | None = None,
        ixp_radius_km: float | None = None,
        ixp_max_peers: int | None = None,
        n_transits: int | None = None,
    ) -> int:
        """Create the host AS for one anycast site and wire it in.

        Returns the new ASN.  Global sites become customers of their
        two nearest transits; local sites buy transit from one and peer
        with nearby stubs at the local IXP.  *ixp_peering* overrides
        the IXP default (local: on, global: off) -- big IXP-present
        global sites like K-LHR peer directly with nearby networks,
        which is where "stuck" catchments come from under partial
        withdrawal.
        """
        if site_label in self.site_host_asns:
            raise ValueError(f"site {site_label} already has a host AS")
        if ixp_peering is None:
            ixp_peering = scope is Scope.LOCAL
        asn = self._next_site_asn
        self._next_site_asn += 1
        self.graph.add_as(
            AsNode(
                asn=asn,
                location=location,
                role=AsRole.SITE_HOST,
                name=site_label,
            )
        )
        if n_transits is None:
            n_transits = 2 if scope is Scope.GLOBAL else 1
        transits = self.nearest_transits(location, k=n_transits)
        for transit in transits:
            self.graph.add_link(asn, transit, Relationship.PROVIDER)
        if ixp_peering:
            radius = (
                ixp_radius_km
                if ixp_radius_km is not None
                else self.config.local_site_ixp_radius_km
            )
            max_peers = (
                ixp_max_peers
                if ixp_max_peers is not None
                else self.config.local_site_max_peers
            )
            distances = self.stub_distances(location)
            within = np.flatnonzero(distances <= radius)
            ranked = within[
                np.argsort(distances[within], kind="stable")
            ]
            nearby = [self.stub_asns[i] for i in ranked]
            for stub in nearby[:max_peers]:
                self.graph.add_link(asn, stub, Relationship.PEER)
        self.site_host_asns[site_label] = asn
        return asn

    def stub_locations(self) -> dict[int, Location]:
        """Location of every stub AS."""
        return {
            asn: self.graph.node(asn).location for asn in self.stub_asns
        }


def build_topology(
    config: TopologyConfig, rng: np.random.Generator
) -> Topology:
    """Build the transit core and the stub edge."""
    graph = ASGraph()
    topo = Topology(graph, config)

    # Transit core: full peer mesh.
    for i, code in enumerate(TRANSIT_METROS):
        asn = _TRANSIT_ASN_BASE + i
        graph.add_as(
            AsNode(
                asn=asn,
                location=airport(code).location,
                role=AsRole.TRANSIT,
                name=f"transit-{code}",
            )
        )
        topo.transit_asns.append(asn)
    for i, a in enumerate(topo.transit_asns):
        for b in topo.transit_asns[i + 1 :]:
            graph.add_link(a, b, Relationship.PEER)

    # Stub edge: placed around airports sampled by region weight.
    regions = sorted(config.region_weights)
    weights = np.array([config.region_weights[r] for r in regions])
    region_airports = {
        r: [ap for ap in AIRPORTS.values() if ap.region == r] for r in regions
    }
    region_choices = rng.choice(len(regions), size=config.n_stubs, p=weights)
    gravity = {
        r: np.array(
            [METRO_GRAVITY.get(ap.code, 1.0) for ap in region_airports[r]]
        )
        for r in regions
    }
    for r in regions:
        if region_airports[r]:
            gravity[r] = gravity[r] / gravity[r].sum()
    for i in range(config.n_stubs):
        region = regions[region_choices[i]]
        anchor = region_airports[region][
            rng.choice(len(region_airports[region]), p=gravity[region])
        ]
        lat = float(
            np.clip(
                anchor.location.lat
                + rng.normal(0.0, config.stub_jitter_deg),
                -89.0,
                89.0,
            )
        )
        lon = float(
            ((anchor.location.lon + rng.normal(0.0, config.stub_jitter_deg))
             + 180.0) % 360.0 - 180.0
        )
        location = Location(lat, lon)
        asn = _STUB_ASN_BASE + i
        graph.add_as(
            AsNode(
                asn=asn,
                location=location,
                role=AsRole.STUB,
                name=f"stub-{region}-{i}",
            )
        )
        nearest = topo.nearest_transits(location, k=2)
        graph.add_link(asn, nearest[0], Relationship.PROVIDER)
        if rng.random() < config.multihome_fraction and len(nearest) > 1:
            graph.add_link(asn, nearest[1], Relationship.PROVIDER)
        topo.stub_asns.append(asn)

    graph.validate()
    return topo


# ---------------------------------------------------------------------------
# Internet-scale synthetic topologies (CAIDA as-rel2 format)
# ---------------------------------------------------------------------------

#: Golden-ratio conjugates used to derive deterministic pseudo-random
#: coordinates from an ASN alone, so a graph loaded from an as-rel2
#: file (which carries no geography) gets the same locations the
#: generator assigned.
_LOC_PHI_LAT = 0.6180339887498949
_LOC_PHI_LON = 0.7548776662466927


def synthetic_location(asn: int) -> Location:
    """Deterministic location for a synthetic AS, derived from its ASN.

    Anchors each AS at a transit metro (cycling through
    :data:`TRANSIT_METROS`) and jitters it by a few degrees using
    low-discrepancy sequences, so geography is a pure function of the
    ASN -- no RNG, no serialization needed.
    """
    anchor = airport(TRANSIT_METROS[asn % len(TRANSIT_METROS)]).location
    lat_jit = ((asn * _LOC_PHI_LAT) % 1.0 - 0.5) * 8.0
    lon_jit = ((asn * _LOC_PHI_LON) % 1.0 - 0.5) * 8.0
    lat = min(89.0, max(-89.0, anchor.lat + lat_jit))
    lon = ((anchor.lon + lon_jit) + 180.0) % 360.0 - 180.0
    return Location(lat, lon)


@dataclass(frozen=True, slots=True)
class AsRelTopologyConfig:
    """Knobs for the internet-scale synthetic AS graph.

    The generated graph has the shape BGP propagation cares about: a
    full peer mesh among *clique_size* transit-free core ASes, a
    power-law provider hierarchy grown by preferential attachment
    (every provider draw is weighted by current customer count + 1, so
    early ASes become heavy transits and the customer-degree
    distribution is heavy-tailed), multihomed edges, and a peering
    mesh sampled with the same attachment weights (dense between
    well-connected mid-tier ASes, sparse at the edge).
    """

    n_ases: int = 50_000
    clique_size: int = 12
    multihome_fraction: float = 0.35
    #: Extra peer links per AS (beyond the clique mesh).
    peer_degree: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clique_size < 2:
            raise ValueError("clique needs at least two ASes")
        if self.n_ases <= self.clique_size:
            raise ValueError("n_ases must exceed clique_size")
        if not 0.0 <= self.multihome_fraction <= 1.0:
            raise ValueError("multihome_fraction must be within [0, 1]")
        if self.peer_degree < 0.0:
            raise ValueError("peer_degree must be non-negative")


def generate_as_rel2(
    config: AsRelTopologyConfig,
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Generate an internet-scale topology's link lists.

    Returns ``(provider_links, peer_links)`` where each provider link
    is ``(customer, provider)`` and each peer link ``(a, b)`` with
    ``a < b``.  Fully deterministic in ``config.seed``.
    """
    rng = np.random.default_rng(config.seed)
    n = config.n_ases
    clique = list(range(1, config.clique_size + 1))
    provider_links: list[tuple[int, int]] = []
    peer_links: list[tuple[int, int]] = []
    linked: set[tuple[int, int]] = set()

    for i, a in enumerate(clique):
        for b in clique[i + 1 :]:
            peer_links.append((a, b))
            linked.add((a, b))

    # Preferential-attachment pool: each AS appears once at birth plus
    # once per customer it gains, so a draw lands on an AS with
    # probability proportional to (customer count + 1).  Clique members
    # get a seed boost so the hierarchy grows under the core.
    pool: list[int] = []
    for asn in clique:
        pool.extend([asn] * 8)
    for asn in range(config.clique_size + 1, n + 1):
        n_providers = 1 + int(rng.random() < config.multihome_fraction)
        chosen: list[int] = []
        for _ in range(n_providers):
            for _attempt in range(8):
                provider = pool[int(rng.random() * len(pool))]
                if provider not in chosen:
                    chosen.append(provider)
                    break
        for provider in chosen:
            pair = (min(asn, provider), max(asn, provider))
            provider_links.append((asn, provider))
            linked.add(pair)
            pool.append(provider)
        pool.append(asn)

    n_peer = int(config.peer_degree * n)
    for _ in range(n_peer):
        a = pool[int(rng.random() * len(pool))]
        b = pool[int(rng.random() * len(pool))]
        if a == b:
            continue
        pair = (min(a, b), max(a, b))
        if pair in linked:
            continue
        peer_links.append(pair)
        linked.add(pair)
    return provider_links, peer_links


def graph_from_links(
    provider_links: list[tuple[int, int]],
    peer_links: list[tuple[int, int]],
) -> ASGraph:
    """Assemble an :class:`ASGraph` from as-rel2 link lists.

    ASes appearing as a provider of anyone get the ``TRANSIT`` role,
    the rest are ``STUB``; locations come from
    :func:`synthetic_location`.
    """
    providers = {p for _, p in provider_links}
    asns = sorted(
        {a for link in provider_links for a in link}
        | {a for link in peer_links for a in link}
    )
    graph = ASGraph()
    for asn in asns:
        role = AsRole.TRANSIT if asn in providers else AsRole.STUB
        graph.add_as(
            AsNode(
                asn=asn,
                location=synthetic_location(asn),
                role=role,
                name=f"as{asn}",
            )
        )
    for customer, provider in provider_links:
        graph.add_link(customer, provider, Relationship.PROVIDER)
    for a, b in peer_links:
        graph.add_link(a, b, Relationship.PEER)
    return graph


def build_internet_graph(config: AsRelTopologyConfig) -> ASGraph:
    """Generate a deterministic internet-scale AS graph."""
    provider_links, peer_links = generate_as_rel2(config)
    return graph_from_links(provider_links, peer_links)


def dump_as_rel2(graph: ASGraph, path: "str | Path") -> None:
    """Write *graph* in CAIDA as-rel2 serial-2 format.

    One relationship per line: ``<provider>|<customer>|-1`` for
    transit, ``<a>|<b>|0`` for peering (each link once, smaller ASN
    first), sorted numerically so output is deterministic.
    """
    transit: list[tuple[int, int]] = []
    peering: list[tuple[int, int]] = []
    for asn in sorted(graph.asns):
        for neighbor in sorted(graph.customers(asn)):
            transit.append((asn, neighbor))
        for neighbor in sorted(graph.peers(asn)):
            if asn < neighbor:
                peering.append((asn, neighbor))
    with open(path, "w", encoding="ascii") as fh:
        fh.write("# synthetic as-rel2 topology (repro.netsim.topology)\n")
        fh.write(f"# ases: {len(graph)}\n")
        for provider, customer in sorted(transit):
            fh.write(f"{provider}|{customer}|-1\n")
        for a, b in sorted(peering):
            fh.write(f"{a}|{b}|0\n")


def load_as_rel2(path: "str | Path") -> ASGraph:
    """Load a CAIDA as-rel2 serial-2 file into an :class:`ASGraph`.

    Accepts the standard format: ``#`` comments, ``a|b|-1`` (a
    provides transit to b) and ``a|b|0`` (peers); a trailing
    ``|source`` field, as found in published CAIDA files, is
    tolerated.  Locations and roles are reconstructed exactly as the
    generator would assign them, so ``load(dump(g))`` reproduces *g*.
    """
    provider_links: list[tuple[int, int]] = []
    peer_links: list[tuple[int, int]] = []
    with open(path, "r", encoding="ascii") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) < 3:
                raise ValueError(
                    f"{path}:{lineno}: expected a|b|rel, got {line!r}"
                )
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
            if rel == -1:
                provider_links.append((b, a))
            elif rel == 0:
                peer_links.append((min(a, b), max(a, b)))
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown relationship {rel}"
                )
    return graph_from_links(provider_links, peer_links)
