"""Network substrate: AS graph, BGP propagation, topology, overload."""

from .anycast import AnycastPrefix, RouteChangeRecord
from .asgraph import ASGraph, AsNode, AsRole, CompiledGraph, Relationship
from .bgp import (
    DELTA_STATS,
    Origin,
    Route,
    RouteClass,
    RoutingTable,
    Scope,
    delta_enabled,
    propagate,
    propagate_delta,
)
from .bgp_reference import propagate as propagate_reference
from .queueing import OverloadModel
from .topology import (
    ATLAS_REGION_WEIGHTS,
    TRANSIT_METROS,
    AsRelTopologyConfig,
    Topology,
    TopologyConfig,
    build_internet_graph,
    build_topology,
    dump_as_rel2,
    generate_as_rel2,
    load_as_rel2,
)

__all__ = [
    "ASGraph",
    "ATLAS_REGION_WEIGHTS",
    "AnycastPrefix",
    "AsNode",
    "AsRelTopologyConfig",
    "AsRole",
    "CompiledGraph",
    "DELTA_STATS",
    "Origin",
    "OverloadModel",
    "Relationship",
    "Route",
    "RouteChangeRecord",
    "RouteClass",
    "RoutingTable",
    "Scope",
    "TRANSIT_METROS",
    "Topology",
    "TopologyConfig",
    "build_internet_graph",
    "build_topology",
    "delta_enabled",
    "dump_as_rel2",
    "generate_as_rel2",
    "load_as_rel2",
    "propagate",
    "propagate_delta",
    "propagate_reference",
]
