"""Network substrate: AS graph, BGP propagation, topology, overload."""

from .anycast import AnycastPrefix, RouteChangeRecord
from .asgraph import ASGraph, AsNode, AsRole, CompiledGraph, Relationship
from .bgp import (
    Origin,
    Route,
    RouteClass,
    RoutingTable,
    Scope,
    propagate,
)
from .bgp_reference import propagate as propagate_reference
from .queueing import OverloadModel
from .topology import (
    ATLAS_REGION_WEIGHTS,
    TRANSIT_METROS,
    Topology,
    TopologyConfig,
    build_topology,
)

__all__ = [
    "ASGraph",
    "ATLAS_REGION_WEIGHTS",
    "AnycastPrefix",
    "AsNode",
    "AsRole",
    "CompiledGraph",
    "Origin",
    "OverloadModel",
    "Relationship",
    "Route",
    "RouteChangeRecord",
    "RouteClass",
    "RoutingTable",
    "Scope",
    "TRANSIT_METROS",
    "Topology",
    "TopologyConfig",
    "build_topology",
    "propagate",
    "propagate_reference",
]
