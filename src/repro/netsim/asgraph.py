"""AS-level topology with business relationships.

BGP route propagation (and therefore anycast catchment formation) is
governed by the commercial relationships between autonomous systems:
customers buy transit from providers, and peers exchange their own and
their customers' routes settlement-free (Gao-Rexford).  This module
holds the graph; :mod:`repro.netsim.bgp` propagates routes over it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..util.geo import Location, haversine_km_vec


class Relationship(enum.Enum):
    """The relationship of a neighbor, from the perspective of one AS."""

    CUSTOMER = "customer"  # the neighbor pays us for transit
    PROVIDER = "provider"  # we pay the neighbor for transit
    PEER = "peer"          # settlement-free

    @property
    def inverse(self) -> "Relationship":
        """The same link seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


class AsRole(enum.Enum):
    """Coarse role tag, used by builders and reporting (not by BGP)."""

    TRANSIT = "transit"     # backbone / tier-1
    STUB = "stub"           # edge network hosting VPs or bots
    SITE_HOST = "site_host" # hosts an anycast site


@dataclass(frozen=True, slots=True)
class AsNode:
    """One autonomous system."""

    asn: int
    location: Location
    role: AsRole = AsRole.STUB
    name: str = ""

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASNs are positive integers: {self.asn}")


@dataclass(slots=True)
class ASGraph:
    """A mutable AS-level topology.

    Adjacency is stored per node as ``{neighbor_asn: relationship}``
    where the relationship is expressed from the node's own viewpoint.
    """

    _nodes: dict[int, AsNode] = field(default_factory=dict)
    _adjacency: dict[int, dict[int, Relationship]] = field(default_factory=dict)
    #: Monotonic structure token: bumped on every node or link change,
    #: so derived data (coordinate arrays, tie-break distance memos)
    #: can key caches on it instead of object identity.
    _version: int = 0
    _coord_cache: tuple | None = None
    _distance_cache: dict = field(default_factory=dict)

    @property
    def version(self) -> int:
        """Monotonic token identifying the current graph structure."""
        return self._version

    def add_as(self, node: AsNode) -> None:
        """Add an AS; re-adding an existing ASN is an error."""
        if node.asn in self._nodes:
            raise ValueError(f"AS {node.asn} already in graph")
        self._nodes[node.asn] = node
        self._adjacency[node.asn] = {}
        self._version += 1
        self._distance_cache.clear()

    def add_link(self, asn: int, neighbor: int, rel: Relationship) -> None:
        """Add a link; *rel* is *neighbor*'s role as seen from *asn*.

        ``add_link(64500, 64501, Relationship.PROVIDER)`` means 64501
        provides transit to 64500.  The reverse direction is recorded
        automatically.
        """
        if asn == neighbor:
            raise ValueError("an AS cannot neighbor itself")
        for a in (asn, neighbor):
            if a not in self._nodes:
                raise KeyError(f"AS {a} not in graph")
        existing = self._adjacency[asn].get(neighbor)
        if existing is not None and existing is not rel:
            raise ValueError(
                f"link {asn}-{neighbor} already exists as {existing}"
            )
        self._adjacency[asn][neighbor] = rel
        self._adjacency[neighbor][asn] = rel.inverse
        self._version += 1

    def coordinate_arrays(
        self,
    ) -> tuple[dict[int, int], np.ndarray, np.ndarray]:
        """``(row_of_asn, lats, lons)`` over all ASes, cached per version.

        Row order is insertion order; the cache is rebuilt whenever the
        graph structure changes.
        """
        cache = self._coord_cache
        if cache is not None and cache[0] == len(self._nodes):
            return cache[1], cache[2], cache[3]
        row_of = {asn: i for i, asn in enumerate(self._nodes)}
        lats = np.array(
            [n.location.lat for n in self._nodes.values()],
            dtype=np.float64,
        )
        lons = np.array(
            [n.location.lon for n in self._nodes.values()],
            dtype=np.float64,
        )
        self._coord_cache = (len(self._nodes), row_of, lats, lons)
        return row_of, lats, lons

    def distance_row(
        self, cache_key: int, location: Location, scale: float
    ) -> np.ndarray:
        """Distances (km × *scale*) from *location* to every AS.

        Rows align with :meth:`coordinate_arrays`; memoized on
        ``(node count, cache_key)`` so repeated propagations over a
        stable graph reuse the same arrays.  *cache_key* must uniquely
        identify ``(location, scale)`` -- callers pass the origin ASN.
        """
        key = (len(self._nodes), cache_key)
        row = self._distance_cache.get(key)
        if row is None:
            _, lats, lons = self.coordinate_arrays()
            row = haversine_km_vec(
                lats, lons, location.lat, location.lon
            ) * scale
            self._distance_cache[key] = row
        return row

    def node(self, asn: int) -> AsNode:
        """Look up one AS by number."""
        try:
            return self._nodes[asn]
        except KeyError:
            raise KeyError(f"AS {asn} not in graph") from None

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def asns(self) -> list[int]:
        """All ASNs, in insertion order."""
        return list(self._nodes)

    def nodes(self) -> list[AsNode]:
        """All AS nodes, in insertion order."""
        return list(self._nodes.values())

    def neighbors(self, asn: int) -> dict[int, Relationship]:
        """Neighbors of *asn* with their relationship as seen from it."""
        if asn not in self._nodes:
            raise KeyError(f"AS {asn} not in graph")
        return dict(self._adjacency[asn])

    def neighbors_by_rel(self, asn: int, rel: Relationship) -> list[int]:
        """Neighbors of *asn* that play the given role for it."""
        if asn not in self._nodes:
            raise KeyError(f"AS {asn} not in graph")
        return [n for n, r in self._adjacency[asn].items() if r is rel]

    def providers(self, asn: int) -> list[int]:
        """ASes that provide transit to *asn*."""
        return self.neighbors_by_rel(asn, Relationship.PROVIDER)

    def customers(self, asn: int) -> list[int]:
        """ASes buying transit from *asn*."""
        return self.neighbors_by_rel(asn, Relationship.CUSTOMER)

    def peers(self, asn: int) -> list[int]:
        """Settlement-free peers of *asn*."""
        return self.neighbors_by_rel(asn, Relationship.PEER)

    def edge_count(self) -> int:
        """Number of undirected links."""
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def validate(self) -> None:
        """Check structural invariants; raises on violation.

        * every link is symmetric with inverse relationships,
        * no AS is isolated (everything should reach the core).
        """
        for asn, adj in self._adjacency.items():
            if not adj:
                raise ValueError(f"AS {asn} is isolated")
            for neighbor, rel in adj.items():
                mirror = self._adjacency[neighbor].get(asn)
                if mirror is not rel.inverse:
                    raise ValueError(
                        f"asymmetric link {asn}-{neighbor}: {rel} vs {mirror}"
                    )
