"""AS-level topology with business relationships.

BGP route propagation (and therefore anycast catchment formation) is
governed by the commercial relationships between autonomous systems:
customers buy transit from providers, and peers exchange their own and
their customers' routes settlement-free (Gao-Rexford).  This module
holds the graph; :mod:`repro.netsim.bgp` propagates routes over it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from ..util.geo import Location, haversine_km_vec


class Relationship(enum.Enum):
    """The relationship of a neighbor, from the perspective of one AS."""

    CUSTOMER = "customer"  # the neighbor pays us for transit
    PROVIDER = "provider"  # we pay the neighbor for transit
    PEER = "peer"          # settlement-free

    @property
    def inverse(self) -> "Relationship":
        """The same link seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


class AsRole(enum.Enum):
    """Coarse role tag, used by builders and reporting (not by BGP)."""

    TRANSIT = "transit"     # backbone / tier-1
    STUB = "stub"           # edge network hosting VPs or bots
    SITE_HOST = "site_host" # hosts an anycast site


@dataclass(frozen=True, slots=True)
class AsNode:
    """One autonomous system."""

    asn: int
    location: Location
    role: AsRole = AsRole.STUB
    name: str = ""

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASNs are positive integers: {self.asn}")


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark *array* read-only and return it (compiled views are shared)."""
    array.flags.writeable = False
    return array


def _edge_correspondence(
    fwd_indptr: np.ndarray,
    fwd_indices: np.ndarray,
    rev_indptr: np.ndarray,
    rev_indices: np.ndarray,
    n: int,
) -> np.ndarray:
    """For each reverse-CSR edge ``t -> p``, the absolute position of
    the mirrored forward-CSR edge ``p -> t``.

    Links are symmetric (``add_link`` records both directions), so the
    two edge sets pair off exactly; ordered-pair keys ``src * n + dst``
    are unique because at most one link joins two ASes.
    """
    if rev_indices.size == 0:
        return _frozen(np.zeros(0, dtype=np.int64))
    fwd_src = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(fwd_indptr)
    )
    fwd_key = fwd_src * n + fwd_indices.astype(np.int64)
    rev_src = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(rev_indptr)
    )
    mirror_key = rev_indices.astype(np.int64) * n + rev_src
    order = np.argsort(fwd_key, kind="stable")
    pos = np.searchsorted(fwd_key[order], mirror_key)
    return _frozen(order[pos])


#: Relationship -> int8 code used by :attr:`CompiledGraph.all_rel`.
_REL_CODES: dict[Relationship, int] = {
    Relationship.CUSTOMER: 0,
    Relationship.PROVIDER: 1,
    Relationship.PEER: 2,
}

#: Every ndarray field of :class:`CompiledGraph`, in declaration
#: order.  The shared-memory substrate layer (:mod:`repro.sweep.shm`)
#: exports exactly these arrays and rebuilds the view from attached
#: buffers via :meth:`CompiledGraph.from_arrays`; ``row_of`` is
#: deliberately absent -- it is derived from ``asn_of``.
_COMPILED_ARRAY_FIELDS = (
    "asn_of",
    "provider_indptr",
    "provider_indices",
    "peer_indptr",
    "peer_indices",
    "customer_indptr",
    "customer_indices",
    "all_indptr",
    "all_indices",
    "all_rel",
    "customer_edge_fwd",
    "provider_edge_fwd",
    "peer_edge_fwd",
    "_sorted_asns",
    "_sorted_rows",
)


@dataclass(frozen=True, slots=True)
class CompiledGraph:
    """An immutable CSR view of one :class:`ASGraph` structure version.

    Rows are ASes in graph insertion order (``asn_of[row]`` is the ASN,
    ``row_of[asn]`` the row).  For each business relationship there is
    one CSR adjacency: ``provider_indices[provider_indptr[i]:
    provider_indptr[i + 1]]`` are the rows of AS *i*'s transit
    providers, in the order the links were added -- the same order the
    scalar reference implementation visits them, which the array
    kernel's deterministic tie-breaking relies on.

    Obtained from :meth:`ASGraph.compiled`, which caches one instance
    per :attr:`ASGraph.version`; all arrays are read-only.
    """

    version: int
    asn_of: np.ndarray            # int64: row -> ASN
    row_of: dict[int, int]        # ASN -> row
    provider_indptr: np.ndarray   # int64, len n+1
    provider_indices: np.ndarray  # int32 rows
    peer_indptr: np.ndarray
    peer_indices: np.ndarray
    customer_indptr: np.ndarray
    customer_indices: np.ndarray
    #: Combined adjacency (all relationships, link-insertion order),
    #: with the relationship of each neighbor encoded per
    #: :data:`_REL_CODES`: 0 customer, 1 provider, 2 peer.
    all_indptr: np.ndarray
    all_indices: np.ndarray
    all_rel: np.ndarray           # int8 codes aligned to all_indices
    #: Reverse->forward edge correspondence, used by the delta
    #: propagation path (:func:`repro.netsim.bgp.propagate_delta`) to
    #: recover a candidate's adjacency offset in the *forward* CSR from
    #: a reverse-CSR traversal.  ``customer_edge_fwd[e]`` maps customer
    #: edge ``t -> p`` (at position *e* in ``customer_indices``) to the
    #: absolute position of ``t`` inside ``p``'s provider list;
    #: ``provider_edge_fwd`` is the inverse pairing, and
    #: ``peer_edge_fwd`` maps each peer edge to its mirror.
    customer_edge_fwd: np.ndarray  # int64 into provider_indices
    provider_edge_fwd: np.ndarray  # int64 into customer_indices
    peer_edge_fwd: np.ndarray      # int64 into peer_indices
    _sorted_asns: np.ndarray      # int64, ascending (for rows_of)
    _sorted_rows: np.ndarray      # int64, rows aligned to _sorted_asns

    @property
    def n_nodes(self) -> int:
        return int(self.asn_of.size)

    @classmethod
    def array_fields(cls) -> tuple[str, ...]:
        """Names of every ndarray field, in declaration order."""
        return _COMPILED_ARRAY_FIELDS

    @classmethod
    def from_arrays(
        cls, version: int, arrays: Mapping[str, np.ndarray]
    ) -> "CompiledGraph":
        """Rebuild a compiled view from its named arrays.

        The from-buffer constructor of the zero-copy sweep path: the
        arrays typically live in a ``multiprocessing.shared_memory``
        segment created by another process.  ``row_of`` is derived
        from ``asn_of`` (rows are insertion order by construction), so
        the only non-array state a caller must supply is *version*.
        Arrays that are not already read-only are frozen, preserving
        the invariant that compiled views are immutable.
        """
        missing = [
            name for name in _COMPILED_ARRAY_FIELDS if name not in arrays
        ]
        if missing:
            raise ValueError(
                f"CompiledGraph.from_arrays missing arrays: {missing}"
            )
        asn_of = arrays["asn_of"]
        row_of = {int(asn): row for row, asn in enumerate(asn_of)}
        fields: dict[str, np.ndarray] = {}
        for name in _COMPILED_ARRAY_FIELDS:
            array = arrays[name]
            if array.flags.writeable:
                array = _frozen(array)
            fields[name] = array
        return cls(version=version, row_of=row_of, **fields)

    def rows_of(self, asns: Iterable[int] | np.ndarray) -> np.ndarray:
        """Vectorized ASN -> row lookup; ``-1`` for unknown ASNs."""
        arr = np.asarray(asns, dtype=np.int64)
        if self._sorted_asns.size == 0:
            return np.full(arr.shape, -1, dtype=np.int64)
        pos = np.searchsorted(self._sorted_asns, arr)
        pos = np.clip(pos, 0, self._sorted_asns.size - 1)
        rows = self._sorted_rows[pos]
        return np.where(self.asn_of[rows] == arr, rows, -1)


@dataclass(slots=True)
class ASGraph:
    """A mutable AS-level topology.

    Adjacency is stored per node as ``{neighbor_asn: relationship}``
    where the relationship is expressed from the node's own viewpoint.
    """

    _nodes: dict[int, AsNode] = field(default_factory=dict)
    _adjacency: dict[int, dict[int, Relationship]] = field(default_factory=dict)
    #: Monotonic structure token: bumped on every node or link change,
    #: so derived data (coordinate arrays, tie-break distance memos)
    #: can key caches on it instead of object identity.
    _version: int = 0
    _coord_cache: (
        tuple[int, dict[int, int], np.ndarray, np.ndarray] | None
    ) = None
    _distance_cache: dict[int, np.ndarray] = field(default_factory=dict)
    _csr_cache: CompiledGraph | None = None

    @property
    def version(self) -> int:
        """Monotonic token identifying the current graph structure."""
        return self._version

    def add_as(self, node: AsNode) -> None:
        """Add an AS; re-adding an existing ASN is an error."""
        if node.asn in self._nodes:
            raise ValueError(f"AS {node.asn} already in graph")
        self._nodes[node.asn] = node
        self._adjacency[node.asn] = {}
        self._version += 1

    def add_link(self, asn: int, neighbor: int, rel: Relationship) -> None:
        """Add a link; *rel* is *neighbor*'s role as seen from *asn*.

        ``add_link(64500, 64501, Relationship.PROVIDER)`` means 64501
        provides transit to 64500.  The reverse direction is recorded
        automatically.
        """
        if asn == neighbor:
            raise ValueError("an AS cannot neighbor itself")
        for a in (asn, neighbor):
            if a not in self._nodes:
                raise KeyError(f"AS {a} not in graph")
        existing = self._adjacency[asn].get(neighbor)
        if existing is not None and existing is not rel:
            raise ValueError(
                f"link {asn}-{neighbor} already exists as {existing}"
            )
        self._adjacency[asn][neighbor] = rel
        self._adjacency[neighbor][asn] = rel.inverse
        self._version += 1

    def coordinate_arrays(
        self,
    ) -> tuple[dict[int, int], np.ndarray, np.ndarray]:
        """``(row_of_asn, lats, lons)`` over all ASes, cached.

        Row order is insertion order.  Nodes are append-only and their
        locations immutable, so the arrays depend only on the node
        *count* -- link-only structure changes keep the cache warm.
        """
        cache = self._coord_cache
        if cache is not None and cache[0] == len(self._nodes):
            return cache[1], cache[2], cache[3]
        row_of = {asn: i for i, asn in enumerate(self._nodes)}
        lats = np.array(
            [n.location.lat for n in self._nodes.values()],
            dtype=np.float64,
        )
        lons = np.array(
            [n.location.lon for n in self._nodes.values()],
            dtype=np.float64,
        )
        self._coord_cache = (len(self._nodes), row_of, lats, lons)
        return row_of, lats, lons

    def distance_row(
        self, cache_key: int, location: Location, scale: float
    ) -> np.ndarray:
        """Distances (km × *scale*) from *location* to every AS.

        Rows align with :meth:`coordinate_arrays`; memoized per origin
        *cache_key* (callers pass the origin ASN, which uniquely
        identifies ``(location, scale)``).  Nodes are append-only with
        immutable locations, so a row stays valid until the node count
        grows -- stale-length rows are recomputed on access, and
        link-only structure changes keep the memo warm.
        """
        n_nodes = len(self._nodes)
        row = self._distance_cache.get(cache_key)
        if row is None or row.shape[0] != n_nodes:
            _, lats, lons = self.coordinate_arrays()
            row = haversine_km_vec(
                lats, lons, location.lat, location.lon
            ) * scale
            self._distance_cache[cache_key] = row
        return row

    def distance_rows(
        self, specs: list[tuple[int, Location, float]]
    ) -> list[np.ndarray]:
        """Batched :meth:`distance_row`: one row per ``(cache_key,
        location, scale)`` spec.

        Rows already memoized (and still the right length) are served
        from the cache; all misses are computed in a single broadcast
        haversine call instead of one small vectorised call per origin
        -- with hundreds of origins per letter the per-call numpy
        overhead dominates the arithmetic.  Broadcasting evaluates the
        same elementwise operations in the same order as the per-row
        call, so the cached rows are bit-identical either way.
        """
        n_nodes = len(self._nodes)
        cache = self._distance_cache
        missing = [
            (key, location, scale)
            for key, location, scale in specs
            if (row := cache.get(key)) is None or row.shape[0] != n_nodes
        ]
        if missing:
            _, lats, lons = self.coordinate_arrays()
            origin_lats = np.array(
                [location.lat for _, location, _ in missing]
            )
            origin_lons = np.array(
                [location.lon for _, location, _ in missing]
            )
            matrix = haversine_km_vec(
                lats, lons, origin_lats[:, None], origin_lons[:, None]
            )
            for i, (key, _location, scale) in enumerate(missing):
                cache[key] = matrix[i] * scale
        return [cache[key] for key, _location, _scale in specs]

    def distance_memo(self) -> dict[int, np.ndarray]:
        """The per-origin distance rows valid for the *current* node
        set, keyed by origin cache key (ASN).

        Stale-length rows are excluded (they would be recomputed by
        the next :meth:`distance_row` call anyway).  Used by the
        zero-copy sweep layer to ship warm tie-break memos to workers.
        """
        n_nodes = len(self._nodes)
        return {
            key: row
            for key, row in self._distance_cache.items()
            if row.shape[0] == n_nodes
        }

    def compiled(self) -> CompiledGraph:
        """The immutable CSR view of the current structure (cached).

        One :class:`CompiledGraph` is built per :attr:`version` and
        reused across propagations; mutating the graph invalidates it.
        """
        cache = self._csr_cache
        if cache is not None and cache.version == self._version:
            return cache
        row_of = {asn: i for i, asn in enumerate(self._nodes)}
        n = len(row_of)
        counts = {
            rel: np.zeros(n + 1, dtype=np.int64) for rel in Relationship
        }
        columns: dict[Relationship, list[int]] = {
            rel: [] for rel in Relationship
        }
        all_counts = np.zeros(n + 1, dtype=np.int64)
        all_columns: list[int] = []
        all_rel: list[int] = []
        for i, asn in enumerate(self._nodes):
            for neighbor, rel in self._adjacency[asn].items():
                counts[rel][i + 1] += 1
                columns[rel].append(row_of[neighbor])
                all_counts[i + 1] += 1
                all_columns.append(row_of[neighbor])
                all_rel.append(_REL_CODES[rel])
        csr: dict[Relationship, tuple[np.ndarray, np.ndarray]] = {}
        for rel in Relationship:
            csr[rel] = (
                _frozen(np.cumsum(counts[rel])),
                _frozen(np.array(columns[rel], dtype=np.int32)),
            )
        asn_of = np.fromiter(self._nodes, dtype=np.int64, count=n)
        order = np.argsort(asn_of, kind="stable")
        provider_csr = csr[Relationship.PROVIDER]
        customer_csr = csr[Relationship.CUSTOMER]
        peer_csr = csr[Relationship.PEER]
        self._csr_cache = CompiledGraph(
            version=self._version,
            asn_of=_frozen(asn_of),
            row_of=row_of,
            provider_indptr=csr[Relationship.PROVIDER][0],
            provider_indices=csr[Relationship.PROVIDER][1],
            peer_indptr=csr[Relationship.PEER][0],
            peer_indices=csr[Relationship.PEER][1],
            customer_indptr=csr[Relationship.CUSTOMER][0],
            customer_indices=csr[Relationship.CUSTOMER][1],
            all_indptr=_frozen(np.cumsum(all_counts)),
            all_indices=_frozen(np.array(all_columns, dtype=np.int32)),
            all_rel=_frozen(np.array(all_rel, dtype=np.int8)),
            customer_edge_fwd=_edge_correspondence(
                provider_csr[0], provider_csr[1],
                customer_csr[0], customer_csr[1], n,
            ),
            provider_edge_fwd=_edge_correspondence(
                customer_csr[0], customer_csr[1],
                provider_csr[0], provider_csr[1], n,
            ),
            peer_edge_fwd=_edge_correspondence(
                peer_csr[0], peer_csr[1],
                peer_csr[0], peer_csr[1], n,
            ),
            _sorted_asns=_frozen(asn_of[order]),
            _sorted_rows=_frozen(order.astype(np.int64)),
        )
        return self._csr_cache

    def node(self, asn: int) -> AsNode:
        """Look up one AS by number."""
        try:
            return self._nodes[asn]
        except KeyError:
            raise KeyError(f"AS {asn} not in graph") from None

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def asns(self) -> list[int]:
        """All ASNs, in insertion order."""
        return list(self._nodes)

    def nodes(self) -> list[AsNode]:
        """All AS nodes, in insertion order."""
        return list(self._nodes.values())

    def neighbors(self, asn: int) -> dict[int, Relationship]:
        """Neighbors of *asn* with their relationship as seen from it."""
        if asn not in self._nodes:
            raise KeyError(f"AS {asn} not in graph")
        return dict(self._adjacency[asn])

    def neighbors_by_rel(self, asn: int, rel: Relationship) -> list[int]:
        """Neighbors of *asn* that play the given role for it."""
        if asn not in self._nodes:
            raise KeyError(f"AS {asn} not in graph")
        return [n for n, r in self._adjacency[asn].items() if r is rel]

    def providers(self, asn: int) -> list[int]:
        """ASes that provide transit to *asn*."""
        return self.neighbors_by_rel(asn, Relationship.PROVIDER)

    def customers(self, asn: int) -> list[int]:
        """ASes buying transit from *asn*."""
        return self.neighbors_by_rel(asn, Relationship.CUSTOMER)

    def peers(self, asn: int) -> list[int]:
        """Settlement-free peers of *asn*."""
        return self.neighbors_by_rel(asn, Relationship.PEER)

    def edge_count(self) -> int:
        """Number of undirected links."""
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def validate(self) -> None:
        """Check structural invariants; raises on violation.

        * every link is symmetric with inverse relationships,
        * no AS is isolated (everything should reach the core).
        """
        for asn, adj in self._adjacency.items():
            if not adj:
                raise ValueError(f"AS {asn} is isolated")
            for neighbor, rel in adj.items():
                mirror = self._adjacency[neighbor].get(asn)
                if mirror is not rel.inverse:
                    raise ValueError(
                        f"asymmetric link {asn}-{neighbor}: {rel} vs {mirror}"
                    )
