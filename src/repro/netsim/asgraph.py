"""AS-level topology with business relationships.

BGP route propagation (and therefore anycast catchment formation) is
governed by the commercial relationships between autonomous systems:
customers buy transit from providers, and peers exchange their own and
their customers' routes settlement-free (Gao-Rexford).  This module
holds the graph; :mod:`repro.netsim.bgp` propagates routes over it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..util.geo import Location


class Relationship(enum.Enum):
    """The relationship of a neighbor, from the perspective of one AS."""

    CUSTOMER = "customer"  # the neighbor pays us for transit
    PROVIDER = "provider"  # we pay the neighbor for transit
    PEER = "peer"          # settlement-free

    @property
    def inverse(self) -> "Relationship":
        """The same link seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


class AsRole(enum.Enum):
    """Coarse role tag, used by builders and reporting (not by BGP)."""

    TRANSIT = "transit"     # backbone / tier-1
    STUB = "stub"           # edge network hosting VPs or bots
    SITE_HOST = "site_host" # hosts an anycast site


@dataclass(frozen=True, slots=True)
class AsNode:
    """One autonomous system."""

    asn: int
    location: Location
    role: AsRole = AsRole.STUB
    name: str = ""

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASNs are positive integers: {self.asn}")


@dataclass(slots=True)
class ASGraph:
    """A mutable AS-level topology.

    Adjacency is stored per node as ``{neighbor_asn: relationship}``
    where the relationship is expressed from the node's own viewpoint.
    """

    _nodes: dict[int, AsNode] = field(default_factory=dict)
    _adjacency: dict[int, dict[int, Relationship]] = field(default_factory=dict)

    def add_as(self, node: AsNode) -> None:
        """Add an AS; re-adding an existing ASN is an error."""
        if node.asn in self._nodes:
            raise ValueError(f"AS {node.asn} already in graph")
        self._nodes[node.asn] = node
        self._adjacency[node.asn] = {}

    def add_link(self, asn: int, neighbor: int, rel: Relationship) -> None:
        """Add a link; *rel* is *neighbor*'s role as seen from *asn*.

        ``add_link(64500, 64501, Relationship.PROVIDER)`` means 64501
        provides transit to 64500.  The reverse direction is recorded
        automatically.
        """
        if asn == neighbor:
            raise ValueError("an AS cannot neighbor itself")
        for a in (asn, neighbor):
            if a not in self._nodes:
                raise KeyError(f"AS {a} not in graph")
        existing = self._adjacency[asn].get(neighbor)
        if existing is not None and existing is not rel:
            raise ValueError(
                f"link {asn}-{neighbor} already exists as {existing}"
            )
        self._adjacency[asn][neighbor] = rel
        self._adjacency[neighbor][asn] = rel.inverse

    def node(self, asn: int) -> AsNode:
        """Look up one AS by number."""
        try:
            return self._nodes[asn]
        except KeyError:
            raise KeyError(f"AS {asn} not in graph") from None

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def asns(self) -> list[int]:
        """All ASNs, in insertion order."""
        return list(self._nodes)

    def nodes(self) -> list[AsNode]:
        """All AS nodes, in insertion order."""
        return list(self._nodes.values())

    def neighbors(self, asn: int) -> dict[int, Relationship]:
        """Neighbors of *asn* with their relationship as seen from it."""
        if asn not in self._nodes:
            raise KeyError(f"AS {asn} not in graph")
        return dict(self._adjacency[asn])

    def neighbors_by_rel(self, asn: int, rel: Relationship) -> list[int]:
        """Neighbors of *asn* that play the given role for it."""
        if asn not in self._nodes:
            raise KeyError(f"AS {asn} not in graph")
        return [n for n, r in self._adjacency[asn].items() if r is rel]

    def providers(self, asn: int) -> list[int]:
        """ASes that provide transit to *asn*."""
        return self.neighbors_by_rel(asn, Relationship.PROVIDER)

    def customers(self, asn: int) -> list[int]:
        """ASes buying transit from *asn*."""
        return self.neighbors_by_rel(asn, Relationship.CUSTOMER)

    def peers(self, asn: int) -> list[int]:
        """Settlement-free peers of *asn*."""
        return self.neighbors_by_rel(asn, Relationship.PEER)

    def edge_count(self) -> int:
        """Number of undirected links."""
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def validate(self) -> None:
        """Check structural invariants; raises on violation.

        * every link is symmetric with inverse relationships,
        * no AS is isolated (everything should reach the core).
        """
        for asn, adj in self._adjacency.items():
            if not adj:
                raise ValueError(f"AS {asn} is isolated")
            for neighbor, rel in adj.items():
                mirror = self._adjacency[neighbor].get(asn)
                if mirror is not rel.inverse:
                    raise ValueError(
                        f"asymmetric link {asn}-{neighbor}: {rel} vs {mirror}"
                    )
