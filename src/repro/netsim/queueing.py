"""Site overload model: loss and latency as a function of offered load.

The paper observes two symptoms at stressed anycast sites:

* **loss** -- ingress queues overflow and legitimate queries are
  dropped (the "degraded absorber" of section 2.2);
* **latency** -- median RTT at K-AMS rose from ~30 ms to 1-2 s, which
  the authors attribute to an overloaded link combined with large
  router buffers ("industrial-scale bufferbloat", section 3.3.2).

We model a site's ingress as a single bottleneck server with service
rate equal to the site capacity (queries/s) and a large FIFO buffer:

* utilisation ``rho = offered / capacity``;
* below saturation, waiting time follows the M/M/1 mean
  ``service_ms * rho / (1 - rho)``, clamped by the buffer;
* at or past saturation the buffer is full: the queueing delay
  approaches the full buffer drain time and the loss fraction is the
  excess traffic, ``1 - 1/rho``.

The buffer drain time is expressed directly in milliseconds
(``buffer_ms``), the quantity Figure 7 exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Loss fraction the early-loss ramp reaches as rho approaches
#: saturation.  The saturated branch (``1 - 1/rho``) starts below this
#: value, so it is floored here to keep loss monotone in load.
EARLY_LOSS_MAX = 0.05


@dataclass(frozen=True, slots=True)
class OverloadModel:
    """Parameters of the bottleneck model.

    Parameters
    ----------
    service_ms:
        Mean per-query service time at low load, in milliseconds.
    buffer_ms:
        Drain time of a full ingress buffer: the latency ceiling under
        sustained overload (Fig. 7 shows ~1000-2000 ms).
    loss_knee:
        Utilisation at which random early loss starts (queues are
        finite even below full saturation).
    """

    service_ms: float = 0.5
    buffer_ms: float = 1800.0
    loss_knee: float = 0.95

    def __post_init__(self) -> None:
        if self.service_ms <= 0:
            raise ValueError("service_ms must be positive")
        if self.buffer_ms <= 0:
            raise ValueError("buffer_ms must be positive")
        if not 0.5 <= self.loss_knee <= 1.0:
            raise ValueError("loss_knee must be within [0.5, 1]")

    def utilisation(self, offered_qps: float, capacity_qps: float) -> float:
        """Offered load over capacity; infinite capacity gives 0."""
        if offered_qps < 0:
            raise ValueError("offered load cannot be negative")
        if capacity_qps <= 0:
            raise ValueError("capacity must be positive")
        return offered_qps / capacity_qps

    def loss_fraction(self, offered_qps: float, capacity_qps: float) -> float:
        """Fraction of arriving queries dropped at the ingress."""
        rho = self.utilisation(offered_qps, capacity_qps)
        return float(self._loss_from_rho(np.asarray(rho)))

    def queue_delay_ms(self, offered_qps: float, capacity_qps: float) -> float:
        """Extra round-trip delay contributed by queueing."""
        rho = self.utilisation(offered_qps, capacity_qps)
        return float(self._delay_from_rho(np.asarray(rho)))

    def evaluate(
        self, offered_qps: np.ndarray, capacity_qps: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised ``(utilisation, loss_fraction, queue_delay_ms)``."""
        offered = np.asarray(offered_qps, dtype=np.float64)
        capacity = np.asarray(capacity_qps, dtype=np.float64)
        if (offered < 0).any():
            raise ValueError("offered load cannot be negative")
        if (capacity <= 0).any():
            raise ValueError("capacity must be positive")
        rho = offered / capacity
        return rho, self._loss_from_rho(rho), self._delay_from_rho(rho)

    def _loss_from_rho(self, rho: np.ndarray) -> np.ndarray:
        """Loss fraction: early loss after the knee, 1 - 1/rho beyond."""
        rho = np.asarray(rho, dtype=np.float64)
        loss = np.zeros_like(rho)
        # Early-loss ramp between the knee and saturation.
        ramp = (rho > self.loss_knee) & (rho < 1.0)
        knee_width = 1.0 - self.loss_knee
        if knee_width > 0:
            # Quadratic onset from 0 at the knee to EARLY_LOSS_MAX at
            # saturation.
            frac = (rho[ramp] - self.loss_knee) / knee_width
            loss[ramp] = EARLY_LOSS_MAX * frac**2
        saturated = rho >= 1.0
        # The excess-traffic formula starts at 0 for rho -> 1+, below
        # where the ramp ends; floor it there so loss never *drops* as
        # load rises through saturation.
        loss[saturated] = np.maximum(
            1.0 - 1.0 / rho[saturated],
            EARLY_LOSS_MAX if knee_width > 0 else 0.0,
        )
        return np.clip(loss, 0.0, 1.0)

    def _delay_from_rho(self, rho: np.ndarray) -> np.ndarray:
        """Queueing delay: M/M/1 below the knee, buffer-bound above."""
        rho = np.asarray(rho, dtype=np.float64)
        delay = np.empty_like(rho)
        below = rho < self.loss_knee
        delay[below] = self.service_ms * rho[below] / (1.0 - rho[below])
        # Between knee and saturation: blend from the M/M/1 value at
        # the knee towards the full buffer.  With loss_knee == 1 the
        # ramp is empty and the knee delay is undefined (the M/M/1
        # pole), so it is only computed when a ramp exists.
        ramp = (rho >= self.loss_knee) & (rho < 1.0)
        knee_width = 1.0 - self.loss_knee
        if knee_width > 0:
            knee_delay = (
                self.service_ms * self.loss_knee / knee_width
            )
            frac = (rho[ramp] - self.loss_knee) / knee_width
            delay[ramp] = knee_delay + frac**2 * (
                0.5 * self.buffer_ms - knee_delay
            )
        saturated = rho >= 1.0
        # A saturated buffer stays full; the drain time grows towards
        # the ceiling with overload depth (deeper overload, fuller
        # buffer on average).
        delay[saturated] = self.buffer_ms * (
            1.0 - 0.5 / np.maximum(rho[saturated], 1.0)
        )
        return np.minimum(delay, self.buffer_ms)
