"""Path-vector route propagation with valley-free (Gao-Rexford) export.

Anycast catchments are the set of networks whose BGP best path leads to
a given site (paper section 2.1).  This module computes, for a set of
anycast origins announcing one prefix, the best route at every AS:

* routes learned from **customers** are exported to everyone;
* routes learned from **peers** or **providers** are exported only to
  customers;
* preference order is customer > peer > provider, then shortest AS
  path, then a deterministic tie-break (geographic proximity to the
  origin site, approximating hot-potato/IGP tie-breaks, then site id).

Sites announced with a **local** scope (the paper's NOPEER/NO_EXPORT
sites, Table 2) install their route only at the host AS and its direct
neighbors; the route is never re-exported, so the catchment stays in
the immediate neighborhood.

The propagation is a level-synchronous BFS run in three stages
(customer-learned "uphill", one peer hop, provider-learned "downhill").
:func:`propagate` is an array kernel over the graph's compiled CSR
view (:meth:`~repro.netsim.asgraph.ASGraph.compiled`): each stage
expands whole frontiers at once, selects per-AS winners with one
stable lexicographic sort, and stores best routes as parallel arrays.
AS paths live in an append-only record forest and are materialized
into :class:`Route` objects only when a caller asks for them.  The
kernel reproduces the scalar reference implementation
(:mod:`repro.netsim.bgp_reference`) bit for bit, including its
insertion-order-dependent tie-breaking; the property tests in
``tests/property/test_bgp_kernel.py`` pin that equivalence.
"""

from __future__ import annotations

import enum
import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from ..util.env import BGP_DELTA, env_flag
from ..util.geo import Location, haversine_km
from .asgraph import ASGraph, CompiledGraph

if TYPE_CHECKING:
    from .asgraph import AsNode  # noqa: F401  (doc cross-references)

#: Process-wide monotonic source of :attr:`RoutingTable.version` tokens.
#: Unlike ``id()``, a version is never reused after garbage collection,
#: so it is safe to key long-lived caches on it.
_TABLE_VERSIONS = itertools.count(1)

#: ``best_class`` sentinel for "no route"; larger than every real
#: :class:`RouteClass`, so lexicographic comparison needs no mask.
_UNREACHED = 127

#: Route class seen by a neighbor of a local-scope origin, indexed by
#: the origin's relationship code for that neighbor (see
#: ``asgraph._REL_CODES``): our provider (1) learns a customer route
#: (0), a peer (2) a peer route (1), our customer (0) a provider route
#: (2).
_EXPORT_CLASS = np.array([2, 0, 1], dtype=np.int8)


class Scope(enum.Enum):
    """Anycast announcement scope (paper's global vs local sites)."""

    GLOBAL = "global"
    LOCAL = "local"


class RouteClass(enum.IntEnum):
    """Preference class of a route; lower is better."""

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2


@dataclass(frozen=True, slots=True)
class Origin:
    """One anycast origin: a site announced from its host AS.

    *blocked_neighbors* models partial withdrawal: the origin stops
    exporting to those direct neighbors while still serving the rest.
    Under stress this is how a site sheds part of its catchment while
    remaining a degraded absorber for "stuck" networks (paper §3.4.2:
    some VPs stay pinned to an overloaded site while others shift).
    """

    site: str
    asn: int
    scope: Scope = Scope.GLOBAL
    location: Location | None = None
    blocked_neighbors: frozenset[int] = frozenset()
    #: Interconnection-richness discount applied to the geo tie-break
    #: distance (0 = none, 0.5 = distances count half).  Densely peered
    #: sites (K-AMS at AMS-IX) win ties over a wider radius than their
    #: location alone would suggest, without ever beating a zero-
    #: distance competitor.
    preference_discount: float = 0.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("origin site id must be non-empty")
        if not 0.0 <= self.preference_discount < 1.0:
            raise ValueError("preference_discount must be within [0, 1)")

    def with_blocked(self, blocked: frozenset[int]) -> "Origin":
        """A copy of this origin with a different blocked set."""
        return Origin(
            site=self.site,
            asn=self.asn,
            scope=self.scope,
            location=self.location,
            blocked_neighbors=blocked,
            preference_discount=self.preference_discount,
        )


@dataclass(frozen=True, slots=True)
class Route:
    """An AS's best route towards the anycast prefix.

    *path* lists the ASes the announcement traversed, origin first and
    the route holder last (so ``len(path)`` is the AS-path length).
    """

    site: str
    origin_asn: int
    path: tuple[int, ...]
    route_class: RouteClass
    tiebreak: float

    @property
    def path_len(self) -> int:
        """AS-path length (number of ASes, origin included)."""
        return len(self.path)

    def preference_key(self) -> tuple:
        """Lexicographic key; the smallest key wins."""
        return (
            int(self.route_class),
            self.path_len,
            self.tiebreak,
            self.site,
            self.origin_asn,
        )

    def better_than(self, other: "Route | None") -> bool:
        """Whether this route beats *other* in BGP preference."""
        if other is None:
            return True
        return self.preference_key() < other.preference_key()


@dataclass(frozen=True, slots=True)
class _LevelTrace:
    """One BFS level of a propagation run, as recorded for delta replay.

    ``frontier`` lists the rows installed at this level in frontier
    order (first-candidate-occurrence order); ``fresh`` marks rows
    installed for the first time (the ones that entered ``order``).
    For batched levels, ``first_pred``/``first_adj`` name the first
    candidate each frontier row saw: the predecessor row and its
    adjacency offset in the *forward* CSR -- together with the
    predecessor's frontier position this reconstructs the row's
    first-seen sort key without re-expanding the level.
    """

    stage: int                      # 0 seed, 1 customer, 2 peer, 3 provider, 4 local
    frontier: np.ndarray            # int64 rows, frontier order
    fresh: np.ndarray               # bool, aligned to frontier
    first_pred: np.ndarray | None   # int64 pred rows (None at the seed)
    first_adj: np.ndarray | None    # int64 adjacency offsets
    #: Values installed at this level, aligned to ``frontier``:
    #: (pathlen, tiebreak, site, origin, rec).  A row re-installed at a
    #: later level overwrites these in the final arrays, so the trace
    #: is the only place its transient mid-run route survives -- the
    #: delta replay needs it to reproduce what such a row exported
    #: between its installs.  ``None`` only on local-stage levels.
    inst: tuple[np.ndarray, ...] | None = None


@dataclass(frozen=True, slots=True)
class _PropTrace:
    """Level schedule of one propagation, for :func:`propagate_delta`.

    ``seed_installs`` keeps the raw seed install sequence *with*
    duplicates (an AS hosting two sites can install twice), so the
    delta path can spot rows whose during-run state differs from their
    final state and re-derive them instead of trusting the arrays.
    """

    origins: tuple[Origin, ...]
    graph_version: int
    seed_installs: tuple[int, ...]
    levels: tuple[_LevelTrace, ...]  # levels[0] is the seed frontier
    #: Snapshot of the best-route arrays *before* the local stage ran
    #: (class, pathlen, tiebreak, site, origin, rec), or ``None`` when
    #: no local origins exist (the final arrays already are the batched
    #: result).  Replays start from this snapshot and re-run the local
    #: stage outright, so local catchments never look like churn.
    pre_local: tuple[np.ndarray, ...] | None = None


@dataclass(frozen=True, slots=True)
class _TableArrays:
    """Array backing of one routing table (kernel output).

    Rows align with the compiled graph.  ``best_site`` holds indices
    into ``site_names`` (sorted, so index order equals the reference's
    lexicographic site comparison) with ``-1`` for "no route";
    ``best_class`` uses :data:`_UNREACHED` as its sentinel.  AS paths
    are chains in the append-only record forest: ``best_rec[row]``
    points at the last hop, ``rec_parent`` walks back to the origin
    (``-1`` terminates), and ``rec_row`` names the AS at each hop.
    ``order`` lists reached rows in first-install order -- the exact
    insertion order of the reference implementation's dict, which
    materialized dicts reproduce.
    """

    compiled: CompiledGraph
    site_names: tuple[str, ...]
    best_class: np.ndarray    # int8, _UNREACHED where no route
    best_pathlen: np.ndarray  # int16
    best_tiebreak: np.ndarray # float64
    best_site: np.ndarray     # int16 index into site_names, -1 none
    best_origin: np.ndarray   # int64 origin ASN
    best_rec: np.ndarray      # int64 index into the record forest
    rec_row: np.ndarray       # int32 AS row of each record
    rec_parent: np.ndarray    # int64 parent record, -1 at the origin
    order: np.ndarray         # int64 reached rows, first-install order
    #: Level schedule recorded during the run; lets
    #: :func:`propagate_delta` replay only the contested slice of each
    #: level.  ``None`` on tables the delta path cannot extend.
    trace: "_PropTrace | None" = None


class RoutingTable:
    """Best route per AS for one anycast prefix.

    Every table carries a process-unique, monotonic :attr:`version`
    token assigned at construction.  Cached tables (see
    :class:`~repro.netsim.anycast.AnycastPrefix`) keep their version
    across reuse, so ``version`` is the correct cache key for any
    derived data (catchment arrays, share vectors) -- unlike
    ``id(table)``, which can alias once a table is garbage collected.

    Tables come in two backings: the array kernel produces tables over
    :class:`_TableArrays` (``Route`` objects and the full dict are
    materialized lazily, only when asked), while the dict constructor
    remains for hand-built tables and the scalar reference.  All query
    methods behave identically on both.
    """

    def __init__(self, routes: dict[int, Route]) -> None:
        self._dict: dict[int, Route] | None = routes
        self._arrays: _TableArrays | None = None
        self._route_cache: dict[int, Route] = {}
        self.version = next(_TABLE_VERSIONS)

    @classmethod
    def _from_arrays(cls, arrays: _TableArrays) -> "RoutingTable":
        table = cls.__new__(cls)
        table._dict = None
        table._arrays = arrays
        table._route_cache = {}
        table.version = next(_TABLE_VERSIONS)
        return table

    # -- lazy materialization -----------------------------------------

    def _route_at(self, row: int) -> Route:
        """Materialize the :class:`Route` held at compiled-graph *row*."""
        arrays = self._arrays
        assert arrays is not None
        hops: list[int] = []
        rec = int(arrays.best_rec[row])
        while rec >= 0:
            hops.append(int(arrays.rec_row[rec]))
            rec = int(arrays.rec_parent[rec])
        asn_of = arrays.compiled.asn_of
        path = tuple(int(asn_of[r]) for r in reversed(hops))
        return Route(
            site=arrays.site_names[int(arrays.best_site[row])],
            origin_asn=int(arrays.best_origin[row]),
            path=path,
            route_class=RouteClass(int(arrays.best_class[row])),
            tiebreak=float(arrays.best_tiebreak[row]),
        )

    @property
    def _routes(self) -> dict[int, Route]:
        """The full ``asn -> Route`` dict, materialized on first use.

        Iteration order equals the reference implementation's install
        order, so dict-based fallbacks stay order-identical.
        """
        if self._dict is None:
            arrays = self._arrays
            assert arrays is not None
            asn_of = arrays.compiled.asn_of
            self._dict = {
                int(asn_of[row]): self._route_at(row)
                for row in arrays.order.tolist()
            }
        return self._dict

    # -- queries ------------------------------------------------------

    def route(self, asn: int) -> Route | None:
        """The best route of *asn*, or ``None`` if unreachable."""
        if self._dict is not None:
            return self._dict.get(asn)
        arrays = self._arrays
        assert arrays is not None
        row = arrays.compiled.row_of.get(asn)
        if row is None or arrays.best_class[row] == _UNREACHED:
            return None
        cached = self._route_cache.get(asn)
        if cached is None:
            cached = self._route_at(row)
            self._route_cache[asn] = cached
        return cached

    def site_of(self, asn: int) -> str | None:
        """The anycast site *asn*'s traffic reaches, or ``None``."""
        if self._dict is not None:
            route = self._dict.get(asn)
            return None if route is None else route.site
        arrays = self._arrays
        assert arrays is not None
        row = arrays.compiled.row_of.get(asn)
        if row is None or arrays.best_class[row] == _UNREACHED:
            return None
        return arrays.site_names[int(arrays.best_site[row])]

    def sites_of(
        self, asns: Iterable[int], site_index: Mapping[str, int]
    ) -> np.ndarray:
        """Vectorized catchment lookup over *asns*.

        Returns an ``int16`` array of site indices (per *site_index*),
        with ``-1`` for ASes holding no route.
        """
        arrays = self._arrays
        if arrays is None:
            return self._sites_of_dict(asns, site_index)
        asn_arr = np.asarray(asns, dtype=np.int64)
        out = np.full(asn_arr.size, -1, dtype=np.int16)
        rows = arrays.compiled.rows_of(asn_arr)
        valid = rows >= 0
        if not bool(valid.any()):
            return out
        # Translate kernel site indices into the caller's *site_index*;
        # the trailing -1 slot catches unreached rows (best_site == -1).
        trans = np.full(len(arrays.site_names) + 1, -1, dtype=np.int16)
        for i, name in enumerate(arrays.site_names):
            trans[i] = site_index.get(name, -2)
        picked = trans[arrays.best_site[rows[valid]]]
        if bool((picked == -2).any()):
            missing = sorted(
                name
                for name in arrays.site_names
                if name not in site_index
            )
            raise KeyError(missing[0])
        out[valid] = picked
        return out

    def _sites_of_dict(
        self, asns: Iterable[int], site_index: Mapping[str, int]
    ) -> np.ndarray:
        routes = self._routes
        asn_arr = np.asarray(asns, dtype=np.int64)
        out = np.full(asn_arr.size, -1, dtype=np.int16)
        get = routes.get
        for i, asn in enumerate(asn_arr.tolist()):
            route = get(asn)
            if route is not None:
                out[i] = site_index[route.site]
        return out

    def catchments(self) -> dict[str, set[int]]:
        """Site -> set of ASes routed to it."""
        result: dict[str, set[int]] = defaultdict(set)
        arrays = self._arrays
        if arrays is not None and self._dict is None:
            asn_of = arrays.compiled.asn_of
            best_site = arrays.best_site
            for row in arrays.order.tolist():
                site = arrays.site_names[int(best_site[row])]
                result[site].add(int(asn_of[row]))
            return dict(result)
        for asn, route in self._routes.items():
            result[route.site].add(asn)
        return dict(result)

    def reachable_asns(self) -> set[int]:
        """All ASes holding any route."""
        arrays = self._arrays
        if arrays is not None:
            rows = np.flatnonzero(arrays.best_class != _UNREACHED)
            return set(arrays.compiled.asn_of[rows].tolist())
        return set(self._routes)

    def changes_from(self, previous: "RoutingTable") -> set[int]:
        """ASes whose best route differs from *previous*.

        A change of site, of path, or gain/loss of reachability all
        counts -- this mirrors what a BGP collector peer sees as update
        activity (paper section 3.4.1).  Two array-backed tables over
        the same compiled graph compare without materializing a single
        ``Route``: the five best-route arrays are compared elementwise
        and only key-equal rows fall back to a vectorized walk of both
        record chains (equal keys imply equal path lengths, so the
        chains terminate in lockstep).
        """
        mine, theirs = self._arrays, previous._arrays
        if (
            mine is not None
            and theirs is not None
            and (
                mine.compiled is theirs.compiled
                or _rows_prefix_aligned(mine.compiled, theirs.compiled)
            )
        ):
            return self._changes_from_arrays(mine, theirs)
        changed: set[int] = set()
        prev = previous._routes
        for asn, route in self._routes.items():
            if prev.get(asn) != route:
                changed.add(asn)
        for asn in prev:
            if asn not in self._routes:
                changed.add(asn)
        return changed

    @staticmethod
    def _changes_from_arrays(
        mine: _TableArrays, theirs: _TableArrays
    ) -> set[int]:
        # The two tables may sit on different compiled views of an
        # append-only graph (the caller verified the shared row
        # prefix); rows past the shorter table exist on one side only
        # and count as changed wherever they hold a route.
        n = min(mine.best_class.shape[0], theirs.best_class.shape[0])
        reached_a = mine.best_class[:n] != _UNREACHED
        reached_b = theirs.best_class[:n] != _UNREACHED
        changed = reached_a != reached_b
        both = reached_a & reached_b
        if mine.site_names == theirs.site_names:
            their_site = theirs.best_site[:n]
        else:
            # Map the other table's site indices into this table's
            # space; -2 marks sites this table does not know (always a
            # difference) and the trailing slot keeps -1 (unreached).
            index = {name: i for i, name in enumerate(mine.site_names)}
            trans = np.full(
                len(theirs.site_names) + 1, -2, dtype=np.int16
            )
            trans[-1] = -1
            for j, name in enumerate(theirs.site_names):
                trans[j] = index.get(name, -2)
            their_site = trans[theirs.best_site[:n]]
        keydiff = (
            (mine.best_class[:n] != theirs.best_class[:n])
            | (mine.best_pathlen[:n] != theirs.best_pathlen[:n])
            | (mine.best_tiebreak[:n] != theirs.best_tiebreak[:n])
            | (mine.best_site[:n] != their_site)
            | (mine.best_origin[:n] != theirs.best_origin[:n])
        )
        changed |= both & keydiff
        changed_rows = [np.flatnonzero(changed)]
        if mine.best_class.shape[0] > n:
            changed_rows.append(
                n + np.flatnonzero(mine.best_class[n:] != _UNREACHED)
            )
        # Key-equal rows can still differ in the path interior; walk
        # both record chains level by level (same length: equal keys
        # imply equal path lengths).
        same = np.flatnonzero(both & ~keydiff)
        rec_a = mine.best_rec[same]
        rec_b = theirs.best_rec[same]
        while same.size:
            neq = mine.rec_row[rec_a] != theirs.rec_row[rec_b]
            if bool(neq.any()):
                changed_rows.append(same[neq])
                keep = ~neq
                same, rec_a, rec_b = same[keep], rec_a[keep], rec_b[keep]
                if not same.size:
                    break
            rec_a = mine.rec_parent[rec_a]
            rec_b = theirs.rec_parent[rec_b]
            alive = rec_a >= 0
            same, rec_a, rec_b = same[alive], rec_a[alive], rec_b[alive]
        rows = np.concatenate(changed_rows)
        result = set(mine.compiled.asn_of[rows].tolist())
        if theirs.best_class.shape[0] > n:
            extra = n + np.flatnonzero(
                theirs.best_class[n:] != _UNREACHED
            )
            result.update(theirs.compiled.asn_of[extra].tolist())
        return result

    def __len__(self) -> int:
        arrays = self._arrays
        if arrays is not None:
            return int((arrays.best_class != _UNREACHED).sum())
        return len(self._routes)


def _rows_prefix_aligned(a: CompiledGraph, b: CompiledGraph) -> bool:
    """Whether two compiled views share their leading row order.

    AS nodes are append-only, so two compilations of the *same* graph
    taken before and after it grew agree on every shared row -- their
    tables then compare elementwise over the common prefix instead of
    materializing Route dicts.  Checked against the actual asn rows
    (not assumed) so unrelated graphs never take the array path.
    """
    n = min(a.asn_of.shape[0], b.asn_of.shape[0])
    return bool(np.array_equal(a.asn_of[:n], b.asn_of[:n]))


def _geo_tiebreak(graph: ASGraph, asn: int, origin: Origin) -> float:
    """Effective distance from *asn* to the origin site (0 if unknown).

    The origin's richness discount shrinks its effective distance.
    Kept as the scalar definition of the tie-break; :func:`propagate`
    uses precomputed per-origin distance rows instead.
    """
    if origin.location is None:
        return 0.0
    distance = haversine_km(graph.node(asn).location, origin.location)
    return distance * (1.0 - origin.preference_discount)


class _Propagation:
    """Mutable state of one array-kernel propagation run.

    The kernel mirrors the scalar reference exactly, including every
    ordering the reference inherits from dict iteration: CSR adjacency
    preserves link-insertion order, per-level winners are chosen by a
    stable lexicographic sort (first candidate wins full-key ties, as
    Python's ``min`` does), level frontiers keep first-occurrence
    target order (``dict.items`` over the reference's candidate dict),
    and ``order`` records first-install order (the reference's best
    dict insertion order).
    """

    def __init__(
        self, graph: ASGraph, origins: list[Origin]
    ) -> None:
        self.compiled = graph.compiled()
        n = self.compiled.n_nodes
        self.site_names = tuple(sorted({o.site for o in origins}))
        site_idx = {s: i for i, s in enumerate(self.site_names)}
        self.site_idx = site_idx
        # Tie-break distances per site over all ASes.  Rows come from
        # the graph's per-version memo, so repeated propagations (and
        # the scalar reference) see bit-identical float64 values; sites
        # without a located origin tie-break at 0.0.  Duplicated site
        # ids resolve last-origin-wins, like the reference's dict.
        self.tie = np.zeros((len(self.site_names), n), dtype=np.float64)
        located = [o for o in origins if o.location is not None]
        if located:
            rows = graph.distance_rows(
                [
                    (o.asn, o.location, 1.0 - o.preference_discount)
                    for o in located
                ]
            )
            for origin, row in zip(located, rows):
                self.tie[site_idx[origin.site]] = row
        by_site = {o.site: o for o in origins}
        self.blocked: np.ndarray | None = None
        if any(o.blocked_neighbors for o in by_site.values()):
            blocked = np.zeros((len(self.site_names), n), dtype=bool)
            for site, origin in by_site.items():
                for neighbor in origin.blocked_neighbors:
                    row = self.compiled.row_of.get(neighbor)
                    if row is not None:
                        blocked[site_idx[site], row] = True
            self.blocked = blocked
        self.best_class = np.full(n, _UNREACHED, dtype=np.int8)
        self.best_pathlen = np.zeros(n, dtype=np.int16)
        self.best_tiebreak = np.zeros(n, dtype=np.float64)
        self.best_site = np.full(n, -1, dtype=np.int16)
        self.best_origin = np.zeros(n, dtype=np.int64)
        self.best_rec = np.full(n, -1, dtype=np.int64)
        self.rec_rows: list[np.ndarray] = []
        self.rec_parents: list[np.ndarray] = []
        self.pending_rows: list[int] = []
        self.pending_parents: list[int] = []
        self.rec_count = 0
        self.order_chunks: list[np.ndarray] = []
        self.trace_levels: list[_LevelTrace] = []

    def site_tb(self, site: int, rows: np.ndarray) -> np.ndarray:
        """Tie-break floats of *site* at *rows*."""
        result: np.ndarray = self.tie[site, rows]
        return result

    # -- record forest ------------------------------------------------

    def new_record(self, row: int, parent: int) -> int:
        """Append one path record and return its index.

        Scalar records buffer in Python lists; :meth:`_flush_pending`
        folds them into the chunked forest before any batched append,
        preserving creation order.
        """
        self.pending_rows.append(row)
        self.pending_parents.append(parent)
        rec = self.rec_count
        self.rec_count += 1
        return rec

    def _flush_pending(self) -> None:
        if self.pending_rows:
            self.rec_rows.append(
                np.array(self.pending_rows, dtype=np.int32)
            )
            self.rec_parents.append(
                np.array(self.pending_parents, dtype=np.int64)
            )
            self.pending_rows = []
            self.pending_parents = []

    # -- scalar offers (bootstrap and local origins) ------------------

    def scalar_beats(
        self, row: int, cls: int, plen: int, tb: float, site: int,
        origin_asn: int,
    ) -> bool:
        return (cls, plen, tb, site, origin_asn) < (
            int(self.best_class[row]),
            int(self.best_pathlen[row]),
            float(self.best_tiebreak[row]),
            int(self.best_site[row]),
            int(self.best_origin[row]),
        )

    def scalar_install(
        self, row: int, cls: int, plen: int, tb: float, site: int,
        origin_asn: int, parent: int,
    ) -> None:
        if self.best_class[row] == _UNREACHED:
            self.order_chunks.append(np.array([row], dtype=np.int64))
        self.best_class[row] = cls
        self.best_pathlen[row] = plen
        self.best_tiebreak[row] = tb
        self.best_site[row] = site
        self.best_origin[row] = origin_asn
        self.best_rec[row] = self.new_record(row, parent)

    # -- batched frontier machinery -----------------------------------

    def expand(
        self, indptr: np.ndarray, indices: np.ndarray,
        frontier: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (pred, target, adjacency-offset) edges out of *frontier*,
        in the exact order the reference visits them: frontier order
        outer, adjacency (link-insertion) order inner."""
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty
        preds = np.repeat(frontier, counts)
        starts = np.repeat(indptr[frontier], counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        targets = indices[starts + within].astype(np.int64)
        return preds, targets, within

    def vector_beats(
        self, rows: np.ndarray, cls: np.ndarray, plen: np.ndarray,
        tb: np.ndarray, site: np.ndarray, origin_asn: np.ndarray,
    ) -> np.ndarray:
        """Strict lexicographic preference vs the incumbents at *rows*."""
        b_cls = self.best_class[rows]
        b_plen = self.best_pathlen[rows]
        b_tb = self.best_tiebreak[rows]
        b_site = self.best_site[rows]
        b_origin = self.best_origin[rows]
        result: np.ndarray = (
            (cls < b_cls)
            | ((cls == b_cls) & (
                (plen < b_plen)
                | ((plen == b_plen) & (
                    (tb < b_tb)
                    | ((tb == b_tb) & (
                        (site < b_site)
                        | ((site == b_site) & (origin_asn < b_origin))
                    ))
                ))
            ))
        )
        return result

    def level(
        self, frontier: np.ndarray, indptr: np.ndarray,
        indices: np.ndarray, route_class: int, stage: int,
    ) -> np.ndarray:
        """Expand one BFS level and install winning offers.

        Returns the next frontier: newly installed rows, ordered by
        first candidate occurrence (the reference's ``dict.items``
        order over its per-level candidate map).
        """
        empty = np.zeros(0, dtype=np.int64)
        preds, targets, within = self.expand(indptr, indices, frontier)
        if targets.size == 0:
            return empty
        blocked = self.blocked
        if blocked is not None:
            # Partial withdrawal filters exports of the origin itself
            # (path length 1) only; longer routes re-export freely.
            at_origin = self.best_pathlen[preds] == 1
            if bool(at_origin.any()):
                keep = ~(
                    at_origin
                    & blocked[self.best_site[preds], targets]
                )
                preds, targets, within = (
                    preds[keep], targets[keep], within[keep]
                )
                if targets.size == 0:
                    return empty
        c_site = self.best_site[preds]
        c_origin = self.best_origin[preds]
        c_plen = (self.best_pathlen[preds] + 1).astype(np.int16)
        c_tb = self.tie[c_site, targets]
        # Parents are gathered before this level's installs, so a path
        # snapshot taken through a pred that improves later in the
        # stage stays stale -- exactly like the reference's captured
        # Route objects.
        c_parent = self.best_rec[preds]
        rank = np.lexsort((c_origin, c_site, c_tb, c_plen, targets))
        sorted_targets = targets[rank]
        lead = np.ones(sorted_targets.size, dtype=bool)
        lead[1:] = sorted_targets[1:] != sorted_targets[:-1]
        winners = rank[lead]  # stable min per target, targets ascending
        occurrence = np.argsort(targets, kind="stable")
        occ_targets = targets[occurrence]
        occ_lead = np.ones(occ_targets.size, dtype=bool)
        occ_lead[1:] = occ_targets[1:] != occ_targets[:-1]
        first_seen = occurrence[occ_lead]
        frontier_rank = np.argsort(first_seen, kind="stable")
        winners = winners[frontier_rank]
        first_seen = first_seen[frontier_rank]
        w_targets = targets[winners]
        cls = np.full(w_targets.size, route_class, dtype=np.int8)
        beats = self.vector_beats(
            w_targets, cls, c_plen[winners], c_tb[winners],
            c_site[winners], c_origin[winners],
        )
        winners, w_targets = winners[beats], w_targets[beats]
        first_seen = first_seen[beats]
        if w_targets.size == 0:
            return empty
        fresh = self.install_rows(
            w_targets,
            np.full(w_targets.size, route_class, dtype=np.int8),
            c_plen[winners],
            c_tb[winners],
            c_site[winners],
            c_origin[winners],
            c_parent[winners],
        )
        self.trace_levels.append(
            _LevelTrace(
                stage=stage,
                frontier=w_targets,
                fresh=fresh,
                first_pred=preds[first_seen],
                first_adj=within[first_seen],
                inst=(
                    c_plen[winners],
                    c_tb[winners],
                    c_site[winners],
                    c_origin[winners],
                    self.best_rec[w_targets].copy(),
                ),
            )
        )
        return w_targets

    def install_rows(
        self, rows: np.ndarray, cls: np.ndarray, plen: np.ndarray,
        tb: np.ndarray, site: np.ndarray, origin_asn: np.ndarray,
        parents: np.ndarray,
    ) -> np.ndarray:
        """Install winning offers at distinct *rows* in one batch.

        Returns the fresh mask (rows reached for the first time).
        """
        fresh = self.best_class[rows] == _UNREACHED
        if bool(fresh.any()):
            self.order_chunks.append(rows[fresh])
        self.best_class[rows] = cls
        self.best_pathlen[rows] = plen
        self.best_tiebreak[rows] = tb
        self.best_site[rows] = site
        self.best_origin[rows] = origin_asn
        self._flush_pending()
        recs = np.arange(
            self.rec_count, self.rec_count + rows.size, dtype=np.int64
        )
        self.rec_count += rows.size
        self.rec_rows.append(rows.astype(np.int32))
        self.rec_parents.append(parents.astype(np.int64))
        self.best_rec[rows] = recs
        return fresh

    def reached_in_order(self) -> np.ndarray:
        """All reached rows so far, in first-install order."""
        if not self.order_chunks:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self.order_chunks)

    def finish(self, trace: _PropTrace | None = None) -> _TableArrays:
        self._flush_pending()
        if self.rec_rows:
            rec_row = np.concatenate(self.rec_rows)
            rec_parent = np.concatenate(self.rec_parents)
        else:
            rec_row = np.zeros(0, dtype=np.int32)
            rec_parent = np.zeros(0, dtype=np.int64)
        for array in (
            self.best_class, self.best_pathlen, self.best_tiebreak,
            self.best_site, self.best_origin, self.best_rec,
            rec_row, rec_parent,
        ):
            array.flags.writeable = False
        return _TableArrays(
            compiled=self.compiled,
            site_names=self.site_names,
            best_class=self.best_class,
            best_pathlen=self.best_pathlen,
            best_tiebreak=self.best_tiebreak,
            best_site=self.best_site,
            best_origin=self.best_origin,
            best_rec=self.best_rec,
            rec_row=rec_row,
            rec_parent=rec_parent,
            order=self.reached_in_order(),
            trace=trace,
        )


def compiled_graph_from_buffers(
    version: int, arrays: Mapping[str, np.ndarray]
) -> CompiledGraph:
    """Rebuild a :class:`CompiledGraph` from named array buffers.

    The from-buffer constructor used by the zero-copy sweep substrate
    layer (:mod:`repro.sweep.shm`): *arrays* are typically read-only
    views over a ``multiprocessing.shared_memory`` segment exported by
    the sweep parent, one entry per
    :meth:`CompiledGraph.array_fields` name.  ``row_of`` is derived
    from ``asn_of``; the result is indistinguishable from the view
    :meth:`ASGraph.compiled` would build for the same structure
    version, so every kernel in this module runs on it unchanged.
    """
    return CompiledGraph.from_arrays(version, arrays)


def propagate(graph: ASGraph, origins: list[Origin]) -> RoutingTable:
    """Compute best routes at every AS for one anycast prefix.

    Withdrawn sites are simply omitted from *origins*.  This is the
    array kernel; it is bit-identical to
    :func:`repro.netsim.bgp_reference.propagate` (same winners, same
    tie-breaks, same table iteration order).
    """
    for origin in origins:
        if origin.asn not in graph:
            raise KeyError(f"origin AS {origin.asn} not in graph")

    state = _Propagation(graph, origins)
    compiled = state.compiled
    site_idx = state.site_idx
    global_origins = [o for o in origins if o.scope is Scope.GLOBAL]
    local_origins = [o for o in origins if o.scope is Scope.LOCAL]

    # --- Stage 1: customer-learned routes climb provider edges. -------
    # Origins offer sequentially; with duplicated origin ASes a later,
    # lexicographically smaller offer supersedes the earlier one, and
    # the reference expands the survivor at the *later* offer's
    # frontier position.
    winning: list[int] = []
    for origin in global_origins:
        row = compiled.row_of[origin.asn]
        site = site_idx[origin.site]
        if state.scalar_beats(row, 0, 1, 0.0, site, origin.asn):
            state.scalar_install(
                row, 0, 1, 0.0, site, origin.asn, parent=-1
            )
            winning.append(row)
    last_win = {row: i for i, row in enumerate(winning)}
    frontier = np.array(
        [row for i, row in enumerate(winning) if last_win[row] == i],
        dtype=np.int64,
    )
    seed_installs = tuple(winning)
    state.trace_levels.append(
        _LevelTrace(
            stage=0,
            frontier=frontier,
            fresh=np.ones(frontier.size, dtype=bool),
            first_pred=None,
            first_adj=None,
            inst=_gather_inst(state, frontier),
        )
    )
    while frontier.size:
        frontier = state.level(
            frontier,
            compiled.provider_indptr,
            compiled.provider_indices,
            int(RouteClass.CUSTOMER),
            stage=1,
        )

    # --- Stage 2: one peer hop from every customer-routed AS. ---------
    # Every route installed so far is customer-learned, and peer offers
    # can only win at so-far-unreached ASes, so one batched level with
    # the reference's source order (install order) is exact.
    state.level(
        state.reached_in_order(),
        compiled.peer_indptr,
        compiled.peer_indices,
        int(RouteClass.PEER),
        stage=2,
    )

    # --- Stage 3: everything rolls downhill to customers. -------------
    frontier = state.reached_in_order()
    while frontier.size:
        frontier = state.level(
            frontier,
            compiled.customer_indptr,
            compiled.customer_indices,
            int(RouteClass.PROVIDER),
            stage=3,
        )

    # --- Local sites: host AS and direct neighbors only. --------------
    pre_local = _snapshot_pre_local(state, local_origins)
    _local_stage(state, local_origins)

    trace = _PropTrace(
        origins=tuple(origins),
        graph_version=compiled.version,
        seed_installs=seed_installs,
        levels=tuple(state.trace_levels),
        pre_local=pre_local,
    )
    return RoutingTable._from_arrays(state.finish(trace))


def _gather_inst(
    state: "_Propagation", frontier: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Record the values just installed at *frontier* for the trace."""
    return (
        state.best_pathlen[frontier].copy(),
        state.best_tiebreak[frontier].copy(),
        state.best_site[frontier].copy(),
        state.best_origin[frontier].copy(),
        state.best_rec[frontier].copy(),
    )


def _snapshot_pre_local(
    state: "_Propagation", local_origins: list[Origin]
) -> tuple[np.ndarray, ...] | None:
    """Copy the batched-stage arrays before the local stage mutates them.

    ``None`` when there are no local origins: the final arrays then
    equal the batched result and the trace needs no separate snapshot.
    """
    if not local_origins:
        return None
    return (
        state.best_class.copy(),
        state.best_pathlen.copy(),
        state.best_tiebreak.copy(),
        state.best_site.copy(),
        state.best_origin.copy(),
        state.best_rec.copy(),
    )


def _local_stage(
    state: _Propagation, local_origins: list[Origin]
) -> None:
    """Install local-scope (NO_EXPORT) sites: host AS plus neighbors.

    One batched offer per origin: the neighbors are distinct targets
    in adjacency order, so a vectorized compare equals the
    reference's sequential offers (origins still go one at a time,
    since a later origin competes against an earlier one's installs).
    Shared between the full kernel and the delta replay, which runs it
    on the repaired pre-local arrays.
    """
    compiled = state.compiled
    site_idx = state.site_idx
    install_chunks: list[np.ndarray] = []
    fresh_chunks: list[np.ndarray] = []
    for origin in local_origins:
        row = compiled.row_of[origin.asn]
        site = site_idx[origin.site]
        if state.scalar_beats(row, 0, 1, 0.0, site, origin.asn):
            fresh_chunks.append(
                np.array(
                    [state.best_class[row] == _UNREACHED], dtype=bool
                )
            )
            install_chunks.append(np.array([row], dtype=np.int64))
            state.scalar_install(
                row, 0, 1, 0.0, site, origin.asn, parent=-1
            )
        start, end = (
            int(compiled.all_indptr[row]),
            int(compiled.all_indptr[row + 1]),
        )
        targets = compiled.all_indices[start:end].astype(np.int64)
        rels = compiled.all_rel[start:end]
        if origin.blocked_neighbors:
            keep = ~np.isin(
                compiled.asn_of[targets],
                np.array(sorted(origin.blocked_neighbors), dtype=np.int64),
            )
            targets, rels = targets[keep], rels[keep]
        if targets.size == 0:
            continue
        # The neighbor learned the route from the inverse side: our
        # provider sees a customer route, our customer a provider one.
        cls = _EXPORT_CLASS[rels]
        plen = np.full(targets.size, 2, dtype=np.int16)
        tb = state.site_tb(site, targets)
        site_arr = np.full(targets.size, site, dtype=np.int16)
        origin_arr = np.full(targets.size, origin.asn, dtype=np.int64)
        beats = state.vector_beats(
            targets, cls, plen, tb, site_arr, origin_arr
        )
        if not bool(beats.any()):
            continue
        # Path root (origin.asn,) independent of whatever route the
        # origin AS itself currently holds.
        base_rec = state.new_record(row, parent=-1)
        parents = np.full(int(beats.sum()), base_rec, dtype=np.int64)
        fresh = state.install_rows(
            targets[beats], cls[beats], plen[beats], tb[beats],
            site_arr[beats], origin_arr[beats], parents,
        )
        install_chunks.append(targets[beats])
        fresh_chunks.append(fresh)
    if install_chunks:
        state.trace_levels.append(
            _LevelTrace(
                stage=4,
                frontier=np.concatenate(install_chunks),
                fresh=np.concatenate(fresh_chunks),
                first_pred=None,
                first_adj=None,
            )
        )


#: Delta-path instrumentation, for tests and benchmarks: how many
#: :func:`propagate_delta` calls took the replay path vs fell back to
#: full propagation, and how many levels were copied wholesale vs
#: sparsely re-contested.
DELTA_STATS: dict[str, int] = {
    "delta": 0,
    "fallback": 0,
    "ripple_bailouts": 0,
    "levels_copied": 0,
    "levels_replayed": 0,
}


def delta_enabled() -> bool:
    """Whether callers may derive tables via :func:`propagate_delta`.

    ``REPRO_BGP_DELTA=0`` is the escape hatch that forces every
    consumer (:class:`~repro.netsim.anycast.AnycastPrefix`, sweep
    memoization) back to full propagation.  Read per call so tests can
    flip it with ``monkeypatch.setenv``.  The delta path is
    bit-identical either way; the knob exists to isolate it when
    debugging.
    """
    return env_flag(BGP_DELTA, default=True)

#: Record-forest growth bound (multiple of node count) beyond which a
#: chained delta falls back to full propagation instead of appending to
#: an ever-growing forest.
_FOREST_LIMIT_FACTOR = 4


class _RippleTooLarge(Exception):
    """Raised mid-replay when the changed set grows past the point
    where a sparse repair can beat full propagation."""


def _inversion_offenders(seq: np.ndarray) -> np.ndarray:
    """Mask of rows hitting every inversion pair of *seq*.

    For any pair ``i < j`` with ``seq[i] > seq[j]``, the left member
    exceeds the running minimum from the right and the right member
    undercuts the running maximum from the left -- so both masks are
    hitting sets of all inversions; return the smaller one.
    """
    down = seq < np.maximum.accumulate(seq)
    up = seq > np.minimum.accumulate(seq[::-1])[::-1]
    return down if int(down.sum()) <= int(up.sum()) else up


class _DeltaReplay(_Propagation):
    """Sparse replay of a propagation against a previous run's trace.

    Starts from writable copies of the previous table's best-route
    arrays (site indices translated into the new site namespace) and
    replays the recorded level schedule: levels whose frontier contains
    no changed, removed, or export-filtered predecessor are copied from
    the trace wholesale; everything else re-contests only the affected
    targets, gathering each target's *full* candidate set through the
    reverse CSR so winners and first-seen tie-break keys are exactly
    the ones the full kernel would compute.

    Masked incumbents keep old state from leaking into the future: a
    row's copied value is only readable once the replay passes the
    level the previous run installed it at (``old_gid``), or once the
    replay itself wrote the row (``overridden``).  Rows installed more
    than once in the previous run (``superseded``) have during-run
    states that the final arrays cannot reproduce, so they are reset
    up front and re-derived like any changed row.
    """

    # pylint: disable=super-init-not-called
    def __init__(
        self,
        graph: ASGraph,
        old: _TableArrays,
        origins: list[Origin],
    ) -> None:
        trace = old.trace
        assert trace is not None
        self.graph = graph
        self.compiled = old.compiled
        n = self.compiled.n_nodes
        self.site_names = tuple(sorted({o.site for o in origins}))
        self.site_idx = {s: i for i, s in enumerate(self.site_names)}
        self.origins = origins
        self.old = old
        self.old_trace = trace
        # Working copies of the previous *batched* best-route arrays --
        # the pre-local snapshot when the previous run had local
        # origins, the final arrays otherwise.  Starting before the
        # local stage means local catchments carry no stale state; the
        # local stage is simply re-run at the end.  Site indices are
        # translated into the new (sorted) namespace, which is
        # order-preserving on surviving sites.  Withdrawn sites map to
        # -3: their rows are re-contested before any masked read could
        # surface the stale index.
        src = trace.pre_local
        if src is None:
            src = (
                old.best_class, old.best_pathlen, old.best_tiebreak,
                old.best_site, old.best_origin, old.best_rec,
            )
        self.best_class = src[0].copy()
        self.best_pathlen = src[1].copy()
        self.best_tiebreak = src[2].copy()
        self.best_origin = src[4].copy()
        self.best_rec = src[5].copy()
        trans = np.full(len(old.site_names) + 1, -3, dtype=np.int16)
        trans[-1] = -1
        for j, name in enumerate(old.site_names):
            trans[j] = self.site_idx.get(name, -3)
        self.site_trans = trans
        self.same_sites = tuple(old.site_names) == self.site_names
        # Pristine reference copy of the previous batched result, for
        # unchanged-detection and ripple healing (a changed row that
        # re-installs its old value stops rippling).
        self.ref_class = src[0]
        self.ref_plen = src[1]
        self.ref_tb = src[2]
        # With an unchanged site set the (sorted) namespaces coincide
        # and the translation is the identity on every stored index.
        self.ref_site = src[3] if self.same_sites else trans[src[3]]
        self.ref_origin = src[4]
        self.ref_rec = src[5]
        self.best_site = self.ref_site.copy()
        # The previous forest is the shared prefix; new records append.
        self.rec_rows = [np.asarray(old.rec_row)]
        self.rec_parents = [np.asarray(old.rec_parent)]
        self.pending_rows = []
        self.pending_parents = []
        self.rec_count = int(old.rec_row.size)
        self.order_chunks = []
        self.trace_levels = []
        self._seed_installs: tuple[int, ...] = ()
        by_site = {o.site: o for o in origins}
        self._by_site = by_site
        self._tie_rows: dict[int, np.ndarray] = {}
        self._zero_tb: np.ndarray | None = None
        self.blocked = None
        if any(o.blocked_neighbors for o in by_site.values()):
            blocked = np.zeros((len(self.site_names), n), dtype=bool)
            for site, origin in by_site.items():
                for neighbor in origin.blocked_neighbors:
                    row = self.compiled.row_of.get(neighbor)
                    if row is not None:
                        blocked[self.site_idx[site], row] = True
            self.blocked = blocked
        # Previous-run install bookkeeping: the level (trace index) of
        # each row's first and final *batched* install, and which rows
        # were installed more than once during the batched stages (the
        # provider stage mixes path depths, so re-installs are routine;
        # seed duplicates also count).  Local-stage installs are
        # excluded on purpose -- replays start from the pre-local
        # snapshot, so the local stage never counts as churn.
        maxgid = np.iinfo(np.int64).max
        self.old_gid = np.full(n, maxgid, dtype=np.int64)
        self.first_gid = np.full(n, maxgid, dtype=np.int64)
        batched = [
            (gid, lvl)
            for gid, lvl in enumerate(trace.levels)
            if lvl.stage != 4
        ]
        ev_rows = np.concatenate([lvl.frontier for _, lvl in batched])
        ev_gids = np.concatenate([
            np.full(lvl.frontier.size, gid, dtype=np.int64)
            for gid, lvl in batched
        ])
        self.old_gid[ev_rows] = ev_gids
        # Events are level-ordered, so slicing off the seed level's
        # frontier (gid 0) beats building a gid mask.
        seed_size = batched[0][1].frontier.size if batched else 0
        counts = np.bincount(ev_rows[seed_size:], minlength=n)
        if trace.seed_installs:
            counts += np.bincount(
                np.array(trace.seed_installs, dtype=np.int64),
                minlength=n,
            )
        self.superseded = counts >= 2
        self.multi4 = counts >= 4
        # Shadow install values for superseded rows: between installs
        # such a row held (and exported) a transient route the final
        # arrays no longer show.  The trace's per-level install records
        # resurrect the first two; rows with three or more transients
        # (four or more installs) bail to the full kernel when touched
        # mid-flight.
        # Shadow state is stored compactly: ``shadow_idx`` maps a
        # superseded row to its slot in the per-slot arrays below, so
        # only one full-size array is paid per replay regardless of
        # how many value fields the two shadow sets carry.
        sup_rows = np.flatnonzero(self.superseded)
        n_sup = sup_rows.size
        self.shadow_idx = np.full(n, -1, dtype=np.int64)
        self.shadow_idx[sup_rows] = np.arange(n_sup, dtype=np.int64)
        self.second_gid = np.full(n_sup, maxgid, dtype=np.int64)
        self.shadow_class = np.full(n_sup, _UNREACHED, dtype=np.int8)
        self.shadow_plen = np.zeros(n_sup, dtype=np.int16)
        self.shadow_tb = np.zeros(n_sup, dtype=np.float64)
        self.shadow_site = np.full(n_sup, -1, dtype=np.int16)
        self.shadow_origin = np.zeros(n_sup, dtype=np.int64)
        self.shadow_rec = np.full(n_sup, -1, dtype=np.int64)
        self.shadow2_class = np.full(n_sup, _UNREACHED, dtype=np.int8)
        self.shadow2_plen = np.zeros(n_sup, dtype=np.int16)
        self.shadow2_tb = np.zeros(n_sup, dtype=np.float64)
        self.shadow2_site = np.full(n_sup, -1, dtype=np.int16)
        self.shadow2_origin = np.zeros(n_sup, dtype=np.int64)
        self.shadow2_rec = np.full(n_sup, -1, dtype=np.int64)
        stage_class = np.array([0, 0, 1, 2], dtype=np.int8)
        if n_sup:
            r_parts: list[np.ndarray] = []
            g_parts: list[np.ndarray] = []
            c_parts: list[np.ndarray] = []
            v_parts: list[list[np.ndarray]] = [[] for _ in range(5)]
            for gid, lvl in batched:
                idx_l = np.flatnonzero(self.superseded[lvl.frontier])
                if idx_l.size == 0:
                    continue
                assert lvl.inst is not None
                r_parts.append(lvl.frontier[idx_l])
                g_parts.append(np.full(
                    idx_l.size, gid, dtype=np.int64
                ))
                c_parts.append(np.full(
                    idx_l.size, stage_class[lvl.stage],
                    dtype=np.int8,
                ))
                for k in range(5):
                    v_parts[k].append(lvl.inst[k][idx_l])
            s_rows = np.concatenate(r_parts)
            s_gids = np.concatenate(g_parts)
            s_cls = np.concatenate(c_parts)
            s_inst = [np.concatenate(p) for p in v_parts]
            s_idx = self.shadow_idx[s_rows]
            # Events arrive in increasing-gid order, so a reversed
            # scatter leaves each row's *earliest* event in place;
            # a second reversed scatter over the not-first events
            # leaves each row's second one.
            rev = np.s_[::-1]
            r = s_rows[rev]
            ri = s_idx[rev]
            self.first_gid[r] = s_gids[rev]
            self.shadow_class[ri] = s_cls[rev]
            self.shadow_plen[ri] = s_inst[0][rev]
            self.shadow_tb[ri] = s_inst[1][rev]
            self.shadow_site[ri] = trans[s_inst[2][rev]]
            self.shadow_origin[ri] = s_inst[3][rev]
            self.shadow_rec[ri] = s_inst[4][rev]
            m2 = s_gids > self.first_gid[s_rows]
            ri2 = s_idx[m2][rev]
            self.second_gid[ri2] = s_gids[m2][rev]
            self.shadow2_class[ri2] = s_cls[m2][rev]
            self.shadow2_plen[ri2] = s_inst[0][m2][rev]
            self.shadow2_tb[ri2] = s_inst[1][m2][rev]
            self.shadow2_site[ri2] = trans[s_inst[2][m2][rev]]
            self.shadow2_origin[ri2] = s_inst[3][m2][rev]
            self.shadow2_rec[ri2] = s_inst[4][m2][rev]
        self.old_levels: dict[int, list[int]] = {1: [], 2: [], 3: [], 4: []}
        for gid, level in enumerate(trace.levels):
            if level.stage > 0:
                self.old_levels[level.stage].append(gid)
        total = len(trace.levels)
        self.end_gid: dict[int, int] = {}
        for stage in (1, 2, 3, 4):
            later = [
                gid
                for next_stage in range(stage + 1, 5)
                for gid in self.old_levels[next_stage]
            ]
            self.end_gid[stage] = later[0] if later else total
        self.overridden = np.zeros(n, dtype=bool)
        self.changed = np.zeros(n, dtype=bool)
        self._changed_cache: np.ndarray | None = None
        # Past this many changed rows, sparse repair costs more than
        # the full kernel; bail out and let the caller fall back.
        self.ripple_limit = max(256, n // 8)
        self.export_changed = np.zeros(n, dtype=bool)
        self.frontier_pos = np.full(n, -1, dtype=np.int64)
        self._posed = np.zeros(0, dtype=np.int64)
        # Origins whose blocked set changed export differently even
        # when their own install is identical: treat their rows as
        # changed predecessors wherever they hold their own site's
        # path-length-1 route.
        old_by_site = {o.site: o for o in trace.origins}
        for site, origin in by_site.items():
            before = old_by_site.get(site)
            if (
                before is None
                or before.blocked_neighbors == origin.blocked_neighbors
            ):
                continue
            row = self.compiled.row_of[origin.asn]
            if (
                not self.overridden[row]
                and int(self.best_pathlen[row]) == 1
                and int(self.best_site[row]) == self.site_idx[site]
            ):
                self.export_changed[row] = True

    def site_tb(self, site: int, rows: np.ndarray) -> np.ndarray:
        result: np.ndarray = self._tie_row(site)[rows]
        return result

    def _tie_row(self, site: int) -> np.ndarray:
        row = self._tie_rows.get(site)
        if row is None:
            origin = self._by_site[self.site_names[site]]
            if origin.location is None:
                if self._zero_tb is None:
                    self._zero_tb = np.zeros(
                        self.compiled.n_nodes, dtype=np.float64
                    )
                row = self._zero_tb
            else:
                row = self.graph.distance_row(
                    origin.asn,
                    origin.location,
                    1.0 - origin.preference_discount,
                )
            self._tie_rows[site] = row
        return row

    def _tb_of(self, sites: np.ndarray, rows: np.ndarray) -> np.ndarray:
        out = np.zeros(rows.size, dtype=np.float64)
        for site in np.unique(sites).tolist():
            mask = sites == site
            out[mask] = self._tie_row(int(site))[rows[mask]]
        return out

    def _transient(
        self, rows: np.ndarray, cur_gid: int
    ) -> tuple[np.ndarray, ...]:
        """Mid-flight shadow values of *rows* as of level *cur_gid*.

        A superseded row between installs holds its first transient
        until its second install completes, then the second until the
        final one lands; ``second_gid`` picks the right shadow set.
        """
        idx = self.shadow_idx[rows]
        use2 = self.second_gid[idx] < cur_gid
        if not bool(use2.any()):
            return (
                self.shadow_class[idx], self.shadow_plen[idx],
                self.shadow_tb[idx], self.shadow_site[idx],
                self.shadow_origin[idx], self.shadow_rec[idx],
            )
        return (
            np.where(use2, self.shadow2_class[idx],
                     self.shadow_class[idx]),
            np.where(use2, self.shadow2_plen[idx],
                     self.shadow_plen[idx]),
            np.where(use2, self.shadow2_tb[idx], self.shadow_tb[idx]),
            np.where(use2, self.shadow2_site[idx],
                     self.shadow_site[idx]),
            np.where(use2, self.shadow2_origin[idx],
                     self.shadow_origin[idx]),
            np.where(use2, self.shadow2_rec[idx],
                     self.shadow_rec[idx]),
        )

    def _write_unreached(self, rows: np.ndarray) -> None:
        self.best_class[rows] = _UNREACHED
        self.best_pathlen[rows] = 0
        self.best_tiebreak[rows] = 0.0
        self.best_site[rows] = -1
        self.best_origin[rows] = 0
        self.best_rec[rows] = -1

    def _mark_changed(self, rows: np.ndarray) -> None:
        self.changed[rows] = True
        self._changed_cache = None

    def _clear_changed(self, rows: np.ndarray) -> None:
        self.changed[rows] = False
        self._changed_cache = None

    def _changed_rows(self) -> np.ndarray:
        cached = self._changed_cache
        if cached is None:
            cached = np.flatnonzero(self.changed)
            self._changed_cache = cached
        return cached

    def _adopt_level(self, old_lt: _LevelTrace) -> _LevelTrace:
        """Carry an untouched old level into the new trace.

        Its install record stores site indices of the *old* namespace;
        when the site set changed they must be re-indexed so the new
        trace is uniformly in the new namespace.
        """
        if self.same_sites or old_lt.inst is None:
            return old_lt
        inst = old_lt.inst
        return _LevelTrace(
            stage=old_lt.stage,
            frontier=old_lt.frontier,
            fresh=old_lt.fresh,
            first_pred=old_lt.first_pred,
            first_adj=old_lt.first_adj,
            inst=(
                inst[0], inst[1],
                self.site_trans[inst[2]],
                inst[3], inst[4],
            ),
        )

    def _set_frontier_pos(self, rows: np.ndarray) -> None:
        self.frontier_pos[self._posed] = -1
        self.frontier_pos[rows] = np.arange(rows.size, dtype=np.int64)
        self._posed = rows

    def _old_order_prefix(self, through_stage: int) -> np.ndarray:
        total = 0
        for level in self.old_trace.levels:
            if level.stage <= through_stage:
                total += int(level.fresh.sum())
        result: np.ndarray = self.old.order[:total]
        return result

    # -- seed ---------------------------------------------------------

    def _replay_seed(
        self, global_origins: list[Origin]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Recompute the origin installs and diff them against level 0.

        The seed is tiny (one offer per origin), so it is re-run in
        full; rows whose value and record content match the previous
        run keep their old record ids, which is what keeps unchanged
        downstream subtrees from cascading into the changed set.
        """
        compiled = self.compiled
        site_idx = self.site_idx
        offers: dict[int, tuple[int, int, float, int, int]] = {}
        winning: list[int] = []
        for origin in global_origins:
            row = compiled.row_of[origin.asn]
            key = (0, 1, 0.0, site_idx[origin.site], origin.asn)
            cur = offers.get(row)
            if cur is None or key < cur:
                offers[row] = key
                winning.append(row)
        self._seed_installs = tuple(winning)
        last_win = {row: i for i, row in enumerate(winning)}
        frontier = np.array(
            [row for i, row in enumerate(winning) if last_win[row] == i],
            dtype=np.int64,
        )
        seen: set[int] = set()
        chunk: list[int] = []
        for row in winning:
            if row not in seen:
                seen.add(row)
                chunk.append(row)
        if chunk:
            self.order_chunks.append(np.array(chunk, dtype=np.int64))
        seed_changed: list[int] = []
        for row in frontier.tolist():
            cls, plen, tb, site, oasn = offers[row]
            unchanged = (
                not self.overridden[row]
                and int(self.old_gid[row]) == 0
                and int(self.best_class[row]) == cls
                and int(self.best_pathlen[row]) == plen
                and float(self.best_tiebreak[row]) == tb
                and int(self.best_site[row]) == site
                and int(self.best_origin[row]) == oasn
            )
            if not unchanged:
                self.best_class[row] = cls
                self.best_pathlen[row] = plen
                self.best_tiebreak[row] = tb
                self.best_site[row] = site
                self.best_origin[row] = oasn
                self.best_rec[row] = self.new_record(row, parent=-1)
                self.overridden[row] = True
                seed_changed.append(row)
        if seed_changed:
            self._mark_changed(np.array(seed_changed, dtype=np.int64))
        old_f0 = self.old_trace.levels[0].frontier
        if old_f0.size:
            in_new = np.zeros(compiled.n_nodes, dtype=bool)
            in_new[frontier] = True
            lost = old_f0[~in_new[old_f0]]
            self._write_unreached(lost)
            self.overridden[lost] = True
            self._mark_changed(lost)
        self.trace_levels.append(
            _LevelTrace(
                stage=0,
                frontier=frontier,
                fresh=np.ones(frontier.size, dtype=bool),
                first_pred=None,
                first_adj=None,
                inst=_gather_inst(self, frontier),
            )
        )
        self._set_frontier_pos(frontier)
        return frontier, old_f0

    # -- batched levels ----------------------------------------------

    def _replay_level(
        self,
        stage: int,
        j: int,
        prev_new: np.ndarray,
        prev_old: np.ndarray,
        fwd_indptr: np.ndarray,
        fwd_indices: np.ndarray,
        rev_indptr: np.ndarray,
        rev_indices: np.ndarray,
        rev_fwd: np.ndarray,
        route_class: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Replay one BFS level; returns (new frontier, old frontier)."""
        n = self.compiled.n_nodes
        levels = self.old_levels[stage]
        has_old = j < len(levels)
        old_lt = self.old_trace.levels[levels[j]] if has_old else None
        cur_gid = levels[j] if has_old else self.end_gid[stage]
        empty = np.zeros(0, dtype=np.int64)
        old_frontier = old_lt.frontier if old_lt is not None else empty
        moved = empty
        if prev_new is prev_old:
            # The previous level was adopted wholesale (same array
            # object), so every old predecessor survives in place: no
            # removals and no reorders to account for.
            removed = empty
        elif prev_old.size:
            pos_in_new = self.frontier_pos[prev_old]
            common_mask = pos_in_new >= 0
            removed = prev_old[~common_mask]
            # Predecessors whose *relative* order changed can flip
            # first-seen frontier keys and equal-preference winner
            # choices (same-site candidates to one target always tie on
            # tiebreak).  Contesting the targets of an inversion
            # hitting set covers every reorder-affected target; with no
            # inversions the position remap is monotone and copied
            # orderings stay valid.
            seq = pos_in_new[common_mask]
            if seq.size > 1 and not bool(np.all(np.diff(seq) > 0)):
                moved = prev_old[common_mask][_inversion_offenders(seq)]
        else:
            removed = empty
        if prev_new.size:
            pred_mask = (
                self.changed[prev_new] | self.export_changed[prev_new]
            )
            changed_preds = prev_new[pred_mask]
        else:
            changed_preds = empty
        contested_parts: list[np.ndarray] = []
        if removed.size or changed_preds.size or moved.size:
            src = np.concatenate([changed_preds, removed, moved])
            _, targets, _ = self.expand(fwd_indptr, fwd_indices, src)
            contested_parts.append(targets)
        changed_rows = self._changed_rows()
        if changed_rows.size and prev_new.size:
            # A changed row already holding a better-class route -- or
            # a shorter same-class route during the uniform-path-length
            # customer stage -- cannot be beaten by this level's offers
            # (class dominates, then path length), so it needs no
            # re-contest here.  Changed rows are always overridden, so
            # their working values are valid reads.
            settled = self.best_class[changed_rows] < route_class
            if route_class == int(RouteClass.CUSTOMER):
                settled |= (
                    self.best_class[changed_rows] == route_class
                ) & (self.best_pathlen[changed_rows] < j + 2)
            # ... except at the level the previous run installed the
            # row: there it must stay contested so its old-frontier
            # membership (survive vs lose) gets resolved explicitly.
            settled &= (
                (self.old_gid[changed_rows] != cur_gid)
                & ~self.superseded[changed_rows]
            )
            receptive = changed_rows[~settled]
            if receptive.size:
                rows_rep, in_nbr, _ = self.expand(
                    rev_indptr, rev_indices, receptive
                )
                hit = self.frontier_pos[in_nbr] >= 0
                contested_parts.append(rows_rep[hit])
        if contested_parts:
            contested = np.unique(np.concatenate(contested_parts))
        else:
            contested = empty
        if contested.size:
            # Rows installed four or more times carry three or more
            # transients, beyond what the two shadow sets represent; if
            # the ripple touches one mid-flight, repair it with a full
            # propagation instead.
            hazard = (
                self.multi4[contested]
                & ~self.overridden[contested]
                & (self.first_gid[contested] < cur_gid)
                & (self.old_gid[contested] >= cur_gid)
            )
            if bool(hazard.any()):
                raise _RippleTooLarge

        if contested.size == 0:
            # Untouched level: no frontier row is a target of any
            # changed, removed, or reordered predecessor (removed and
            # moved preds with no forward edges here cannot affect the
            # level), so the previous run's frontier -- values, order,
            # fresh flags -- is exactly what a full run would produce.
            DELTA_STATS["levels_copied"] += 1
            if old_lt is None:
                self._set_frontier_pos(empty)
                return empty, empty
            self.trace_levels.append(self._adopt_level(old_lt))
            if bool(old_lt.fresh.any()):
                self.order_chunks.append(
                    old_lt.frontier[old_lt.fresh]
                )
            self._set_frontier_pos(old_lt.frontier)
            return old_lt.frontier, old_frontier

        DELTA_STATS["levels_replayed"] += 1
        if self._changed_rows().size > self.ripple_limit:
            raise _RippleTooLarge
        # Full candidate set of every contested target, via the
        # reverse CSR; rev_fwd recovers each edge's forward adjacency
        # offset so first-seen keys match the full kernel's expansion
        # order (frontier position outer, adjacency offset inner).
        c_t, c_p, c_within = self.expand(
            rev_indptr, rev_indices, contested
        )
        pos = self.frontier_pos[c_p] if c_p.size else empty
        keep = pos >= 0
        c_t, c_p, c_within, pos = (
            c_t[keep], c_p[keep], c_within[keep], pos[keep]
        )
        fwd_edge = (
            rev_fwd[rev_indptr[c_t] + c_within] if c_t.size else empty
        )
        adj = fwd_edge - fwd_indptr[c_p] if c_t.size else empty
        # A superseded predecessor whose final install lies at or past
        # this level exported its *first*-install transient here, not
        # the value the final arrays show; read it from the shadow.
        if c_p.size:
            mf_p = (
                self.superseded[c_p]
                & ~self.overridden[c_p]
                & (self.old_gid[c_p] >= cur_gid)
            )
            if bool(mf_p.any()):
                _, t_plen, _, t_site, t_org, t_rec = self._transient(
                    c_p, cur_gid
                )
                if bool((t_site[mf_p] < 0).any()):
                    raise _RippleTooLarge
                p_plen = np.where(
                    mf_p, t_plen, self.best_pathlen[c_p]
                ).astype(np.int16)
                p_site = np.where(
                    mf_p, t_site, self.best_site[c_p]
                ).astype(np.int16)
                p_origin = np.where(mf_p, t_org, self.best_origin[c_p])
                p_parent = np.where(mf_p, t_rec, self.best_rec[c_p])
            else:
                p_plen = self.best_pathlen[c_p]
                p_site = self.best_site[c_p]
                p_origin = self.best_origin[c_p]
                p_parent = self.best_rec[c_p]
        else:
            p_plen = p_site = p_origin = p_parent = empty
        if self.blocked is not None and c_t.size:
            at_origin = p_plen == 1
            if bool(at_origin.any()):
                drop = at_origin & self.blocked[p_site, c_t]
                keep = ~drop
                c_t, c_p, pos, adj = (
                    c_t[keep], c_p[keep], pos[keep], adj[keep]
                )
                p_plen, p_site = p_plen[keep], p_site[keep]
                p_origin, p_parent = p_origin[keep], p_parent[keep]
        if c_t.size:
            c_site = p_site
            c_origin = p_origin
            c_plen = (p_plen + 1).astype(np.int16)
            c_tb = self._tb_of(c_site, c_t)
            c_parent = p_parent
            rank = np.lexsort(
                (adj, pos, c_origin, c_site, c_tb, c_plen, c_t)
            )
            ranked_t = c_t[rank]
            lead = np.ones(ranked_t.size, dtype=bool)
            lead[1:] = ranked_t[1:] != ranked_t[:-1]
            win = rank[lead]
            occ = np.lexsort((adj, pos, c_t))
            occ_t = c_t[occ]
            occ_lead = np.ones(occ_t.size, dtype=bool)
            occ_lead[1:] = occ_t[1:] != occ_t[:-1]
            first = occ[occ_lead]
            w_t = c_t[win]
            w_plen = c_plen[win]
            w_tb = c_tb[win]
            w_site = c_site[win]
            w_origin = c_origin[win]
            w_parent = c_parent[win]
            f_pos = pos[first]
            f_adj = adj[first]
            f_pred = c_p[first]
            cls_arr = np.full(w_t.size, route_class, dtype=np.int8)
            inc_valid = (
                self.overridden[w_t] | (self.old_gid[w_t] < cur_gid)
            )
            # Mid-flight superseded targets hold their first-install
            # transient at this point of the run, not the final value
            # the working arrays started from.
            mf_t = (
                self.superseded[w_t]
                & ~self.overridden[w_t]
                & (self.first_gid[w_t] < cur_gid)
                & (self.old_gid[w_t] >= cur_gid)
            )
            inc_class = np.where(
                inc_valid, self.best_class[w_t], _UNREACHED
            ).astype(np.int16)
            b_plen = self.best_pathlen[w_t]
            b_tb = self.best_tiebreak[w_t]
            b_site = self.best_site[w_t]
            b_origin = self.best_origin[w_t]
            if bool(mf_t.any()):
                t_cls, t_plen, t_tb, t_site, t_org, _ = self._transient(
                    w_t, cur_gid
                )
                inc_class = np.where(
                    mf_t, t_cls.astype(np.int16), inc_class
                )
                b_plen = np.where(mf_t, t_plen, b_plen)
                b_tb = np.where(mf_t, t_tb, b_tb)
                b_site = np.where(mf_t, t_site, b_site)
                b_origin = np.where(mf_t, t_org, b_origin)
            beats = (cls_arr < inc_class) | (
                (cls_arr == inc_class) & (
                    (w_plen < b_plen)
                    | ((w_plen == b_plen) & (
                        (w_tb < b_tb)
                        | ((w_tb == b_tb) & (
                            (w_site < b_site)
                            | (
                                (w_site == b_site)
                                & (w_origin < b_origin)
                            )
                        ))
                    ))
                )
            )
            fresh_w = inc_class == _UNREACHED
            unchanged_mask = np.zeros(w_t.size, dtype=bool)
            if old_lt is not None:
                cand = (
                    beats
                    & ~self.overridden[w_t]
                    & (self.old_gid[w_t] == cur_gid)
                    & (self.best_class[w_t] == cls_arr)
                    & (self.best_pathlen[w_t] == w_plen)
                    & (self.best_tiebreak[w_t] == w_tb)
                    & (self.best_site[w_t] == w_site)
                    & (self.best_origin[w_t] == w_origin)
                )
                if bool(cand.any()):
                    old_rec = self.best_rec[w_t[cand]]
                    cand[np.flatnonzero(cand)] = (
                        self.old.rec_parent[old_rec] == w_parent[cand]
                    )
                unchanged_mask = cand
            # Ripple healing: an already-overridden row that re-installs
            # exactly its old value (and path) at its old install level
            # is back in sync with the previous run -- reuse the old
            # record and stop treating it as changed.
            restore_mask = np.zeros(w_t.size, dtype=bool)
            if old_lt is not None:
                ref_rec = self.ref_rec[w_t]
                cand2 = (
                    beats
                    & ~unchanged_mask
                    & self.overridden[w_t]
                    & (self.old_gid[w_t] == cur_gid)
                    & (ref_rec >= 0)
                    & (self.ref_class[w_t] == cls_arr)
                    & (self.ref_plen[w_t] == w_plen)
                    & (self.ref_tb[w_t] == w_tb)
                    & (self.ref_site[w_t] == w_site)
                    & (self.ref_origin[w_t] == w_origin)
                )
                if bool(cand2.any()):
                    cand2[np.flatnonzero(cand2)] = (
                        self.old.rec_parent[ref_rec[cand2]]
                        == w_parent[cand2]
                    )
                restore_mask = cand2
            rows_r = w_t[restore_mask]
            if rows_r.size:
                self.best_class[rows_r] = route_class
                self.best_pathlen[rows_r] = w_plen[restore_mask]
                self.best_tiebreak[rows_r] = w_tb[restore_mask]
                self.best_site[rows_r] = w_site[restore_mask]
                self.best_origin[rows_r] = w_origin[restore_mask]
                self.best_rec[rows_r] = self.ref_rec[rows_r]
                self._clear_changed(rows_r)
            write = beats & ~unchanged_mask & ~restore_mask
            rows_w = w_t[write]
            if rows_w.size:
                self.best_class[rows_w] = route_class
                self.best_pathlen[rows_w] = w_plen[write]
                self.best_tiebreak[rows_w] = w_tb[write]
                self.best_site[rows_w] = w_site[write]
                self.best_origin[rows_w] = w_origin[write]
                self._flush_pending()
                recs = np.arange(
                    self.rec_count,
                    self.rec_count + rows_w.size,
                    dtype=np.int64,
                )
                self.rec_count += rows_w.size
                self.rec_rows.append(rows_w.astype(np.int32))
                self.rec_parents.append(
                    w_parent[write].astype(np.int64)
                )
                self.best_rec[rows_w] = recs
                self.overridden[rows_w] = True
                self._mark_changed(rows_w)
            inst_rows = w_t[beats]
        else:
            inst_rows = empty
            w_t = empty
            beats = np.zeros(0, dtype=bool)
            fresh_w = np.zeros(0, dtype=bool)
            f_pos = empty
            f_adj = empty
            f_pred = empty
        # Contested rows the previous run installed at this level but
        # the new run does not: they lose that install.  A superseded
        # row losing its *final* install falls back to the transient it
        # still held; one losing its *first* install (with the final
        # yet to come) loses its route outright for now.
        if contested.size:
            inst_mask = np.zeros(n, dtype=bool)
            inst_mask[inst_rows] = True
            base = (
                ~inst_mask[contested] & ~self.overridden[contested]
            )
            at_final = base & (self.old_gid[contested] == cur_gid)
            stands = (
                at_final
                & self.superseded[contested]
                & (self.first_gid[contested] < cur_gid)
            )
            keepers = contested[stands]
            if keepers.size:
                k_cls, k_plen, k_tb, k_site, k_org, k_rec = (
                    self._transient(keepers, cur_gid)
                )
                if bool((k_site < 0).any()):
                    raise _RippleTooLarge
                self.best_class[keepers] = k_cls
                self.best_pathlen[keepers] = k_plen
                self.best_tiebreak[keepers] = k_tb
                self.best_site[keepers] = k_site
                self.best_origin[keepers] = k_org
                self.best_rec[keepers] = k_rec
                self.overridden[keepers] = True
                self._mark_changed(keepers)
            # A row losing its *second* install (first stands, final
            # still to come) falls back to its first transient.
            second_loss = (
                base
                & self.superseded[contested]
                & (self.old_gid[contested] > cur_gid)
            )
            cand = contested[second_loss]
            if cand.size:
                cidx = self.shadow_idx[cand]
                hit = self.second_gid[cidx] == cur_gid
                k2 = cand[hit]
                k2i = cidx[hit]
            else:
                k2 = cand
                k2i = cand
            if k2.size:
                if bool((self.shadow_site[k2i] < 0).any()):
                    raise _RippleTooLarge
                self.best_class[k2] = self.shadow_class[k2i]
                self.best_pathlen[k2] = self.shadow_plen[k2i]
                self.best_tiebreak[k2] = self.shadow_tb[k2i]
                self.best_site[k2] = self.shadow_site[k2i]
                self.best_origin[k2] = self.shadow_origin[k2i]
                self.best_rec[k2] = self.shadow_rec[k2i]
                self.overridden[k2] = True
                self._mark_changed(k2)
            first_loss = (
                base
                & self.superseded[contested]
                & (self.first_gid[contested] == cur_gid)
                & (self.old_gid[contested] > cur_gid)
            )
            lose = contested[(at_final & ~stands) | first_loss]
            if lose.size:
                self._write_unreached(lose)
                self.overridden[lose] = True
                self._mark_changed(lose)
        if self._changed_rows().size > self.ripple_limit:
            raise _RippleTooLarge
        # Frontier assembly: uncontested survivors keep their recorded
        # first-seen key (their predecessor's *new* frontier position
        # plus the stored adjacency offset) and, by the inversion
        # argument above, their old relative order; contested installs
        # use the keys just computed.
        i_rows = inst_rows
        if inst_rows.size:
            i_pos = f_pos[beats]
            i_adj = f_adj[beats]
            i_pred = f_pred[beats]
            i_fresh = fresh_w[beats]
            i_vals = [
                w_plen[beats], w_tb[beats], w_site[beats],
                w_origin[beats], self.best_rec[inst_rows],
            ]
        else:
            i_pos = i_adj = i_pred = empty
            i_fresh = np.zeros(0, dtype=bool)
            i_vals = [
                np.zeros(0, dtype=np.int16),
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.int16),
                empty, empty,
            ]
        if old_lt is not None and old_lt.frontier.size:
            cmask = np.zeros(n, dtype=bool)
            cmask[contested] = True
            surv = ~cmask[old_lt.frontier]
            assert old_lt.first_pred is not None
            assert old_lt.first_adj is not None
            assert old_lt.inst is not None
            s_rows = old_lt.frontier[surv]
            s_pred = old_lt.first_pred[surv]
            s_adj = old_lt.first_adj[surv]
            s_fresh = old_lt.fresh[surv]
            s_site_all = (
                old_lt.inst[2] if self.same_sites
                else self.site_trans[old_lt.inst[2]]
            )
            s_vals = [
                old_lt.inst[0][surv], old_lt.inst[1][surv],
                s_site_all[surv], old_lt.inst[3][surv],
                old_lt.inst[4][surv],
            ]
        else:
            s_rows = s_pred = s_adj = empty
            s_fresh = np.zeros(0, dtype=bool)
            s_vals = i_vals[:]
            s_vals = [v[:0] for v in s_vals]
        if i_rows.size == 0 and s_rows.size == 0:
            self._set_frontier_pos(empty)
            return empty, old_frontier
        if i_rows.size == 0:
            frontier, fresh = s_rows, s_fresh
            pred, adj = s_pred, s_adj
            vals = s_vals
        else:
            rank = np.lexsort((i_adj, i_pos))
            i_rows, i_pos, i_adj = i_rows[rank], i_pos[rank], i_adj[rank]
            i_pred, i_fresh = i_pred[rank], i_fresh[rank]
            i_vals = [v[rank] for v in i_vals]
            if i_rows.size * 16 <= s_rows.size:
                # Few installs into a long, already-ordered survivor
                # run: binary-search each slot against lazily computed
                # survivor keys and splice, instead of re-sorting the
                # whole frontier.
                fpos = self.frontier_pos
                slots = np.empty(i_rows.size, dtype=np.int64)
                for k in range(i_rows.size):
                    key = (int(i_pos[k]), int(i_adj[k]))
                    lo, hi = 0, s_rows.size
                    while lo < hi:
                        mid = (lo + hi) // 2
                        mid_key = (
                            int(fpos[s_pred[mid]]), int(s_adj[mid])
                        )
                        if mid_key < key:
                            lo = mid + 1
                        else:
                            hi = mid
                    slots[k] = lo
                frontier = np.insert(s_rows, slots, i_rows)
                fresh = np.insert(s_fresh, slots, i_fresh)
                pred = np.insert(s_pred, slots, i_pred)
                adj = np.insert(s_adj, slots, i_adj)
                vals = [
                    np.insert(s, slots, i)
                    for s, i in zip(s_vals, i_vals)
                ]
            else:
                all_rows = np.concatenate([s_rows, i_rows])
                all_pos = np.concatenate(
                    [self.frontier_pos[s_pred], i_pos]
                )
                all_adj = np.concatenate([s_adj, i_adj])
                all_fresh = np.concatenate([s_fresh, i_fresh])
                all_pred = np.concatenate([s_pred, i_pred])
                merge = np.lexsort((all_adj, all_pos))
                frontier = all_rows[merge]
                fresh = all_fresh[merge]
                pred = all_pred[merge]
                adj = all_adj[merge]
                vals = [
                    np.concatenate([s, i])[merge]
                    for s, i in zip(s_vals, i_vals)
                ]
        if bool(fresh.any()):
            self.order_chunks.append(frontier[fresh])
        self.trace_levels.append(
            _LevelTrace(
                stage=stage,
                frontier=frontier,
                fresh=fresh,
                first_pred=pred,
                first_adj=adj,
                inst=tuple(vals),
            )
        )
        self._set_frontier_pos(frontier)
        return frontier, old_frontier

    # -- driver -------------------------------------------------------

    def run(self) -> _TableArrays:
        compiled = self.compiled
        global_origins = [
            o for o in self.origins if o.scope is Scope.GLOBAL
        ]
        local_origins = [
            o for o in self.origins if o.scope is Scope.LOCAL
        ]
        prev_new, prev_old = self._replay_seed(global_origins)
        j = 0
        while j < len(self.old_levels[1]) or prev_new.size:
            prev_new, prev_old = self._replay_level(
                1, j, prev_new, prev_old,
                compiled.provider_indptr, compiled.provider_indices,
                compiled.customer_indptr, compiled.customer_indices,
                compiled.customer_edge_fwd,
                int(RouteClass.CUSTOMER),
            )
            j += 1
        order_new = self.reached_in_order()
        self._set_frontier_pos(order_new)
        self._replay_level(
            2, 0, order_new, self._old_order_prefix(1),
            compiled.peer_indptr, compiled.peer_indices,
            compiled.peer_indptr, compiled.peer_indices,
            compiled.peer_edge_fwd,
            int(RouteClass.PEER),
        )
        prev_new = self.reached_in_order()
        prev_old = self._old_order_prefix(2)
        self._set_frontier_pos(prev_new)
        j = 0
        while j < len(self.old_levels[3]) or prev_new.size:
            prev_new, prev_old = self._replay_level(
                3, j, prev_new, prev_old,
                compiled.customer_indptr, compiled.customer_indices,
                compiled.provider_indptr, compiled.provider_indices,
                compiled.provider_edge_fwd,
                int(RouteClass.PROVIDER),
            )
            j += 1
        # Local stage: the working arrays hold the repaired *batched*
        # result (replays start from the pre-local snapshot), so the
        # local stage simply re-runs in full -- its footprint is the
        # origins' immediate neighborhoods.
        pre_local = _snapshot_pre_local(self, local_origins)
        _local_stage(self, local_origins)
        trace = _PropTrace(
            origins=tuple(self.origins),
            graph_version=compiled.version,
            seed_installs=self._seed_installs,
            levels=tuple(self.trace_levels),
            pre_local=pre_local,
        )
        return self.finish(trace)


def _delta_fallback_reason(
    graph: ASGraph,
    previous: RoutingTable,
    old_origins: tuple[Origin, ...],
    new_origins: list[Origin],
) -> str | None:
    """Why :func:`propagate_delta` must run a full propagation, if so."""
    arrays = previous._arrays
    if arrays is None or arrays.trace is None:
        return "previous table has no propagation trace"
    if graph.compiled() is not arrays.compiled:
        return "graph structure changed since the previous table"
    if len({o.site for o in old_origins}) != len(old_origins):
        return "previous origins duplicate a site id"
    if not new_origins:
        return "empty origin set"
    n = arrays.compiled.n_nodes
    if arrays.rec_row.size > _FOREST_LIMIT_FACTOR * (n + 1) + 64:
        return "record forest outgrew its bound"
    if arrays.trace.pre_local is None and any(
        o.scope is Scope.LOCAL for o in old_origins
    ):
        return "previous trace lacks a pre-local snapshot"
    for lvl in arrays.trace.levels:
        if lvl.stage != 4 and lvl.inst is None:
            return "previous trace lacks install records"
    old_by_site = {o.site: o for o in old_origins}
    for origin in new_origins:
        before = old_by_site.get(origin.site)
        if before is None:
            continue
        if before.with_blocked(origin.blocked_neighbors) != origin:
            return "origin redefined beyond its blocked set"
    return None


def propagate_delta(
    graph: ASGraph,
    previous: RoutingTable,
    announce: Iterable[Origin] = (),
    withdraw: Iterable[str] = (),
) -> RoutingTable:
    """Derive the routing table after announce/withdraw changes.

    *previous* must be a table produced by :func:`propagate` (or an
    earlier :func:`propagate_delta`) over the same, unmodified graph;
    *announce* adds or redefines origins (a re-announced site may only
    change its blocked-neighbor set) and *withdraw* removes sites by
    id.  The result is bit-identical to ``propagate(graph, origins)``
    over the new origin set in canonical (site-sorted) order -- same
    winners, same tie-break floats, same table iteration order -- but
    costs work proportional to the ripple of the change, not the graph.

    Falls back to full propagation (and says so in
    :data:`DELTA_STATS`) when the previous table carries no trace, the
    graph changed, a site is redefined beyond its blocked set, origins
    duplicate site ids, the origin set empties, or the shared record
    forest has grown past its bound.
    """
    announce_list = list(announce)
    withdraw_set = frozenset(withdraw)
    arrays = previous._arrays
    trace = arrays.trace if arrays is not None else None
    if trace is not None:
        old_origins = trace.origins
    elif len(previous) == 0:
        old_origins = ()
    else:
        raise ValueError(
            "previous table is not array-backed; propagate_delta cannot "
            "recover its origin set (pass a propagate() result)"
        )
    by_site: dict[str, Origin] = {o.site: o for o in old_origins}
    for site in sorted(withdraw_set):
        if site not in by_site:
            raise KeyError(f"cannot withdraw unknown site {site!r}")
        del by_site[site]
    for origin in announce_list:
        by_site[origin.site] = origin
    new_origins = [by_site[s] for s in sorted(by_site)]
    for origin in new_origins:
        if origin.asn not in graph:
            raise KeyError(f"origin AS {origin.asn} not in graph")
    reason = _delta_fallback_reason(
        graph, previous, old_origins, new_origins
    )
    if reason is not None:
        DELTA_STATS["fallback"] += 1
        return propagate(graph, new_origins)
    assert arrays is not None
    # Every row in a withdrawn site's catchment must change, so the
    # catchment sizes bound the ripple from below; when they already
    # exceed the replay's budget, skip straight to the full kernel
    # instead of discovering the blow-up level by level.
    new_sites = {o.site for o in new_origins}
    lost = [
        j for j, name in enumerate(arrays.site_names)
        if name not in new_sites
    ]
    if lost:
        # Withdraw-side repair is the replay's worst case (losses
        # cascade wider than gains), so the early threshold sits well
        # below the in-flight ripple limit.
        limit = max(256, arrays.best_site.size // 64)
        floor = int(np.isin(arrays.best_site, lost).sum())
        if floor > limit:
            DELTA_STATS["ripple_bailouts"] += 1
            return propagate(graph, new_origins)
    replay = _DeltaReplay(graph, arrays, new_origins)
    try:
        result = replay.run()
    except _RippleTooLarge:
        DELTA_STATS["ripple_bailouts"] += 1
        return propagate(graph, new_origins)
    DELTA_STATS["delta"] += 1
    return RoutingTable._from_arrays(result)
