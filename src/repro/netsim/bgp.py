"""Path-vector route propagation with valley-free (Gao-Rexford) export.

Anycast catchments are the set of networks whose BGP best path leads to
a given site (paper section 2.1).  This module computes, for a set of
anycast origins announcing one prefix, the best route at every AS:

* routes learned from **customers** are exported to everyone;
* routes learned from **peers** or **providers** are exported only to
  customers;
* preference order is customer > peer > provider, then shortest AS
  path, then a deterministic tie-break (geographic proximity to the
  origin site, approximating hot-potato/IGP tie-breaks, then site id).

Sites announced with a **local** scope (the paper's NOPEER/NO_EXPORT
sites, Table 2) install their route only at the host AS and its direct
neighbors; the route is never re-exported, so the catchment stays in
the immediate neighborhood.

The propagation is a level-synchronous BFS run in three stages
(customer-learned "uphill", one peer hop, provider-learned "downhill").
:func:`propagate` is an array kernel over the graph's compiled CSR
view (:meth:`~repro.netsim.asgraph.ASGraph.compiled`): each stage
expands whole frontiers at once, selects per-AS winners with one
stable lexicographic sort, and stores best routes as parallel arrays.
AS paths live in an append-only record forest and are materialized
into :class:`Route` objects only when a caller asks for them.  The
kernel reproduces the scalar reference implementation
(:mod:`repro.netsim.bgp_reference`) bit for bit, including its
insertion-order-dependent tie-breaking; the property tests in
``tests/property/test_bgp_kernel.py`` pin that equivalence.
"""

from __future__ import annotations

import enum
import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from ..util.geo import Location, haversine_km
from .asgraph import ASGraph, CompiledGraph

if TYPE_CHECKING:
    from .asgraph import AsNode  # noqa: F401  (doc cross-references)

#: Process-wide monotonic source of :attr:`RoutingTable.version` tokens.
#: Unlike ``id()``, a version is never reused after garbage collection,
#: so it is safe to key long-lived caches on it.
_TABLE_VERSIONS = itertools.count(1)

#: ``best_class`` sentinel for "no route"; larger than every real
#: :class:`RouteClass`, so lexicographic comparison needs no mask.
_UNREACHED = 127

#: Route class seen by a neighbor of a local-scope origin, indexed by
#: the origin's relationship code for that neighbor (see
#: ``asgraph._REL_CODES``): our provider (1) learns a customer route
#: (0), a peer (2) a peer route (1), our customer (0) a provider route
#: (2).
_EXPORT_CLASS = np.array([2, 0, 1], dtype=np.int8)


class Scope(enum.Enum):
    """Anycast announcement scope (paper's global vs local sites)."""

    GLOBAL = "global"
    LOCAL = "local"


class RouteClass(enum.IntEnum):
    """Preference class of a route; lower is better."""

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2


@dataclass(frozen=True, slots=True)
class Origin:
    """One anycast origin: a site announced from its host AS.

    *blocked_neighbors* models partial withdrawal: the origin stops
    exporting to those direct neighbors while still serving the rest.
    Under stress this is how a site sheds part of its catchment while
    remaining a degraded absorber for "stuck" networks (paper §3.4.2:
    some VPs stay pinned to an overloaded site while others shift).
    """

    site: str
    asn: int
    scope: Scope = Scope.GLOBAL
    location: Location | None = None
    blocked_neighbors: frozenset[int] = frozenset()
    #: Interconnection-richness discount applied to the geo tie-break
    #: distance (0 = none, 0.5 = distances count half).  Densely peered
    #: sites (K-AMS at AMS-IX) win ties over a wider radius than their
    #: location alone would suggest, without ever beating a zero-
    #: distance competitor.
    preference_discount: float = 0.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("origin site id must be non-empty")
        if not 0.0 <= self.preference_discount < 1.0:
            raise ValueError("preference_discount must be within [0, 1)")

    def with_blocked(self, blocked: frozenset[int]) -> "Origin":
        """A copy of this origin with a different blocked set."""
        return Origin(
            site=self.site,
            asn=self.asn,
            scope=self.scope,
            location=self.location,
            blocked_neighbors=blocked,
            preference_discount=self.preference_discount,
        )


@dataclass(frozen=True, slots=True)
class Route:
    """An AS's best route towards the anycast prefix.

    *path* lists the ASes the announcement traversed, origin first and
    the route holder last (so ``len(path)`` is the AS-path length).
    """

    site: str
    origin_asn: int
    path: tuple[int, ...]
    route_class: RouteClass
    tiebreak: float

    @property
    def path_len(self) -> int:
        """AS-path length (number of ASes, origin included)."""
        return len(self.path)

    def preference_key(self) -> tuple:
        """Lexicographic key; the smallest key wins."""
        return (
            int(self.route_class),
            self.path_len,
            self.tiebreak,
            self.site,
            self.origin_asn,
        )

    def better_than(self, other: "Route | None") -> bool:
        """Whether this route beats *other* in BGP preference."""
        if other is None:
            return True
        return self.preference_key() < other.preference_key()


@dataclass(frozen=True, slots=True)
class _TableArrays:
    """Array backing of one routing table (kernel output).

    Rows align with the compiled graph.  ``best_site`` holds indices
    into ``site_names`` (sorted, so index order equals the reference's
    lexicographic site comparison) with ``-1`` for "no route";
    ``best_class`` uses :data:`_UNREACHED` as its sentinel.  AS paths
    are chains in the append-only record forest: ``best_rec[row]``
    points at the last hop, ``rec_parent`` walks back to the origin
    (``-1`` terminates), and ``rec_row`` names the AS at each hop.
    ``order`` lists reached rows in first-install order -- the exact
    insertion order of the reference implementation's dict, which
    materialized dicts reproduce.
    """

    compiled: CompiledGraph
    site_names: tuple[str, ...]
    best_class: np.ndarray    # int8, _UNREACHED where no route
    best_pathlen: np.ndarray  # int16
    best_tiebreak: np.ndarray # float64
    best_site: np.ndarray     # int16 index into site_names, -1 none
    best_origin: np.ndarray   # int64 origin ASN
    best_rec: np.ndarray      # int64 index into the record forest
    rec_row: np.ndarray       # int32 AS row of each record
    rec_parent: np.ndarray    # int64 parent record, -1 at the origin
    order: np.ndarray         # int64 reached rows, first-install order


class RoutingTable:
    """Best route per AS for one anycast prefix.

    Every table carries a process-unique, monotonic :attr:`version`
    token assigned at construction.  Cached tables (see
    :class:`~repro.netsim.anycast.AnycastPrefix`) keep their version
    across reuse, so ``version`` is the correct cache key for any
    derived data (catchment arrays, share vectors) -- unlike
    ``id(table)``, which can alias once a table is garbage collected.

    Tables come in two backings: the array kernel produces tables over
    :class:`_TableArrays` (``Route`` objects and the full dict are
    materialized lazily, only when asked), while the dict constructor
    remains for hand-built tables and the scalar reference.  All query
    methods behave identically on both.
    """

    def __init__(self, routes: dict[int, Route]) -> None:
        self._dict: dict[int, Route] | None = routes
        self._arrays: _TableArrays | None = None
        self._route_cache: dict[int, Route] = {}
        self.version = next(_TABLE_VERSIONS)

    @classmethod
    def _from_arrays(cls, arrays: _TableArrays) -> "RoutingTable":
        table = cls.__new__(cls)
        table._dict = None
        table._arrays = arrays
        table._route_cache = {}
        table.version = next(_TABLE_VERSIONS)
        return table

    # -- lazy materialization -----------------------------------------

    def _route_at(self, row: int) -> Route:
        """Materialize the :class:`Route` held at compiled-graph *row*."""
        arrays = self._arrays
        assert arrays is not None
        hops: list[int] = []
        rec = int(arrays.best_rec[row])
        while rec >= 0:
            hops.append(int(arrays.rec_row[rec]))
            rec = int(arrays.rec_parent[rec])
        asn_of = arrays.compiled.asn_of
        path = tuple(int(asn_of[r]) for r in reversed(hops))
        return Route(
            site=arrays.site_names[int(arrays.best_site[row])],
            origin_asn=int(arrays.best_origin[row]),
            path=path,
            route_class=RouteClass(int(arrays.best_class[row])),
            tiebreak=float(arrays.best_tiebreak[row]),
        )

    @property
    def _routes(self) -> dict[int, Route]:
        """The full ``asn -> Route`` dict, materialized on first use.

        Iteration order equals the reference implementation's install
        order, so dict-based fallbacks stay order-identical.
        """
        if self._dict is None:
            arrays = self._arrays
            assert arrays is not None
            asn_of = arrays.compiled.asn_of
            self._dict = {
                int(asn_of[row]): self._route_at(row)
                for row in arrays.order.tolist()
            }
        return self._dict

    # -- queries ------------------------------------------------------

    def route(self, asn: int) -> Route | None:
        """The best route of *asn*, or ``None`` if unreachable."""
        if self._dict is not None:
            return self._dict.get(asn)
        arrays = self._arrays
        assert arrays is not None
        row = arrays.compiled.row_of.get(asn)
        if row is None or arrays.best_class[row] == _UNREACHED:
            return None
        cached = self._route_cache.get(asn)
        if cached is None:
            cached = self._route_at(row)
            self._route_cache[asn] = cached
        return cached

    def site_of(self, asn: int) -> str | None:
        """The anycast site *asn*'s traffic reaches, or ``None``."""
        if self._dict is not None:
            route = self._dict.get(asn)
            return None if route is None else route.site
        arrays = self._arrays
        assert arrays is not None
        row = arrays.compiled.row_of.get(asn)
        if row is None or arrays.best_class[row] == _UNREACHED:
            return None
        return arrays.site_names[int(arrays.best_site[row])]

    def sites_of(
        self, asns: Iterable[int], site_index: Mapping[str, int]
    ) -> np.ndarray:
        """Vectorized catchment lookup over *asns*.

        Returns an ``int16`` array of site indices (per *site_index*),
        with ``-1`` for ASes holding no route.
        """
        arrays = self._arrays
        if arrays is None:
            return self._sites_of_dict(asns, site_index)
        asn_arr = np.asarray(asns, dtype=np.int64)
        out = np.full(asn_arr.size, -1, dtype=np.int16)
        rows = arrays.compiled.rows_of(asn_arr)
        valid = rows >= 0
        if not bool(valid.any()):
            return out
        # Translate kernel site indices into the caller's *site_index*;
        # the trailing -1 slot catches unreached rows (best_site == -1).
        trans = np.full(len(arrays.site_names) + 1, -1, dtype=np.int16)
        for i, name in enumerate(arrays.site_names):
            trans[i] = site_index.get(name, -2)
        picked = trans[arrays.best_site[rows[valid]]]
        if bool((picked == -2).any()):
            missing = sorted(
                name
                for name in arrays.site_names
                if name not in site_index
            )
            raise KeyError(missing[0])
        out[valid] = picked
        return out

    def _sites_of_dict(
        self, asns: Iterable[int], site_index: Mapping[str, int]
    ) -> np.ndarray:
        routes = self._routes
        asn_arr = np.asarray(asns, dtype=np.int64)
        out = np.full(asn_arr.size, -1, dtype=np.int16)
        get = routes.get
        for i, asn in enumerate(asn_arr.tolist()):
            route = get(asn)
            if route is not None:
                out[i] = site_index[route.site]
        return out

    def catchments(self) -> dict[str, set[int]]:
        """Site -> set of ASes routed to it."""
        result: dict[str, set[int]] = defaultdict(set)
        arrays = self._arrays
        if arrays is not None and self._dict is None:
            asn_of = arrays.compiled.asn_of
            best_site = arrays.best_site
            for row in arrays.order.tolist():
                site = arrays.site_names[int(best_site[row])]
                result[site].add(int(asn_of[row]))
            return dict(result)
        for asn, route in self._routes.items():
            result[route.site].add(asn)
        return dict(result)

    def reachable_asns(self) -> set[int]:
        """All ASes holding any route."""
        arrays = self._arrays
        if arrays is not None:
            rows = np.flatnonzero(arrays.best_class != _UNREACHED)
            return set(arrays.compiled.asn_of[rows].tolist())
        return set(self._routes)

    def changes_from(self, previous: "RoutingTable") -> set[int]:
        """ASes whose best route differs from *previous*.

        A change of site, of path, or gain/loss of reachability all
        counts -- this mirrors what a BGP collector peer sees as update
        activity (paper section 3.4.1).  Two array-backed tables over
        the same compiled graph compare without materializing a single
        ``Route``: the five best-route arrays are compared elementwise
        and only key-equal rows fall back to a vectorized walk of both
        record chains (equal keys imply equal path lengths, so the
        chains terminate in lockstep).
        """
        mine, theirs = self._arrays, previous._arrays
        if (
            mine is not None
            and theirs is not None
            and mine.compiled is theirs.compiled
        ):
            return self._changes_from_arrays(mine, theirs)
        changed: set[int] = set()
        prev = previous._routes
        for asn, route in self._routes.items():
            if prev.get(asn) != route:
                changed.add(asn)
        for asn in prev:
            if asn not in self._routes:
                changed.add(asn)
        return changed

    @staticmethod
    def _changes_from_arrays(
        mine: _TableArrays, theirs: _TableArrays
    ) -> set[int]:
        reached_a = mine.best_class != _UNREACHED
        reached_b = theirs.best_class != _UNREACHED
        changed = reached_a != reached_b
        both = reached_a & reached_b
        if mine.site_names == theirs.site_names:
            their_site = theirs.best_site
        else:
            # Map the other table's site indices into this table's
            # space; -2 marks sites this table does not know (always a
            # difference) and the trailing slot keeps -1 (unreached).
            index = {name: i for i, name in enumerate(mine.site_names)}
            trans = np.full(
                len(theirs.site_names) + 1, -2, dtype=np.int16
            )
            trans[-1] = -1
            for j, name in enumerate(theirs.site_names):
                trans[j] = index.get(name, -2)
            their_site = trans[theirs.best_site]
        keydiff = (
            (mine.best_class != theirs.best_class)
            | (mine.best_pathlen != theirs.best_pathlen)
            | (mine.best_tiebreak != theirs.best_tiebreak)
            | (mine.best_site != their_site)
            | (mine.best_origin != theirs.best_origin)
        )
        changed |= both & keydiff
        changed_rows = [np.flatnonzero(changed)]
        # Key-equal rows can still differ in the path interior; walk
        # both record chains level by level (same length: equal keys
        # imply equal path lengths).
        same = np.flatnonzero(both & ~keydiff)
        rec_a = mine.best_rec[same]
        rec_b = theirs.best_rec[same]
        while same.size:
            neq = mine.rec_row[rec_a] != theirs.rec_row[rec_b]
            if bool(neq.any()):
                changed_rows.append(same[neq])
                keep = ~neq
                same, rec_a, rec_b = same[keep], rec_a[keep], rec_b[keep]
                if not same.size:
                    break
            rec_a = mine.rec_parent[rec_a]
            rec_b = theirs.rec_parent[rec_b]
            alive = rec_a >= 0
            same, rec_a, rec_b = same[alive], rec_a[alive], rec_b[alive]
        rows = np.concatenate(changed_rows)
        return set(mine.compiled.asn_of[rows].tolist())

    def __len__(self) -> int:
        arrays = self._arrays
        if arrays is not None:
            return int((arrays.best_class != _UNREACHED).sum())
        return len(self._routes)


def _geo_tiebreak(graph: ASGraph, asn: int, origin: Origin) -> float:
    """Effective distance from *asn* to the origin site (0 if unknown).

    The origin's richness discount shrinks its effective distance.
    Kept as the scalar definition of the tie-break; :func:`propagate`
    uses precomputed per-origin distance rows instead.
    """
    if origin.location is None:
        return 0.0
    distance = haversine_km(graph.node(asn).location, origin.location)
    return distance * (1.0 - origin.preference_discount)


class _Propagation:
    """Mutable state of one array-kernel propagation run.

    The kernel mirrors the scalar reference exactly, including every
    ordering the reference inherits from dict iteration: CSR adjacency
    preserves link-insertion order, per-level winners are chosen by a
    stable lexicographic sort (first candidate wins full-key ties, as
    Python's ``min`` does), level frontiers keep first-occurrence
    target order (``dict.items`` over the reference's candidate dict),
    and ``order`` records first-install order (the reference's best
    dict insertion order).
    """

    def __init__(
        self, graph: ASGraph, origins: list[Origin]
    ) -> None:
        self.compiled = graph.compiled()
        n = self.compiled.n_nodes
        self.site_names = tuple(sorted({o.site for o in origins}))
        site_idx = {s: i for i, s in enumerate(self.site_names)}
        self.site_idx = site_idx
        # Tie-break distances per site over all ASes.  Rows come from
        # the graph's per-version memo, so repeated propagations (and
        # the scalar reference) see bit-identical float64 values; sites
        # without a located origin tie-break at 0.0.  Duplicated site
        # ids resolve last-origin-wins, like the reference's dict.
        self.tie = np.zeros((len(self.site_names), n), dtype=np.float64)
        for origin in origins:
            if origin.location is not None:
                self.tie[site_idx[origin.site]] = graph.distance_row(
                    origin.asn,
                    origin.location,
                    1.0 - origin.preference_discount,
                )
        by_site = {o.site: o for o in origins}
        self.blocked: np.ndarray | None = None
        if any(o.blocked_neighbors for o in by_site.values()):
            blocked = np.zeros((len(self.site_names), n), dtype=bool)
            for site, origin in by_site.items():
                for neighbor in origin.blocked_neighbors:
                    row = self.compiled.row_of.get(neighbor)
                    if row is not None:
                        blocked[site_idx[site], row] = True
            self.blocked = blocked
        self.best_class = np.full(n, _UNREACHED, dtype=np.int8)
        self.best_pathlen = np.zeros(n, dtype=np.int16)
        self.best_tiebreak = np.zeros(n, dtype=np.float64)
        self.best_site = np.full(n, -1, dtype=np.int16)
        self.best_origin = np.zeros(n, dtype=np.int64)
        self.best_rec = np.full(n, -1, dtype=np.int64)
        self.rec_rows: list[np.ndarray] = []
        self.rec_parents: list[np.ndarray] = []
        self.pending_rows: list[int] = []
        self.pending_parents: list[int] = []
        self.rec_count = 0
        self.order_chunks: list[np.ndarray] = []

    # -- record forest ------------------------------------------------

    def new_record(self, row: int, parent: int) -> int:
        """Append one path record and return its index.

        Scalar records buffer in Python lists; :meth:`_flush_pending`
        folds them into the chunked forest before any batched append,
        preserving creation order.
        """
        self.pending_rows.append(row)
        self.pending_parents.append(parent)
        rec = self.rec_count
        self.rec_count += 1
        return rec

    def _flush_pending(self) -> None:
        if self.pending_rows:
            self.rec_rows.append(
                np.array(self.pending_rows, dtype=np.int32)
            )
            self.rec_parents.append(
                np.array(self.pending_parents, dtype=np.int64)
            )
            self.pending_rows = []
            self.pending_parents = []

    # -- scalar offers (bootstrap and local origins) ------------------

    def scalar_beats(
        self, row: int, cls: int, plen: int, tb: float, site: int,
        origin_asn: int,
    ) -> bool:
        return (cls, plen, tb, site, origin_asn) < (
            int(self.best_class[row]),
            int(self.best_pathlen[row]),
            float(self.best_tiebreak[row]),
            int(self.best_site[row]),
            int(self.best_origin[row]),
        )

    def scalar_install(
        self, row: int, cls: int, plen: int, tb: float, site: int,
        origin_asn: int, parent: int,
    ) -> None:
        if self.best_class[row] == _UNREACHED:
            self.order_chunks.append(np.array([row], dtype=np.int64))
        self.best_class[row] = cls
        self.best_pathlen[row] = plen
        self.best_tiebreak[row] = tb
        self.best_site[row] = site
        self.best_origin[row] = origin_asn
        self.best_rec[row] = self.new_record(row, parent)

    # -- batched frontier machinery -----------------------------------

    def expand(
        self, indptr: np.ndarray, indices: np.ndarray,
        frontier: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All (pred, target) edges out of *frontier*, in the exact
        order the reference visits them: frontier order outer,
        adjacency (link-insertion) order inner."""
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        preds = np.repeat(frontier, counts)
        starts = np.repeat(indptr[frontier], counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        targets = indices[starts + within].astype(np.int64)
        return preds, targets

    def vector_beats(
        self, rows: np.ndarray, cls: np.ndarray, plen: np.ndarray,
        tb: np.ndarray, site: np.ndarray, origin_asn: np.ndarray,
    ) -> np.ndarray:
        """Strict lexicographic preference vs the incumbents at *rows*."""
        b_cls = self.best_class[rows]
        b_plen = self.best_pathlen[rows]
        b_tb = self.best_tiebreak[rows]
        b_site = self.best_site[rows]
        b_origin = self.best_origin[rows]
        result: np.ndarray = (
            (cls < b_cls)
            | ((cls == b_cls) & (
                (plen < b_plen)
                | ((plen == b_plen) & (
                    (tb < b_tb)
                    | ((tb == b_tb) & (
                        (site < b_site)
                        | ((site == b_site) & (origin_asn < b_origin))
                    ))
                ))
            ))
        )
        return result

    def level(
        self, frontier: np.ndarray, indptr: np.ndarray,
        indices: np.ndarray, route_class: int,
    ) -> np.ndarray:
        """Expand one BFS level and install winning offers.

        Returns the next frontier: newly installed rows, ordered by
        first candidate occurrence (the reference's ``dict.items``
        order over its per-level candidate map).
        """
        empty = np.zeros(0, dtype=np.int64)
        preds, targets = self.expand(indptr, indices, frontier)
        if targets.size == 0:
            return empty
        blocked = self.blocked
        if blocked is not None:
            # Partial withdrawal filters exports of the origin itself
            # (path length 1) only; longer routes re-export freely.
            at_origin = self.best_pathlen[preds] == 1
            if bool(at_origin.any()):
                keep = ~(
                    at_origin
                    & blocked[self.best_site[preds], targets]
                )
                preds, targets = preds[keep], targets[keep]
                if targets.size == 0:
                    return empty
        c_site = self.best_site[preds]
        c_origin = self.best_origin[preds]
        c_plen = (self.best_pathlen[preds] + 1).astype(np.int16)
        c_tb = self.tie[c_site, targets]
        # Parents are gathered before this level's installs, so a path
        # snapshot taken through a pred that improves later in the
        # stage stays stale -- exactly like the reference's captured
        # Route objects.
        c_parent = self.best_rec[preds]
        rank = np.lexsort((c_origin, c_site, c_tb, c_plen, targets))
        sorted_targets = targets[rank]
        lead = np.ones(sorted_targets.size, dtype=bool)
        lead[1:] = sorted_targets[1:] != sorted_targets[:-1]
        winners = rank[lead]  # stable min per target, targets ascending
        occurrence = np.argsort(targets, kind="stable")
        occ_targets = targets[occurrence]
        occ_lead = np.ones(occ_targets.size, dtype=bool)
        occ_lead[1:] = occ_targets[1:] != occ_targets[:-1]
        first_seen = occurrence[occ_lead]
        winners = winners[np.argsort(first_seen, kind="stable")]
        w_targets = targets[winners]
        cls = np.full(w_targets.size, route_class, dtype=np.int8)
        beats = self.vector_beats(
            w_targets, cls, c_plen[winners], c_tb[winners],
            c_site[winners], c_origin[winners],
        )
        winners, w_targets = winners[beats], w_targets[beats]
        if w_targets.size == 0:
            return empty
        self.install_rows(
            w_targets,
            np.full(w_targets.size, route_class, dtype=np.int8),
            c_plen[winners],
            c_tb[winners],
            c_site[winners],
            c_origin[winners],
            c_parent[winners],
        )
        return w_targets

    def install_rows(
        self, rows: np.ndarray, cls: np.ndarray, plen: np.ndarray,
        tb: np.ndarray, site: np.ndarray, origin_asn: np.ndarray,
        parents: np.ndarray,
    ) -> None:
        """Install winning offers at distinct *rows* in one batch."""
        fresh = self.best_class[rows] == _UNREACHED
        if bool(fresh.any()):
            self.order_chunks.append(rows[fresh])
        self.best_class[rows] = cls
        self.best_pathlen[rows] = plen
        self.best_tiebreak[rows] = tb
        self.best_site[rows] = site
        self.best_origin[rows] = origin_asn
        self._flush_pending()
        recs = np.arange(
            self.rec_count, self.rec_count + rows.size, dtype=np.int64
        )
        self.rec_count += rows.size
        self.rec_rows.append(rows.astype(np.int32))
        self.rec_parents.append(parents.astype(np.int64))
        self.best_rec[rows] = recs

    def reached_in_order(self) -> np.ndarray:
        """All reached rows so far, in first-install order."""
        if not self.order_chunks:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self.order_chunks)

    def finish(self) -> _TableArrays:
        self._flush_pending()
        if self.rec_rows:
            rec_row = np.concatenate(self.rec_rows)
            rec_parent = np.concatenate(self.rec_parents)
        else:
            rec_row = np.zeros(0, dtype=np.int32)
            rec_parent = np.zeros(0, dtype=np.int64)
        for array in (
            self.best_class, self.best_pathlen, self.best_tiebreak,
            self.best_site, self.best_origin, self.best_rec,
            rec_row, rec_parent,
        ):
            array.flags.writeable = False
        return _TableArrays(
            compiled=self.compiled,
            site_names=self.site_names,
            best_class=self.best_class,
            best_pathlen=self.best_pathlen,
            best_tiebreak=self.best_tiebreak,
            best_site=self.best_site,
            best_origin=self.best_origin,
            best_rec=self.best_rec,
            rec_row=rec_row,
            rec_parent=rec_parent,
            order=self.reached_in_order(),
        )


def propagate(graph: ASGraph, origins: list[Origin]) -> RoutingTable:
    """Compute best routes at every AS for one anycast prefix.

    Withdrawn sites are simply omitted from *origins*.  This is the
    array kernel; it is bit-identical to
    :func:`repro.netsim.bgp_reference.propagate` (same winners, same
    tie-breaks, same table iteration order).
    """
    for origin in origins:
        if origin.asn not in graph:
            raise KeyError(f"origin AS {origin.asn} not in graph")

    state = _Propagation(graph, origins)
    compiled = state.compiled
    site_idx = state.site_idx
    global_origins = [o for o in origins if o.scope is Scope.GLOBAL]
    local_origins = [o for o in origins if o.scope is Scope.LOCAL]

    # --- Stage 1: customer-learned routes climb provider edges. -------
    # Origins offer sequentially; with duplicated origin ASes a later,
    # lexicographically smaller offer supersedes the earlier one, and
    # the reference expands the survivor at the *later* offer's
    # frontier position.
    winning: list[int] = []
    for origin in global_origins:
        row = compiled.row_of[origin.asn]
        site = site_idx[origin.site]
        if state.scalar_beats(row, 0, 1, 0.0, site, origin.asn):
            state.scalar_install(
                row, 0, 1, 0.0, site, origin.asn, parent=-1
            )
            winning.append(row)
    last_win = {row: i for i, row in enumerate(winning)}
    frontier = np.array(
        [row for i, row in enumerate(winning) if last_win[row] == i],
        dtype=np.int64,
    )
    while frontier.size:
        frontier = state.level(
            frontier,
            compiled.provider_indptr,
            compiled.provider_indices,
            int(RouteClass.CUSTOMER),
        )

    # --- Stage 2: one peer hop from every customer-routed AS. ---------
    # Every route installed so far is customer-learned, and peer offers
    # can only win at so-far-unreached ASes, so one batched level with
    # the reference's source order (install order) is exact.
    state.level(
        state.reached_in_order(),
        compiled.peer_indptr,
        compiled.peer_indices,
        int(RouteClass.PEER),
    )

    # --- Stage 3: everything rolls downhill to customers. -------------
    frontier = state.reached_in_order()
    while frontier.size:
        frontier = state.level(
            frontier,
            compiled.customer_indptr,
            compiled.customer_indices,
            int(RouteClass.PROVIDER),
        )

    # --- Local sites: host AS and direct neighbors only. --------------
    # One batched offer per origin: the neighbors are distinct targets
    # in adjacency order, so a vectorized compare equals the
    # reference's sequential offers (origins still go one at a time,
    # since a later origin competes against an earlier one's installs).
    for origin in local_origins:
        row = compiled.row_of[origin.asn]
        site = site_idx[origin.site]
        if state.scalar_beats(row, 0, 1, 0.0, site, origin.asn):
            state.scalar_install(
                row, 0, 1, 0.0, site, origin.asn, parent=-1
            )
        start, end = (
            int(compiled.all_indptr[row]),
            int(compiled.all_indptr[row + 1]),
        )
        targets = compiled.all_indices[start:end].astype(np.int64)
        rels = compiled.all_rel[start:end]
        if origin.blocked_neighbors:
            keep = ~np.isin(
                compiled.asn_of[targets],
                np.array(sorted(origin.blocked_neighbors), dtype=np.int64),
            )
            targets, rels = targets[keep], rels[keep]
        if targets.size == 0:
            continue
        # The neighbor learned the route from the inverse side: our
        # provider sees a customer route, our customer a provider one.
        cls = _EXPORT_CLASS[rels]
        plen = np.full(targets.size, 2, dtype=np.int16)
        tb = state.tie[site, targets]
        site_arr = np.full(targets.size, site, dtype=np.int16)
        origin_arr = np.full(targets.size, origin.asn, dtype=np.int64)
        beats = state.vector_beats(
            targets, cls, plen, tb, site_arr, origin_arr
        )
        if not bool(beats.any()):
            continue
        # Path root (origin.asn,) independent of whatever route the
        # origin AS itself currently holds.
        base_rec = state.new_record(row, parent=-1)
        parents = np.full(int(beats.sum()), base_rec, dtype=np.int64)
        state.install_rows(
            targets[beats], cls[beats], plen[beats], tb[beats],
            site_arr[beats], origin_arr[beats], parents,
        )

    return RoutingTable._from_arrays(state.finish())
