"""Path-vector route propagation with valley-free (Gao-Rexford) export.

Anycast catchments are the set of networks whose BGP best path leads to
a given site (paper section 2.1).  This module computes, for a set of
anycast origins announcing one prefix, the best route at every AS:

* routes learned from **customers** are exported to everyone;
* routes learned from **peers** or **providers** are exported only to
  customers;
* preference order is customer > peer > provider, then shortest AS
  path, then a deterministic tie-break (geographic proximity to the
  origin site, approximating hot-potato/IGP tie-breaks, then site id).

Sites announced with a **local** scope (the paper's NOPEER/NO_EXPORT
sites, Table 2) install their route only at the host AS and its direct
neighbors; the route is never re-exported, so the catchment stays in
the immediate neighborhood.

The propagation is a level-synchronous BFS run in three stages
(customer-learned "uphill", one peer hop, provider-learned "downhill"),
which yields exactly the valley-free best routes and is deterministic.
"""

from __future__ import annotations

import enum
import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..util.geo import Location, haversine_km
from .asgraph import ASGraph, Relationship

#: Process-wide monotonic source of :attr:`RoutingTable.version` tokens.
#: Unlike ``id()``, a version is never reused after garbage collection,
#: so it is safe to key long-lived caches on it.
_TABLE_VERSIONS = itertools.count(1)


class Scope(enum.Enum):
    """Anycast announcement scope (paper's global vs local sites)."""

    GLOBAL = "global"
    LOCAL = "local"


class RouteClass(enum.IntEnum):
    """Preference class of a route; lower is better."""

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2


@dataclass(frozen=True, slots=True)
class Origin:
    """One anycast origin: a site announced from its host AS.

    *blocked_neighbors* models partial withdrawal: the origin stops
    exporting to those direct neighbors while still serving the rest.
    Under stress this is how a site sheds part of its catchment while
    remaining a degraded absorber for "stuck" networks (paper §3.4.2:
    some VPs stay pinned to an overloaded site while others shift).
    """

    site: str
    asn: int
    scope: Scope = Scope.GLOBAL
    location: Location | None = None
    blocked_neighbors: frozenset[int] = frozenset()
    #: Interconnection-richness discount applied to the geo tie-break
    #: distance (0 = none, 0.5 = distances count half).  Densely peered
    #: sites (K-AMS at AMS-IX) win ties over a wider radius than their
    #: location alone would suggest, without ever beating a zero-
    #: distance competitor.
    preference_discount: float = 0.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("origin site id must be non-empty")
        if not 0.0 <= self.preference_discount < 1.0:
            raise ValueError("preference_discount must be within [0, 1)")

    def with_blocked(self, blocked: frozenset[int]) -> "Origin":
        """A copy of this origin with a different blocked set."""
        return Origin(
            site=self.site,
            asn=self.asn,
            scope=self.scope,
            location=self.location,
            blocked_neighbors=blocked,
            preference_discount=self.preference_discount,
        )


@dataclass(frozen=True, slots=True)
class Route:
    """An AS's best route towards the anycast prefix.

    *path* lists the ASes the announcement traversed, origin first and
    the route holder last (so ``len(path)`` is the AS-path length).
    """

    site: str
    origin_asn: int
    path: tuple[int, ...]
    route_class: RouteClass
    tiebreak: float

    @property
    def path_len(self) -> int:
        """AS-path length (number of ASes, origin included)."""
        return len(self.path)

    def preference_key(self) -> tuple:
        """Lexicographic key; the smallest key wins."""
        return (
            int(self.route_class),
            self.path_len,
            self.tiebreak,
            self.site,
            self.origin_asn,
        )

    def better_than(self, other: "Route | None") -> bool:
        """Whether this route beats *other* in BGP preference."""
        if other is None:
            return True
        return self.preference_key() < other.preference_key()


class RoutingTable:
    """Best route per AS for one anycast prefix.

    Every table carries a process-unique, monotonic :attr:`version`
    token assigned at construction.  Cached tables (see
    :class:`~repro.netsim.anycast.AnycastPrefix`) keep their version
    across reuse, so ``version`` is the correct cache key for any
    derived data (catchment arrays, share vectors) -- unlike
    ``id(table)``, which can alias once a table is garbage collected.
    """

    def __init__(self, routes: dict[int, Route]) -> None:
        self._routes = routes
        self.version = next(_TABLE_VERSIONS)

    def route(self, asn: int) -> Route | None:
        """The best route of *asn*, or ``None`` if unreachable."""
        return self._routes.get(asn)

    def site_of(self, asn: int) -> str | None:
        """The anycast site *asn*'s traffic reaches, or ``None``."""
        route = self._routes.get(asn)
        return None if route is None else route.site

    def sites_of(
        self, asns: Iterable[int], site_index: Mapping[str, int]
    ) -> np.ndarray:
        """Vectorized catchment lookup over *asns*.

        Returns an ``int16`` array of site indices (per *site_index*),
        with ``-1`` for ASes holding no route.
        """
        asns = np.asarray(asns, dtype=np.int64)
        out = np.full(asns.size, -1, dtype=np.int16)
        get = self._routes.get
        for i, asn in enumerate(asns.tolist()):
            route = get(asn)
            if route is not None:
                out[i] = site_index[route.site]
        return out

    def catchments(self) -> dict[str, set[int]]:
        """Site -> set of ASes routed to it."""
        result: dict[str, set[int]] = defaultdict(set)
        for asn, route in self._routes.items():
            result[route.site].add(asn)
        return dict(result)

    def reachable_asns(self) -> set[int]:
        """All ASes holding any route."""
        return set(self._routes)

    def changes_from(self, previous: "RoutingTable") -> set[int]:
        """ASes whose best route differs from *previous*.

        A change of site, of path, or gain/loss of reachability all
        count -- this mirrors what a BGP collector peer sees as update
        activity (paper section 3.4.1).  The union of both key sets is
        walked lazily (no temporary sets are materialized).
        """
        changed = set()
        prev = previous._routes
        for asn, route in self._routes.items():
            if prev.get(asn) != route:
                changed.add(asn)
        for asn in prev:
            if asn not in self._routes:
                changed.add(asn)
        return changed

    def __len__(self) -> int:
        return len(self._routes)


def _geo_tiebreak(graph: ASGraph, asn: int, origin: Origin) -> float:
    """Effective distance from *asn* to the origin site (0 if unknown).

    The origin's richness discount shrinks its effective distance.
    Kept as the scalar reference implementation; :func:`propagate` uses
    precomputed per-origin distance rows instead.
    """
    if origin.location is None:
        return 0.0
    distance = haversine_km(graph.node(asn).location, origin.location)
    return distance * (1.0 - origin.preference_discount)


def propagate(graph: ASGraph, origins: list[Origin]) -> RoutingTable:
    """Compute best routes at every AS for one anycast prefix.

    Withdrawn sites are simply omitted from *origins*.
    """
    for origin in origins:
        if origin.asn not in graph:
            raise KeyError(f"origin AS {origin.asn} not in graph")

    # Tie-break distances, precomputed per origin over all ASes in one
    # vectorized pass and memoized on the graph across re-propagations
    # (policy loops re-announce the same origins every few bins).
    row_of, _, _ = graph.coordinate_arrays()
    dist_rows: dict[str, np.ndarray] = {
        o.site: graph.distance_row(
            o.asn, o.location, 1.0 - o.preference_discount
        )
        for o in origins
        if o.location is not None
    }

    def tiebreak(asn: int, origin: Origin) -> float:
        row = dist_rows.get(origin.site)
        if row is None:
            return 0.0
        return float(row[row_of[asn]])

    best: dict[int, Route] = {}

    def offer(asn: int, route: Route) -> bool:
        """Install *route* at *asn* if it wins; report whether it did."""
        if route.better_than(best.get(asn)):
            best[asn] = route
            return True
        return False

    global_origins = [o for o in origins if o.scope is Scope.GLOBAL]
    local_origins = [o for o in origins if o.scope is Scope.LOCAL]

    # --- Stage 1: customer-learned routes climb provider edges. -------
    frontier: list[tuple[int, Route]] = []
    for origin in global_origins:
        route = Route(
            site=origin.site,
            origin_asn=origin.asn,
            path=(origin.asn,),
            route_class=RouteClass.CUSTOMER,
            tiebreak=0.0,
        )
        if offer(origin.asn, route):
            frontier.append((origin.asn, route))
    origin_by_site = {o.site: o for o in origins}

    while frontier:
        candidates: dict[int, list[Route]] = defaultdict(list)
        for asn, route in frontier:
            if best.get(asn) != route:
                continue  # superseded at this level
            for provider in graph.providers(asn):
                origin = origin_by_site[route.site]
                if (
                    len(route.path) == 1
                    and provider in origin.blocked_neighbors
                ):
                    continue
                candidates[provider].append(
                    Route(
                        site=route.site,
                        origin_asn=route.origin_asn,
                        path=route.path + (provider,),
                        route_class=RouteClass.CUSTOMER,
                        tiebreak=tiebreak(provider, origin),
                    )
                )
        frontier = []
        for asn, routes in candidates.items():
            winner = min(routes, key=Route.preference_key)
            if offer(asn, winner):
                frontier.append((asn, winner))

    customer_routed = {
        asn: route
        for asn, route in best.items()
        if route.route_class is RouteClass.CUSTOMER
    }

    # --- Stage 2: one peer hop from every customer-routed AS. ---------
    for asn, route in customer_routed.items():
        for peer in graph.peers(asn):
            origin = origin_by_site[route.site]
            if len(route.path) == 1 and peer in origin.blocked_neighbors:
                continue
            offer(
                peer,
                Route(
                    site=route.site,
                    origin_asn=route.origin_asn,
                    path=route.path + (peer,),
                    route_class=RouteClass.PEER,
                    tiebreak=tiebreak(peer, origin),
                ),
            )

    # --- Stage 3: everything rolls downhill to customers. -------------
    frontier = [(asn, route) for asn, route in best.items()]
    while frontier:
        candidates = defaultdict(list)
        for asn, route in frontier:
            if best.get(asn) != route:
                continue
            for customer in graph.customers(asn):
                origin = origin_by_site[route.site]
                if (
                    len(route.path) == 1
                    and customer in origin.blocked_neighbors
                ):
                    continue
                candidates[customer].append(
                    Route(
                        site=route.site,
                        origin_asn=route.origin_asn,
                        path=route.path + (customer,),
                        route_class=RouteClass.PROVIDER,
                        tiebreak=tiebreak(customer, origin),
                    )
                )
        frontier = []
        for asn, routes in candidates.items():
            winner = min(routes, key=Route.preference_key)
            if offer(asn, winner):
                frontier.append((asn, winner))

    # --- Local sites: host AS and direct neighbors only. --------------
    for origin in local_origins:
        self_route = Route(
            site=origin.site,
            origin_asn=origin.asn,
            path=(origin.asn,),
            route_class=RouteClass.CUSTOMER,
            tiebreak=0.0,
        )
        offer(origin.asn, self_route)
        for neighbor, rel in graph.neighbors(origin.asn).items():
            if neighbor in origin.blocked_neighbors:
                continue
            # *rel* is the neighbor's role as seen from the origin; the
            # neighbor itself learned the route from the inverse side.
            if rel is Relationship.PROVIDER:
                neighbor_class = RouteClass.CUSTOMER  # learned from customer
            elif rel is Relationship.PEER:
                neighbor_class = RouteClass.PEER
            else:
                neighbor_class = RouteClass.PROVIDER  # learned from provider
            offer(
                neighbor,
                Route(
                    site=origin.site,
                    origin_asn=origin.asn,
                    path=(origin.asn, neighbor),
                    route_class=neighbor_class,
                    tiebreak=tiebreak(neighbor, origin),
                ),
            )

    return RoutingTable(best)
