"""The traffic events of 2015-11-30 and 2015-12-01 (paper section 2.3).

Both events sent queries for a single fixed name from spoofed IPv4
sources over UDP, at roughly 5 Mq/s per targeted letter -- more than
100x normal load.  D-, L- and M-Root were not attacked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dns.rcode import ATTACK_QNAME_DEC1, ATTACK_QNAME_NOV30
from ..rootdns.letters import ATTACKED_LETTERS
from ..util.timegrid import EVENT_1, EVENT_2, Interval
from ..util.units import (
    EVENT_QUERY_WIRE_BYTES_DEC1,
    EVENT_QUERY_WIRE_BYTES_NOV30,
    EVENT_RESPONSE_WIRE_BYTES,
)


@dataclass(frozen=True, slots=True)
class AttackEvent:
    """One sustained high-rate query event against a set of letters."""

    name: str
    interval: Interval
    qname: str
    rate_qps: float
    targets: tuple[str, ...]
    query_wire_bytes: int
    response_wire_bytes: int = EVENT_RESPONSE_WIRE_BYTES

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("attack rate must be positive")
        if not self.targets:
            raise ValueError("an event needs at least one target letter")
        if len(set(self.targets)) != len(self.targets):
            raise ValueError("duplicate target letters")

    def rate_for(self, letter: str, timestamp: float) -> float:
        """Offered attack rate against *letter* at *timestamp*."""
        if letter in self.targets and self.interval.contains(timestamp):
            return self.rate_qps
        return 0.0


#: Nov 30, 06:50-09:30 UTC: www.336901.com, ~5 Mq/s per letter.
NOV30_EVENT = AttackEvent(
    name="2015-11-30",
    interval=EVENT_1,
    qname=ATTACK_QNAME_NOV30,
    rate_qps=5.0e6,
    targets=ATTACKED_LETTERS,
    query_wire_bytes=EVENT_QUERY_WIRE_BYTES_NOV30,
)

#: Dec 1, 05:10-06:10 UTC: www.916yy.com, slightly higher rate
#: (Table 3 reports A-Root at 5.21 vs 5.12 Mq/s).
DEC1_EVENT = AttackEvent(
    name="2015-12-01",
    interval=EVENT_2,
    qname=ATTACK_QNAME_DEC1,
    rate_qps=5.1e6,
    targets=ATTACKED_LETTERS,
    query_wire_bytes=EVENT_QUERY_WIRE_BYTES_DEC1,
)

#: Both events in chronological order.
NOV2015_EVENTS = (NOV30_EVENT, DEC1_EVENT)


def attack_rate(
    events: tuple[AttackEvent, ...], letter: str, timestamp: float
) -> float:
    """Total attack rate against *letter* at *timestamp*."""
    return sum(e.rate_for(letter, timestamp) for e in events)


def attack_rates(
    events: tuple[AttackEvent, ...], letter: str, timestamps: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`attack_rate` over an array of timestamps.

    Bit-identical to calling :func:`attack_rate` per element: events
    accumulate in tuple order onto a float zero, and each contributes
    either its exact ``rate_qps`` or ``0.0`` (the half-open interval
    test matches :meth:`~repro.util.timegrid.Interval.contains`).
    """
    ts = np.asarray(timestamps, dtype=np.float64)
    total = np.zeros(ts.shape, dtype=np.float64)
    for event in events:
        if letter not in event.targets:
            continue
        inside = (ts >= event.interval.start) & (ts < event.interval.end)
        total = total + np.where(inside, event.rate_qps, 0.0)
    return total


def active_event(
    events: tuple[AttackEvent, ...], timestamp: float
) -> AttackEvent | None:
    """The event in progress at *timestamp*, if any."""
    for event in events:
        if event.interval.contains(timestamp):
            return event
    return None


def active_event_index(
    events: tuple[AttackEvent, ...], timestamps: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`active_event`: index of the *first* event in
    tuple order covering each timestamp, or ``-1`` for none."""
    ts = np.asarray(timestamps, dtype=np.float64)
    index = np.full(ts.shape, -1, dtype=np.int64)
    for i, event in enumerate(events):
        inside = (ts >= event.interval.start) & (ts < event.interval.end)
        index[inside & (index < 0)] = i
    return index
