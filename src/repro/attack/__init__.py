"""Attack and workload models for the Nov/Dec 2015 events."""

from .botnet import (
    DEFAULT_HOTSPOTS,
    Botnet,
    BotnetConfig,
    build_botnet,
    expected_unique_sources,
)
from .events import (
    DEC1_EVENT,
    NOV2015_EVENTS,
    NOV30_EVENT,
    AttackEvent,
    active_event,
    active_event_index,
    attack_rate,
    attack_rates,
)
from .spoofing import SpoofedSourceModel, format_ipv4
from .workload import (
    RETRY_SPILL_FRACTION,
    BaselineWorkload,
    legit_shares_by_site,
    retry_spill,
)

__all__ = [
    "AttackEvent",
    "BaselineWorkload",
    "Botnet",
    "BotnetConfig",
    "DEC1_EVENT",
    "DEFAULT_HOTSPOTS",
    "NOV2015_EVENTS",
    "NOV30_EVENT",
    "RETRY_SPILL_FRACTION",
    "SpoofedSourceModel",
    "active_event",
    "active_event_index",
    "attack_rate",
    "attack_rates",
    "build_botnet",
    "expected_unique_sources",
    "format_ipv4",
    "legit_shares_by_site",
    "retry_spill",
]
