"""Baseline (legitimate) query workload against the root letters.

Legitimate root traffic comes from recursive resolvers spread across
edge networks.  Against the events' 100x load it is nearly irrelevant
for overload (section 2.2 explicitly neglects it), but it matters for:

* RSSAC-002 baselines (Table 3's right column),
* the .nl collateral-damage series (Fig. 15 plots *query rates*),
* the "letter flip" effect: queries failing at an attacked letter are
  retried at another letter, which is how unattacked L-Root saw a
  1.66x query-rate increase during the second event (section 3.2.2).

The diurnal shape is a simple sinusoid; resolvers are uniform across
stub ASes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netsim.bgp import RoutingTable
from ..util.timegrid import EVENT_WINDOW_START

#: Fraction of a failed query's load that is retried at other letters.
#: Resolvers retry aggressively (section 3.4.1), but caching and give-up
#: timers keep the retried share below 1.
RETRY_SPILL_FRACTION = 0.8


@dataclass(frozen=True, slots=True)
class BaselineWorkload:
    """Per-letter legitimate load with a diurnal cycle.

    Parameters
    ----------
    base_qps:
        Mean legitimate query rate for the letter.
    diurnal_amplitude:
        Relative swing of the day/night cycle.
    peak_utc_hour:
        Hour of day (UTC) when traffic peaks.
    """

    base_qps: float
    diurnal_amplitude: float = 0.15
    peak_utc_hour: float = 14.0

    def __post_init__(self) -> None:
        if self.base_qps < 0:
            raise ValueError("baseline rate cannot be negative")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("amplitude must be within [0, 1)")

    def rate_at(self, timestamp: float) -> float:
        """Legitimate query rate at *timestamp* (POSIX seconds)."""
        hour = ((timestamp - EVENT_WINDOW_START) / 3600.0) % 24.0
        phase = 2.0 * np.pi * (hour - self.peak_utc_hour) / 24.0
        return self.base_qps * (1.0 + self.diurnal_amplitude * np.cos(phase))

    def rates_at(self, timestamps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rate_at`."""
        timestamps = np.asarray(timestamps, dtype=np.float64)
        hours = ((timestamps - EVENT_WINDOW_START) / 3600.0) % 24.0
        phase = 2.0 * np.pi * (hours - self.peak_utc_hour) / 24.0
        return self.base_qps * (1.0 + self.diurnal_amplitude * np.cos(phase))


def legit_shares_by_site(
    table: RoutingTable, stub_asns: list[int]
) -> dict[str, float]:
    """Fraction of legitimate traffic arriving at each site.

    Resolvers are uniform over stub ASes; each stub contributes its
    1/N share to whichever site its catchment selects.
    """
    if not stub_asns:
        raise ValueError("need at least one stub AS")
    shares: dict[str, float] = {}
    per_stub = 1.0 / len(stub_asns)
    for asn in stub_asns:
        site = table.site_of(asn)
        if site is None:
            continue
        shares[site] = shares.get(site, 0.0) + per_stub
    return shares


def legit_share_vector(
    table: RoutingTable,
    stub_asns: list[int],
    site_index: dict[str, int],
) -> tuple[np.ndarray, float]:
    """``(per-site share vector, total routed share)``.

    Array variant of :func:`legit_shares_by_site` for the engine's
    per-epoch cache, bit-identical to scattering the dict: the
    catchment gather is vectorised and ``np.add.at`` adds the 1/N
    stub share per occurrence in stub order -- the dict variant's
    exact addition sequence.  The total is summed over sites in
    first-appearance (dict insertion) order, keeping it bit-identical
    to ``sum(shares.values())`` (the engine derives the unrouted
    fraction from it).
    """
    if not stub_asns:
        raise ValueError("need at least one stub AS")
    per_stub = 1.0 / len(stub_asns)
    rows = table.sites_of(
        np.asarray(stub_asns, dtype=np.int64), site_index
    )
    routed = rows[rows >= 0]
    vector = np.zeros(len(site_index), dtype=np.float64)
    np.add.at(vector, routed, per_stub)
    uniq, first = np.unique(routed, return_index=True)
    order = uniq[np.argsort(first, kind="stable")]
    return vector, sum(float(vector[site]) for site in order)


#: Per-letters-tuple memo of each source letter's retry targets; the
#: engine calls :func:`retry_spill` once per bin with the same letter
#: set, so the "everyone but me" lists are worth building once.
_OTHERS_MEMO: dict[tuple[str, ...], dict[str, list[str]]] = {}


def retry_spill(
    lost_legit_qps: dict[str, float], letters: list[str]
) -> dict[str, float]:
    """Redistribute failed legitimate queries to other letters.

    Returns extra query rate per letter.  A letter's own losses never
    come back to itself; resolver retries spread across the other
    twelve letters evenly (resolver selection policies differ; a
    uniform spread is the neutral assumption, documented in DESIGN.md).
    """
    key = tuple(letters)
    others_of = _OTHERS_MEMO.get(key)
    if others_of is None:
        others_of = _OTHERS_MEMO[key] = {
            source: [letter for letter in letters if letter != source]
            for source in letters
        }
        while len(_OTHERS_MEMO) > 64:
            _OTHERS_MEMO.pop(next(iter(_OTHERS_MEMO)))
    extra = {letter: 0.0 for letter in letters}
    for source, lost in lost_legit_qps.items():
        if lost < 0:
            raise ValueError("lost rate cannot be negative")
        others = others_of.get(source)
        if others is None:
            others = [letter for letter in letters if letter != source]
        if not others:
            continue
        share = lost * RETRY_SPILL_FRACTION / len(others)
        for letter in others:
            extra[letter] += share
    return extra
