"""Botnet model: where the event traffic enters the Internet.

The event's *source addresses* were spoofed (895 M distinct addresses
seen at A+J, paper section 2.3), so they say nothing about where the
traffic came from.  What shapes per-site load is where the traffic
*enters* -- the ASes hosting the actual senders.  Verisign attributed
the events to a botnet, and the top 200 sources carried 68 % of the
queries, i.e. the ingress distribution was highly concentrated.

We model the botnet as weighted clusters in stub ASes:

* **hotspot clusters** near configured metros carry the bulk of the
  volume (the concentration the paper reports); some of them sit at
  IXP-dense metros whose root sites then bear the brunt;
* a **Zipf tail** over random stubs carries the rest.

Per-site attack load is then emergent: each bot cluster's traffic is
routed by the same BGP catchments as everyone else's, so withdrawing a
site moves its bots (and their load) to the next-best site -- the
waterbed effect of section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netsim.bgp import RoutingTable
from ..netsim.topology import Topology
from ..util.airports import airport

#: Default hotspot volume shares; about two thirds of the traffic,
#: matching the "top 200 sources sent 68 %" concentration.
DEFAULT_HOTSPOTS = {
    "LHR": 0.13,
    "FRA": 0.12,
    "NRT": 0.10,
    "AMS": 0.08,
    "IAD": 0.07,
    "PAO": 0.04,
    "CDG": 0.035,
    "WAW": 0.04,
    "SYD": 0.05,
    "NLV": 0.03,
}


@dataclass(frozen=True, slots=True)
class BotnetConfig:
    """Knobs for botnet placement."""

    hotspots: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_HOTSPOTS)
    )
    clusters_per_hotspot: int = 6
    hotspot_radius_km: float = 150.0
    n_tail_clusters: int = 180
    zipf_alpha: float = 1.3
    #: Effective size of the spoofed source pool (section 3.1 infers
    #: on the order of 2 G addresses across the events).
    spoof_pool_size: int = 2**31

    def __post_init__(self) -> None:
        total = sum(self.hotspots.values())
        if not 0.0 < total < 1.0:
            raise ValueError(
                f"hotspot shares must sum into (0, 1), got {total}"
            )
        if self.clusters_per_hotspot < 1:
            raise ValueError("need at least one cluster per hotspot")
        if self.n_tail_clusters < 1:
            raise ValueError("need at least one tail cluster")
        if self.zipf_alpha <= 1.0:
            raise ValueError("zipf_alpha must exceed 1")

    @property
    def tail_share(self) -> float:
        """Volume share carried by the Zipf tail."""
        return 1.0 - sum(self.hotspots.values())


class Botnet:
    """Placed botnet: cluster ASNs and their volume weights."""

    def __init__(self, asns: np.ndarray, weights: np.ndarray) -> None:
        asns = np.asarray(asns, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if asns.shape != weights.shape or asns.ndim != 1:
            raise ValueError("asns and weights must be 1-D and aligned")
        if asns.size == 0:
            raise ValueError("botnet cannot be empty")
        if (weights < 0).any():
            raise ValueError("weights cannot be negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.asns = asns
        self.weights = weights / total

    def __len__(self) -> int:
        return self.asns.size

    def load_shares_by_site(self, table: RoutingTable) -> dict[str, float]:
        """Fraction of attack volume arriving at each site.

        Bots whose AS has no route send their traffic nowhere (it is
        dropped in transit); their share is simply absent, so values
        may sum to less than 1.
        """
        shares: dict[str, float] = {}
        for asn, weight in zip(self.asns, self.weights):
            site = table.site_of(int(asn))
            if site is None:
                continue
            shares[site] = shares.get(site, 0.0) + float(weight)
        return shares

    def site_share_vector(
        self, table: RoutingTable, site_index: dict[str, int]
    ) -> np.ndarray:
        """Per-site attack shares as an array indexed by *site_index*.

        Bit-identical to scattering :meth:`load_shares_by_site`: the
        catchment gather is vectorised (``sites_of`` reads the same
        best-route arrays as per-AS ``site_of``), and ``np.add.at``
        accumulates weights element by element in ``asns`` order --
        the exact addition sequence of the dict variant.  The engine
        caches one vector per routing-table version and turns the
        per-bin share lookup into pure array arithmetic.
        """
        vector = np.zeros(len(site_index), dtype=np.float64)
        rows = table.sites_of(self.asns, site_index)
        routed = rows >= 0
        np.add.at(vector, rows[routed], self.weights[routed])
        return vector


def build_botnet(
    topology: Topology, config: BotnetConfig, rng: np.random.Generator
) -> Botnet:
    """Place bot clusters on the topology's stub ASes."""
    stub_asns = np.asarray(topology.stub_asns, dtype=np.int64)
    asns: list[int] = []
    weights: list[float] = []

    for metro, share in sorted(config.hotspots.items()):
        center = airport(metro).location
        distances = topology.stub_distances(center)
        nearby = [
            topology.stub_asns[i]
            for i in np.flatnonzero(distances <= config.hotspot_radius_km)
        ]
        if not nearby:
            # Fall back to the closest stubs if the metro is sparse.
            order = np.argsort(distances, kind="stable")
            nearby = [
                topology.stub_asns[i]
                for i in order[: config.clusters_per_hotspot]
            ]
        chosen = rng.choice(
            np.asarray(nearby, dtype=np.int64),
            size=min(config.clusters_per_hotspot, len(nearby)),
            replace=False,
        )
        for asn in chosen:
            asns.append(int(asn))
            weights.append(share / len(chosen))

    # Zipf-weighted tail over random stubs.
    tail_asns = rng.choice(
        stub_asns,
        size=min(config.n_tail_clusters, stub_asns.size),
        replace=False,
    )
    ranks = np.arange(1, tail_asns.size + 1, dtype=np.float64)
    tail_weights = ranks**-config.zipf_alpha
    tail_weights *= config.tail_share / tail_weights.sum()
    asns.extend(int(a) for a in tail_asns)
    weights.extend(float(w) for w in tail_weights)

    return Botnet(np.asarray(asns), np.asarray(weights))


def expected_unique_sources(queries: float, pool_size: int) -> float:
    """Expected distinct spoofed addresses in *queries* random draws.

    Standard occupancy: ``P * (1 - (1 - 1/P)**Q)``, evaluated in log
    space for numerical stability.  Used to model the unique-IP counts
    of RSSAC-002 reports (Table 3's "M IPs" columns).
    """
    if queries < 0:
        raise ValueError("query count cannot be negative")
    if pool_size <= 0:
        raise ValueError("pool size must be positive")
    return float(pool_size * -np.expm1(queries * np.log1p(-1.0 / pool_size)))
