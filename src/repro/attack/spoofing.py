"""Spoofed source-address generation (packet-level).

The events' queries carried randomised IPv4 source addresses (paper
section 2.3: 895 M distinct addresses at A+J, "strongly suggesting
source address spoofing"), with a heavy concentration: the top 200
sources carried 68 % of the queries.  This module samples that mix at
packet granularity -- used by the wire-level server tests (RRL sees
repeated top sources but cannot touch the random remainder) and to
validate the analytic unique-source model against empirical draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def format_ipv4(addresses: np.ndarray) -> list[str]:
    """Render uint32 addresses as dotted quads."""
    addresses = np.asarray(addresses, dtype=np.uint32)
    return [
        f"{(a >> 24) & 0xFF}.{(a >> 16) & 0xFF}"
        f".{(a >> 8) & 0xFF}.{a & 0xFF}"
        for a in addresses
    ]


@dataclass(frozen=True, slots=True)
class SpoofedSourceModel:
    """The event's source-address mix.

    *top_sources* fixed addresses carry *top_share* of the packets
    (the un-spoofed or consistently spoofed heavy hitters); the rest
    are uniform random draws from a *pool_size* address space.
    """

    top_sources: int = 200
    top_share: float = 0.68
    pool_size: int = 2**31
    seed: int = 0

    def __post_init__(self) -> None:
        if self.top_sources < 0:
            raise ValueError("top_sources cannot be negative")
        if not 0.0 <= self.top_share <= 1.0:
            raise ValueError("top_share must be within [0, 1]")
        if self.pool_size <= 0:
            raise ValueError("pool_size must be positive")

    def _top_addresses(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.integers(
            0, self.pool_size, size=self.top_sources, dtype=np.uint32
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw *n* source addresses (uint32)."""
        if n < 0:
            raise ValueError("sample size cannot be negative")
        out = rng.integers(0, self.pool_size, size=n, dtype=np.uint32)
        if self.top_sources > 0 and self.top_share > 0:
            from_top = rng.random(n) < self.top_share
            tops = self._top_addresses()
            # Zipf-ish weighting within the top set.
            ranks = np.arange(1, self.top_sources + 1, dtype=np.float64)
            weights = ranks**-1.1
            weights /= weights.sum()
            picks = rng.choice(
                self.top_sources, size=int(from_top.sum()), p=weights
            )
            out[from_top] = tops[picks]
        return out

    def expected_duplicate_share(self) -> float:
        """Fraction of packets whose (source, qname) repeats heavily.

        With a fixed query name, every packet from the top set is a
        duplicate RRL can account -- the paper's 68 %.
        """
        return self.top_share
