"""Capacity planning against an observed attack (paper section 5).

The paper's closing direction: "while additional anycast sites
increase capacity, our work shows the importance of managing traffic
across diverse sites (varying in capacity), since attackers are often
unevenly distributed."  This module turns a simulated event into an
upgrade plan: given the ground-truth per-site peak loads, how many
servers would each site have needed to absorb its own catchment's
share of the attack -- and how does that compare with concentrating
capacity at the big attractors instead?
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.results import TableResult
from ..rootdns.deployment import LetterDeployment
from ..scenario.engine import LetterTruth


@dataclass(frozen=True, slots=True)
class SitePlan:
    """Upgrade requirement for one site."""

    site: str
    peak_offered_qps: float
    capacity_qps: float
    deficit_qps: float
    extra_servers: int

    def __post_init__(self) -> None:
        if self.extra_servers < 0:
            raise ValueError("extra_servers cannot be negative")


@dataclass(frozen=True, slots=True)
class ProvisioningPlan:
    """The letter-wide upgrade plan."""

    letter: str
    sites: tuple[SitePlan, ...]
    target_utilisation: float

    @property
    def total_extra_servers(self) -> int:
        return sum(s.extra_servers for s in self.sites)

    @property
    def deficient_sites(self) -> tuple[SitePlan, ...]:
        return tuple(s for s in self.sites if s.extra_servers > 0)


def provisioning_plan(
    deployment: LetterDeployment,
    truth: LetterTruth,
    target_utilisation: float = 0.8,
) -> ProvisioningPlan:
    """Servers each site needed to absorb its observed peak load.

    *target_utilisation* leaves operating headroom: capacity is sized
    so the peak offered load stays below that fraction of it.
    """
    if not 0.0 < target_utilisation <= 1.0:
        raise ValueError("target_utilisation must be within (0, 1]")
    plans = []
    peaks = truth.offered_qps.max(axis=0)
    for i, code in enumerate(deployment.site_order):
        spec = deployment.site_spec(code)
        peak = float(peaks[i])
        needed_capacity = peak / target_utilisation
        deficit = max(0.0, needed_capacity - spec.capacity_qps)
        extra = math.ceil(deficit / spec.per_server_qps)
        plans.append(
            SitePlan(
                site=spec.label(deployment.letter),
                peak_offered_qps=peak,
                capacity_qps=spec.capacity_qps,
                deficit_qps=deficit,
                extra_servers=extra,
            )
        )
    plans.sort(key=lambda p: -p.deficit_qps)
    return ProvisioningPlan(
        letter=deployment.letter,
        sites=tuple(plans),
        target_utilisation=target_utilisation,
    )


def provisioning_table(plan: ProvisioningPlan, top: int = 10) -> TableResult:
    """The plan's most deficient sites as a table."""
    rows = []
    for site in plan.sites[:top]:
        rows.append(
            (
                site.site,
                round(site.peak_offered_qps / 1e3),
                round(site.capacity_qps / 1e3),
                round(site.deficit_qps / 1e3),
                site.extra_servers,
            )
        )
    rows.append(
        ("TOTAL", "-", "-", "-", plan.total_extra_servers)
    )
    return TableResult(
        title=(
            f"Provisioning plan for {plan.letter}-Root "
            f"(target utilisation {plan.target_utilisation:.0%})"
        ),
        headers=("site", "peak kq/s", "cap kq/s", "deficit kq/s",
                 "+servers"),
        rows=tuple(rows),
    )


def aggregate_vs_placed(
    deployment: LetterDeployment, truth: LetterTruth
) -> tuple[float, float]:
    """(aggregate utilisation, worst site utilisation) at the peak bin.

    The paper's point in one pair of numbers: a letter can have ample
    *aggregate* capacity while unevenly distributed attackers overload
    individual sites.
    """
    offered = truth.offered_qps
    capacity = deployment.capacity_by_site()
    totals = offered.sum(axis=1)
    peak_bin = int(np.argmax(totals))
    aggregate = float(totals[peak_bin] / capacity.sum())
    with np.errstate(divide="ignore", invalid="ignore"):
        per_site = offered[peak_bin] / capacity
    worst = float(np.nanmax(per_site))
    return aggregate, worst
