"""Automated anycast defense controllers (the paper's future work).

Section 2.2 closes with: *"We speculate that more careful, explicit,
and automated management of policies may provide stronger defenses to
overload, an area of future work"* and section 5 asks for managing
traffic across sites of varying capacity.  This module implements that
exploration: pluggable controllers that, each bin, observe
operator-visible state and issue announce/withdraw/partial actions.

Controllers (in increasing information):

* :class:`NullController` -- pure absorber, never acts (the paper's
  safe default under uncertainty);
* :class:`StaticPolicyController` -- the per-site policies of the 2015
  deployments (what actually happened);
* :class:`GreedyShedController` -- withdraws the most-overloaded site
  when the remaining announced capacity has measured headroom for its
  accepted load, and re-announces when calm -- using only visible
  signals, so it can be wrong exactly the way the paper predicts
  (shifted *unobserved* attack load can drown the rescuer);
* :class:`OracleController` -- cheats with ground-truth per-site
  offered load to compute the best single-site withdrawal set by
  exhaustive search; an upper bound on what routing control can do.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Protocol

from .observation import LetterObservation


class ActionKind(enum.Enum):
    """What a controller asks the routing layer to do."""

    WITHDRAW = "withdraw"
    ANNOUNCE = "announce"
    PARTIAL = "partial"
    RESTORE = "restore"


@dataclass(frozen=True, slots=True)
class Action:
    """One controller decision for one site."""

    kind: ActionKind
    site: str


class Controller(Protocol):
    """Per-bin decision procedure for one letter."""

    def decide(self, observation: LetterObservation) -> list[Action]:
        """Actions to apply before the next bin."""
        ...


class NullController:
    """Absorb everywhere; the no-information default."""

    def decide(self, observation: LetterObservation) -> list[Action]:
        return []


class StaticPolicyController:
    """Sentinel: keep the deployment's built-in §2.2 policies.

    The engine treats this marker as "run ``apply_policies`` as
    usual"; it exists so controller comparisons can name the
    historical behaviour explicitly.
    """

    def decide(self, observation: LetterObservation) -> list[Action]:
        raise NotImplementedError(
            "StaticPolicyController is handled by the engine"
        )


@dataclass(slots=True)
class GreedyShedController:
    """Withdraw the worst site when the rest can visibly absorb it.

    Operates on measured (not true) load: when a site is overloaded
    and the *measured* headroom of the other announced sites exceeds
    its accepted traffic by *safety*, withdraw it; re-announce after
    *calm_bins* quiet bins.  Keeps at least *min_announced* sites up.
    """

    safety: float = 1.5
    calm_bins: int = 6
    min_announced: int = 1
    _quiet: dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.safety < 1.0:
            raise ValueError("safety factor must be >= 1")
        if self.min_announced < 1:
            raise ValueError("must keep at least one site announced")
        self._quiet = {}

    def decide(self, observation: LetterObservation) -> list[Action]:
        actions: list[Action] = []
        announced = [s for s in observation.sites if s.announced]
        withdrawn = [s for s in observation.sites if not s.announced]
        attack_ongoing = any(s.overloaded for s in announced)

        # Re-announce after sustained calm.
        for site in withdrawn:
            if attack_ongoing:
                self._quiet[site.code] = 0
                continue
            quiet = self._quiet.get(site.code, 0) + 1
            self._quiet[site.code] = quiet
            if quiet >= self.calm_bins:
                actions.append(Action(ActionKind.ANNOUNCE, site.code))
                self._quiet[site.code] = 0

        if len(announced) <= self.min_announced:
            return actions

        overloaded = [s for s in announced if s.overloaded]
        if not overloaded:
            return actions
        worst = max(overloaded, key=lambda s: s.utilisation)
        others_headroom = sum(
            max(0.0, s.capacity_qps - s.offered_qps)
            for s in announced
            if s.code != worst.code
        )
        if others_headroom >= self.safety * worst.accepted_qps:
            actions.append(Action(ActionKind.WITHDRAW, worst.code))
            self._quiet[worst.code] = 0
        return actions


@dataclass(slots=True)
class OracleController:
    """Exhaustive withdrawal search with ground-truth offered load.

    Receives the *true* per-site offered load each bin (via
    :meth:`set_truth`, wired by the evaluation harness) and picks the
    announced set that maximises served legitimate share under the
    modelling assumption that a withdrawn site's load follows its
    catchment to the geographically next site.  Search is limited to
    withdrawing subsets of currently overloaded sites (the only
    candidates that can help), keeping it tractable.
    """

    max_withdrawals: int = 2
    _true_offered: dict[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.max_withdrawals < 0:
            raise ValueError("max_withdrawals cannot be negative")
        self._true_offered = {}

    def set_truth(self, offered_by_site: dict[str, float]) -> None:
        """Provide ground-truth offered load for the coming decision."""
        self._true_offered = dict(offered_by_site)

    def decide(self, observation: LetterObservation) -> list[Action]:
        actions: list[Action] = []
        announced = [s for s in observation.sites if s.announced]
        # Oracle knows when the attack is over: re-announce everything.
        attack = sum(self._true_offered.values()) > 2 * sum(
            s.capacity_qps for s in observation.sites
        ) * 0.05
        if not attack:
            for site in observation.sites:
                if not site.announced:
                    actions.append(Action(ActionKind.ANNOUNCE, site.code))
            return actions

        overloaded = [
            s for s in announced
            if self._true_offered.get(s.code, 0.0) > s.capacity_qps
        ]
        if not overloaded or len(announced) <= 1:
            return actions

        def served_fraction(withdrawn: set[str]) -> float:
            keep = [s for s in announced if s.code not in withdrawn]
            if not keep:
                return 0.0
            # Withdrawn sites' load moves to the remaining site with
            # the most capacity (the dominant-attractor approximation
            # observed in Fig. 10).
            moved = sum(
                self._true_offered.get(code, 0.0) for code in withdrawn
            )
            attractor = max(keep, key=lambda s: s.capacity_qps)
            total_served = 0.0
            total_offered = 0.0
            for site in keep:
                offered = self._true_offered.get(site.code, 0.0)
                if site.code == attractor.code:
                    offered += moved
                total_offered += offered
                total_served += min(offered, site.capacity_qps)
            if total_offered <= 0:
                return 1.0
            return total_served / total_offered

        best_set: set[str] = set()
        best = served_fraction(best_set)
        codes = [s.code for s in overloaded]
        for k in range(1, self.max_withdrawals + 1):
            for combo in itertools.combinations(codes, k):
                candidate = set(combo)
                if len(candidate) >= len(announced):
                    continue
                score = served_fraction(candidate)
                if score > best + 1e-9:
                    best, best_set = score, candidate
        for code in sorted(best_set):
            actions.append(Action(ActionKind.WITHDRAW, code))
        return actions
