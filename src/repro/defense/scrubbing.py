"""Traffic-scrubbing defense: the §2.2 commercial alternative.

The paper notes that websites defend with cloud scrubbing services --
divert traffic via BGP, filter, forward the clean remainder -- but
that root operators do not, "likely because Root DNS traffic is a very
atypical workload (DNS, not HTTP)".  This analytic model quantifies
the trade-off: scrubbers classify imperfectly, and on an atypical
workload the false-positive rate on legitimate traffic rises, so
scrubbing can cost more good traffic than absorbing would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.queueing import OverloadModel


@dataclass(frozen=True, slots=True)
class ScrubbingService:
    """A cloud scrubbing layer in front of one site.

    Parameters
    ----------
    capacity_qps:
        Ingest the scrubber can absorb; beyond it everything drops.
    detection_rate:
        Fraction of attack traffic the classifier removes.
    false_positive_rate:
        Fraction of legitimate traffic wrongly removed.  For HTTP-like
        workloads this is small; for the root's atypical all-UDP DNS
        mix, much higher -- the paper's stated reason scrubbing is not
        used.
    added_latency_ms:
        Detour latency through the scrubbing centre.
    """

    capacity_qps: float
    detection_rate: float = 0.95
    false_positive_rate: float = 0.02
    added_latency_ms: float = 30.0

    def __post_init__(self) -> None:
        if self.capacity_qps <= 0:
            raise ValueError("scrubber capacity must be positive")
        for name in ("detection_rate", "false_positive_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.added_latency_ms < 0:
            raise ValueError("latency cannot be negative")


@dataclass(frozen=True, slots=True)
class ScrubOutcome:
    """What comes out of the scrubbing centre."""

    forwarded_attack_qps: float
    forwarded_legit_qps: float
    dropped_legit_qps: float
    overflow_loss: float


def scrub(
    service: ScrubbingService, attack_qps: float, legit_qps: float
) -> ScrubOutcome:
    """Push a traffic mix through the scrubber."""
    if attack_qps < 0 or legit_qps < 0:
        raise ValueError("rates cannot be negative")
    total = attack_qps + legit_qps
    overflow_loss = 0.0
    if total > service.capacity_qps:
        overflow_loss = 1.0 - service.capacity_qps / total
    attack_in = attack_qps * (1.0 - overflow_loss)
    legit_in = legit_qps * (1.0 - overflow_loss)
    forwarded_attack = attack_in * (1.0 - service.detection_rate)
    forwarded_legit = legit_in * (1.0 - service.false_positive_rate)
    dropped_legit = legit_qps - forwarded_legit
    return ScrubOutcome(
        forwarded_attack_qps=forwarded_attack,
        forwarded_legit_qps=forwarded_legit,
        dropped_legit_qps=dropped_legit,
        overflow_loss=overflow_loss,
    )


def legit_served_with_scrubbing(
    service: ScrubbingService,
    site_capacity_qps: float,
    attack_qps: float,
    legit_qps: float,
    overload: OverloadModel | None = None,
) -> float:
    """Fraction of legitimate traffic served behind a scrubber."""
    if overload is None:
        overload = OverloadModel()
    outcome = scrub(service, attack_qps, legit_qps)
    offered = outcome.forwarded_attack_qps + outcome.forwarded_legit_qps
    loss = (
        overload.loss_fraction(offered, site_capacity_qps)
        if offered > 0
        else 0.0
    )
    served = outcome.forwarded_legit_qps * (1.0 - loss)
    return served / legit_qps if legit_qps > 0 else 1.0


def legit_served_absorbing(
    site_capacity_qps: float,
    attack_qps: float,
    legit_qps: float,
    overload: OverloadModel | None = None,
) -> float:
    """Fraction of legitimate traffic served by plain absorption."""
    if overload is None:
        overload = OverloadModel()
    offered = attack_qps + legit_qps
    if offered <= 0:
        return 1.0
    loss = overload.loss_fraction(offered, site_capacity_qps)
    return 1.0 - loss
