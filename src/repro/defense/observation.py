"""What an anycast operator can actually see during an attack.

The paper stresses (section 2.2) that optimal defense needs
information operators do not have: attack volume beyond capacity is
unmeasurable (the excess is dropped upstream), attacker locations are
hidden by spoofing, and route-change effects are hard to predict.

A controller therefore receives only *operator-visible* signals:

* per-site **accepted** load (what the servers answered),
* per-site **drop** rate at the ingress (interface counters),
* the announcement state the operator itself controls.

Everything else must be estimated.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SiteObservation:
    """One site's operator-visible state for one bin."""

    code: str
    capacity_qps: float
    accepted_qps: float
    dropped_qps: float
    announced: bool
    partial: bool

    def __post_init__(self) -> None:
        if self.capacity_qps <= 0:
            raise ValueError("capacity must be positive")
        if self.accepted_qps < 0 or self.dropped_qps < 0:
            raise ValueError("rates cannot be negative")

    @property
    def offered_qps(self) -> float:
        """Measured offered load (accepted + locally observed drops).

        This *understates* true offered load when drops happen
        upstream of the ingress counters -- exactly the measurement
        gap the paper describes.
        """
        return self.accepted_qps + self.dropped_qps

    @property
    def utilisation(self) -> float:
        """Measured offered load over capacity."""
        return self.offered_qps / self.capacity_qps

    @property
    def overloaded(self) -> bool:
        return self.utilisation > 1.0


@dataclass(frozen=True, slots=True)
class LetterObservation:
    """Operator view of one letter for one bin."""

    letter: str
    bin_index: int
    sites: tuple[SiteObservation, ...]

    def site(self, code: str) -> SiteObservation:
        for site in self.sites:
            if site.code == code:
                return site
        raise KeyError(f"no observation for site {code!r}")

    @property
    def total_accepted_qps(self) -> float:
        return sum(s.accepted_qps for s in self.sites)

    @property
    def total_dropped_qps(self) -> float:
        return sum(s.dropped_qps for s in self.sites)

    @property
    def announced_codes(self) -> tuple[str, ...]:
        return tuple(s.code for s in self.sites if s.announced)

    @property
    def headroom_qps(self) -> float:
        """Spare capacity across announced, non-overloaded sites."""
        return sum(
            max(0.0, s.capacity_qps - s.offered_qps)
            for s in self.sites
            if s.announced
        )
