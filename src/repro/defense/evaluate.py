"""Closed-loop evaluation of defense controllers.

Runs the same event scenario once per controller and compares how much
legitimate traffic each one served -- overall and during the event
windows -- plus how many routing actions it took.  This quantifies the
paper's closing speculation that explicit, automated policy management
could strengthen anycast defenses, and its caveat that operators act
on incomplete information.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.results import TableResult
from ..scenario.config import ScenarioConfig
from ..scenario.engine import ScenarioResult, simulate


@dataclass(frozen=True, slots=True)
class DefenseOutcome:
    """One controller's scorecard for one letter."""

    name: str
    letter: str
    served_overall: float
    served_during_events: float
    worst_bin: float
    routing_actions: int

    def __post_init__(self) -> None:
        for field in ("served_overall", "served_during_events",
                      "worst_bin"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0 + 1e-9:
                raise ValueError(f"{field} out of range: {value}")


def served_fractions(
    result: ScenarioResult, letter: str
) -> tuple[float, float, float]:
    """(overall, during-events, worst-bin) legit served fractions."""
    truth = result.truth[letter]
    offered = truth.legit_offered_qps
    served = truth.legit_served_qps
    mask = result.grid.event_mask()
    with np.errstate(divide="ignore", invalid="ignore"):
        per_bin = np.where(offered > 0, served / offered, 1.0)
    overall = float(served.sum() / offered.sum())
    during = float(served[mask].sum() / offered[mask].sum())
    worst = float(per_bin.min())
    return overall, during, worst


def evaluate_controller(
    base_config: ScenarioConfig,
    letter: str,
    name: str,
    controller_factory: Callable[[], object] | None,
) -> DefenseOutcome:
    """Run the scenario under one controller and score it.

    ``controller_factory=None`` keeps the deployment's built-in static
    policies (the historical behaviour).
    """
    controllers = (
        None
        if controller_factory is None
        else {letter: controller_factory()}
    )
    config = dataclasses.replace(base_config, controllers=controllers)
    result = simulate(config)
    overall, during, worst = served_fractions(result, letter)
    actions = len(result.deployments[letter].prefix.change_log())
    return DefenseOutcome(
        name=name,
        letter=letter,
        served_overall=overall,
        served_during_events=during,
        worst_bin=worst,
        routing_actions=actions,
    )


def compare_controllers(
    base_config: ScenarioConfig,
    letter: str,
    controllers: dict[str, Callable[[], object] | None],
) -> TableResult:
    """Score every controller on the same scenario; render a table."""
    outcomes = [
        evaluate_controller(base_config, letter, name, factory)
        for name, factory in controllers.items()
    ]
    rows = tuple(
        (
            o.name,
            round(o.served_overall, 3),
            round(o.served_during_events, 3),
            round(o.worst_bin, 3),
            o.routing_actions,
        )
        for o in outcomes
    )
    return TableResult(
        title=(
            f"Defense comparison for {letter}-Root "
            "(legit traffic served)"
        ),
        headers=("controller", "overall", "events", "worst bin",
                 "actions"),
        rows=rows,
    )
