"""Automated anycast defense: the paper's future-work exploration."""

from .controllers import (
    Action,
    ActionKind,
    Controller,
    GreedyShedController,
    NullController,
    OracleController,
    StaticPolicyController,
)
from .evaluate import (
    DefenseOutcome,
    compare_controllers,
    evaluate_controller,
    served_fractions,
)
from .observation import LetterObservation, SiteObservation
from .provisioning import (
    ProvisioningPlan,
    SitePlan,
    aggregate_vs_placed,
    provisioning_plan,
    provisioning_table,
)
from .scrubbing import (
    ScrubOutcome,
    ScrubbingService,
    legit_served_absorbing,
    legit_served_with_scrubbing,
    scrub,
)

__all__ = [
    "Action",
    "ActionKind",
    "Controller",
    "DefenseOutcome",
    "GreedyShedController",
    "LetterObservation",
    "NullController",
    "OracleController",
    "ProvisioningPlan",
    "ScrubOutcome",
    "ScrubbingService",
    "SiteObservation",
    "SitePlan",
    "StaticPolicyController",
    "compare_controllers",
    "aggregate_vs_placed",
    "evaluate_controller",
    "legit_served_absorbing",
    "legit_served_with_scrubbing",
    "provisioning_plan",
    "provisioning_table",
    "scrub",
    "served_fractions",
]
