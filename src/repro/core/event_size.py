"""Event-size estimation from RSSAC-002 reports (paper Table 3, §3.1).

The paper estimates how big the events were from daily RSSAC-002
statistics of the five reporting letters:

* a 7-day pre-event **baseline** (mean daily queries), with anomalous
  baseline days dropped (A-Root had an independent event on Nov 28);
* the **delta** on each event day, converted to a rate over the event
  duration (160 min on Nov 30, 60 min on Dec 1) and to a bitrate via
  the dominant query-size bin plus header overhead;
* a **lower bound** -- the sum of observed deltas of attacked
  reporting letters; a **scaled** value correcting for attacked
  letters that did not report; and an **upper bound** assuming every
  attacked letter received A-Root's (fully measured) rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.quality import QualityFlag
from ..rssac.reports import SIZE_BIN_WIDTH, DailyReport
from ..util.units import HEADER_OVERHEAD_BYTES, gbps
from .results import TableResult


class MissingReportError(ValueError):
    """A letter's RSSAC series lacks a required event-day report.

    Subclasses :class:`ValueError` so callers that treated missing
    days as invalid input keep working; :func:`event_size_table`
    catches it to degrade gracefully instead.
    """

    def __init__(self, letter: str, dates: list[str]) -> None:
        self.letter = letter
        self.dates = dates
        super().__init__(
            f"{letter}: missing event-day reports: {dates}"
        )

#: Event durations in seconds, per event date (section 2.3).
EVENT_DURATIONS = {"2015-11-30": 160 * 60.0, "2015-12-01": 60 * 60.0}

#: Baseline days whose query count exceeds this multiple of the median
#: baseline are dropped as anomalous (A-Root's Nov 28 event).
BASELINE_OUTLIER_FACTOR = 2.0


def _wire_bytes_from_bin(bin_left: int) -> float:
    """On-wire packet size estimated from a size-histogram bin."""
    return bin_left + SIZE_BIN_WIDTH / 2.0 + HEADER_OVERHEAD_BYTES


@dataclass(frozen=True, slots=True)
class LetterEventSize:
    """Table 3 numbers for one letter on one event day."""

    letter: str
    date: str
    delta_queries_mqps: float
    delta_queries_gbps: float
    unique_sources_m: float
    unique_ratio: float
    delta_responses_mqps: float
    delta_responses_gbps: float
    baseline_mqps: float
    baseline_unique_m: float
    attacked: bool


def split_reports(
    reports: tuple[DailyReport, ...], event_dates: tuple[str, ...]
) -> tuple[list[DailyReport], dict[str, DailyReport]]:
    """Separate baseline reports from event-day reports."""
    baseline = [r for r in reports if r.date not in event_dates]
    events = {r.date: r for r in reports if r.date in event_dates}
    missing = set(event_dates) - set(events)
    if missing:
        letter = reports[0].letter if reports else "?"
        raise MissingReportError(letter, sorted(missing))
    return baseline, events


def robust_baseline(reports: list[DailyReport]) -> tuple[float, float]:
    """Mean baseline (queries/day, uniques/day) with outliers dropped."""
    if not reports:
        raise ValueError("no baseline reports")
    queries = np.array([r.queries for r in reports])
    uniques = np.array([r.unique_sources for r in reports])
    median = np.median(queries)
    keep = queries <= BASELINE_OUTLIER_FACTOR * median
    if not keep.any():
        keep = np.ones_like(keep)
    return float(queries[keep].mean()), float(uniques[keep].mean())


def letter_event_size(
    reports: tuple[DailyReport, ...],
    date: str,
    attacked: bool,
    event_dates: tuple[str, ...] = ("2015-11-30", "2015-12-01"),
) -> LetterEventSize:
    """Table 3 row for one letter and one event day."""
    duration = EVENT_DURATIONS.get(date)
    if duration is None:
        raise ValueError(f"unknown event date {date!r}")
    baseline_reports, event_reports = split_reports(reports, event_dates)
    if not baseline_reports:
        raise MissingReportError(
            reports[0].letter if reports else "?", ["all baseline days"]
        )
    base_queries, base_uniques = robust_baseline(baseline_reports)
    base_responses = float(
        np.mean([r.responses for r in baseline_reports])
    )
    day = event_reports[date]

    delta_q = max(0.0, day.queries - base_queries)
    delta_r = max(0.0, day.responses - base_responses)
    q_rate = delta_q / duration
    r_rate = delta_r / duration

    attack_bins = {
        b: c
        for b, c in day.query_size_hist.items()
        if c > 0
    }
    # The attack bin is the dominant unusual bin; fall back to the
    # overall dominant bin.
    baseline_bins: set[int] = set()
    for report in baseline_reports:
        baseline_bins.update(report.query_size_hist)
    unusual = {
        b: c for b, c in attack_bins.items() if b not in baseline_bins
    }
    source = unusual or attack_bins
    q_bin = max(source, key=lambda b: source[b]) if source else 0
    r_bins = {
        b: c
        for b, c in day.response_size_hist.items()
        if b not in baseline_bins and c > 0
    }
    r_bin = max(r_bins, key=r_bins.get) if r_bins else 448

    return LetterEventSize(
        letter=day.letter,
        date=date,
        delta_queries_mqps=q_rate / 1e6,
        delta_queries_gbps=gbps(q_rate, _wire_bytes_from_bin(q_bin)),
        unique_sources_m=day.unique_sources / 1e6,
        unique_ratio=(
            day.unique_sources / base_uniques if base_uniques > 0 else np.nan
        ),
        delta_responses_mqps=r_rate / 1e6,
        delta_responses_gbps=gbps(r_rate, _wire_bytes_from_bin(r_bin)),
        baseline_mqps=base_queries / 86_400.0 / 1e6,
        baseline_unique_m=base_uniques / 1e6,
        attacked=attacked,
    )


@dataclass(frozen=True, slots=True)
class EventSizeBounds:
    """Lower / scaled / upper bounds for one event day (Table 3)."""

    date: str
    lower_mqps: float
    lower_gbps: float
    scaled_mqps: float
    scaled_gbps: float
    upper_mqps: float
    upper_gbps: float
    #: Degradation annotations (NaN bounds carry at least one flag).
    quality: tuple[QualityFlag, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.quality)


def estimate_bounds(
    sizes: list[LetterEventSize],
    date: str,
    n_attacked_letters: int,
    reference_letter: str = "A",
) -> EventSizeBounds:
    """Aggregate bounds from per-letter estimates for one event day.

    Letters that were not attacked (L in the paper) are excluded.
    The upper bound assumes all attacked letters received the
    reference letter's rate (A-Root measured the entire event).

    With no attacked-letter estimates at all (every attacked letter's
    reports missing) the bounds degrade to NaN with a quality flag
    rather than raising -- downstream tables still render.
    """
    attacked = [
        s for s in sizes if s.date == date and s.attacked
    ]
    if not attacked:
        return EventSizeBounds(
            date=date,
            lower_mqps=np.nan, lower_gbps=np.nan,
            scaled_mqps=np.nan, scaled_gbps=np.nan,
            upper_mqps=np.nan, upper_gbps=np.nan,
            quality=(
                QualityFlag(
                    metric="event_size",
                    detail=(
                        f"no attacked-letter estimates for {date}; "
                        "bounds are undefined"
                    ),
                ),
            ),
        )
    lower_mqps = sum(s.delta_queries_mqps for s in attacked)
    lower_gbps = sum(s.delta_queries_gbps for s in attacked)
    scale = n_attacked_letters / len(attacked)
    reference = next(
        (s for s in attacked if s.letter == reference_letter), None
    )
    if reference is None:
        reference = max(attacked, key=lambda s: s.delta_queries_mqps)
    return EventSizeBounds(
        date=date,
        lower_mqps=lower_mqps,
        lower_gbps=lower_gbps,
        scaled_mqps=lower_mqps * scale,
        scaled_gbps=lower_gbps * scale,
        upper_mqps=reference.delta_queries_mqps * n_attacked_letters,
        upper_gbps=reference.delta_queries_gbps * n_attacked_letters,
    )


def event_size_table(
    rssac: dict[str, tuple[DailyReport, ...]],
    attacked_letters: tuple[str, ...],
    date: str,
    n_attacked_letters: int | None = None,
) -> TableResult:
    """Table 3 for one event day, with bounds rows appended.

    Letters whose report series lacks the event day (or enough
    baseline days) are excluded from the table and flagged on the
    result's ``quality`` instead of aborting the whole table.
    """
    if n_attacked_letters is None:
        n_attacked_letters = len(attacked_letters)
    sizes: list[LetterEventSize] = []
    flags: list[QualityFlag] = []
    for letter in sorted(rssac):
        try:
            sizes.append(
                letter_event_size(
                    rssac[letter], date,
                    attacked=letter in attacked_letters,
                )
            )
        except MissingReportError as exc:
            flags.append(
                QualityFlag(
                    metric="event_size",
                    letter=letter,
                    detail=(
                        f"excluded: missing reports for {exc.dates}"
                    ),
                )
            )
    rows = [
        (
            s.letter + ("" if s.attacked else "*"),
            round(s.delta_queries_mqps, 2),
            round(s.delta_queries_gbps, 2),
            round(s.unique_sources_m, 1),
            round(s.unique_ratio, 1),
            round(s.delta_responses_mqps, 2),
            round(s.delta_responses_gbps, 2),
            round(s.baseline_mqps, 2),
        )
        for s in sizes
    ]
    bounds = estimate_bounds(sizes, date, n_attacked_letters)
    flags.extend(bounds.quality)
    rows.append(
        ("lower", round(bounds.lower_mqps, 2), round(bounds.lower_gbps, 2),
         "-", "-", "-", "-", "-")
    )
    rows.append(
        ("scaled", round(bounds.scaled_mqps, 2),
         round(bounds.scaled_gbps, 2), "-", "-", "-", "-", "-")
    )
    rows.append(
        ("upper", round(bounds.upper_mqps, 2), round(bounds.upper_gbps, 2),
         "-", "-", "-", "-", "-")
    )
    return TableResult(
        title=f"Table 3: event size estimates for {date} "
        "(* = not attacked)",
        headers=(
            "letter", "dq Mq/s", "dq Gb/s", "M IPs", "IP ratio",
            "dr Mq/s", "dr Gb/s", "base Mq/s",
        ),
        rows=tuple(rows),
        quality=tuple(flags),
    )
