"""Site count vs resilience correlation (paper section 3.2.1).

The paper reports a strong correlation (R^2 = 0.87) between how many
sites a letter operates and its worst responsiveness during the
events: more sites means more aggregate capacity and better isolation
of attack traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..datasets.observations import AtlasDataset
from ..faults.quality import QualityFlag
from .reachability import worst_responsiveness
from .results import TableResult


@dataclass(frozen=True, slots=True)
class SitesResilienceFit:
    """Linear fit of worst responsiveness against log site count."""

    letters: tuple[str, ...]
    site_counts: tuple[int, ...]
    worst: tuple[float, ...]
    slope: float
    intercept: float
    r_squared: float
    #: Degradation annotations (a NaN fit carries at least one flag).
    quality: tuple[QualityFlag, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.quality)


def sites_vs_resilience(
    dataset: AtlasDataset,
    site_counts: dict[str, int],
    exclude: tuple[str, ...] = ("A",),
) -> SitesResilienceFit:
    """Fit worst responsiveness vs log10(site count) across letters.

    *site_counts* maps letters to deployed site counts (Table 2).
    A-Root is excluded by default, as in the paper (its 30-minute
    probing cadence makes its dip unobservable).

    With fewer than three usable letters (missing observations, heavy
    exclusions) no line can be fit; the result degrades to NaN fit
    parameters with a quality flag instead of raising, keeping the
    per-letter worst-responsiveness numbers that do exist.
    """
    letters = [
        letter
        for letter in sorted(dataset.letters)
        if letter in site_counts and letter not in exclude
    ]
    if len(letters) < 3:
        worst = tuple(
            float(worst_responsiveness(dataset, letter))
            for letter in letters
        )
        return SitesResilienceFit(
            letters=tuple(letters),
            site_counts=tuple(site_counts[letter] for letter in letters),
            worst=worst,
            slope=np.nan,
            intercept=np.nan,
            r_squared=np.nan,
            quality=(
                QualityFlag(
                    metric="correlation",
                    detail=(
                        f"only {len(letters)} usable letter(s); need "
                        "three for a fit -- R^2 is undefined"
                    ),
                ),
            ),
        )
    counts = np.array([site_counts[letter] for letter in letters])
    worst = np.array(
        [worst_responsiveness(dataset, letter) for letter in letters]
    )
    fit = stats.linregress(np.log10(counts), worst)
    return SitesResilienceFit(
        letters=tuple(letters),
        site_counts=tuple(int(c) for c in counts),
        worst=tuple(float(w) for w in worst),
        slope=float(fit.slope),
        intercept=float(fit.intercept),
        r_squared=float(fit.rvalue**2),
    )


def correlation_table(fit: SitesResilienceFit) -> TableResult:
    """The fit as a table, letters plus the R^2 row."""
    rows = [
        (letter, fit.site_counts[i], round(fit.worst[i], 3))
        for i, letter in enumerate(fit.letters)
    ]
    rows.append(("R^2", "-", round(fit.r_squared, 3)))
    return TableResult(
        title="Sites vs worst responsiveness (section 3.2.1)",
        headers=("letter", "sites", "worst/median"),
        rows=tuple(rows),
        quality=fit.quality,
    )
