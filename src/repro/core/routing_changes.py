"""BGP route-change analysis (paper Figure 9 and section 3.4.1).

The BGPmon collectors log best-path changes per letter; this module
shapes them into the Fig. 9 series and quantifies how strongly route
churn concentrates inside the event windows -- the paper's evidence
that the flips of Fig. 8 are (partly) route withdrawals rather than
load-balancer artifacts.
"""

from __future__ import annotations

import numpy as np

from ..util.timegrid import EVENTS, Interval, TimeGrid
from .results import Series, SeriesBundle


def route_change_series(
    route_changes: dict[str, np.ndarray], grid: TimeGrid
) -> SeriesBundle:
    """Fig. 9: per-letter BGP updates per bin."""
    hours = grid.hours()
    series: list[Series] = []
    for letter in sorted(route_changes):
        counts = np.asarray(route_changes[letter], dtype=np.float64)
        if counts.shape != hours.shape:
            raise ValueError(f"{letter}: series length mismatch")
        series.append(Series(name=letter, hours=hours, values=counts))
    return SeriesBundle(
        title="Fig. 9: BGP route changes per 10-minute bin",
        series=tuple(series),
    )


def event_concentration(
    counts: np.ndarray,
    grid: TimeGrid,
    events: tuple[Interval, ...] = EVENTS,
) -> float:
    """Fraction of all route churn that falls inside event bins.

    1.0 means every update happened during an event; the expected
    value under uniform churn is the events' share of the window
    (about 7.6 % for the paper's 220 minutes over two days).
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    mask = grid.event_mask(events)
    return float(counts[mask].sum() / total)


def letters_with_event_churn(
    route_changes: dict[str, np.ndarray],
    grid: TimeGrid,
    min_concentration: float = 0.35,
) -> list[str]:
    """Letters whose churn clearly concentrates in the events.

    The paper reads Fig. 9 as event-driven route changes for letters
    C, E, F, G, H, J and K.  Post-event re-announcements land just
    outside the event windows, so the default threshold accepts
    series where a good third of the churn is event-aligned.
    """
    return [
        letter
        for letter in sorted(route_changes)
        if event_concentration(route_changes[letter], grid)
        >= min_concentration
        and route_changes[letter].sum() > 0
    ]
