"""Anycast catchment efficiency: do clients reach a nearby site?

The paper's related work (section 4) spans a decade of studies of
root anycast performance -- whether BGP actually routes clients to a
close site (Fan et al., Sarat et al., Ballani et al.).  This module
adds that lens to the reproduction: for every vantage point, compare
the geographic distance to the site that *answered* against the
nearest announced site, yielding a distance-inflation distribution
per letter.

Under stress this doubles as a routing-damage measure: withdrawals
push catchments to farther sites, visible as inflation growth during
the events (the mechanism behind the Fig. 4 RTT steps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.observations import AtlasDataset
from ..rootdns.deployment import LetterDeployment
from ..util.geo import haversine_km_vec
from .results import Series, TableResult


@dataclass(frozen=True, slots=True)
class EfficiencyStats:
    """Catchment efficiency of one letter over a set of bins."""

    letter: str
    nearest_fraction: float
    median_inflation_km: float
    p90_inflation_km: float
    median_distance_km: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.nearest_fraction <= 1.0:
            raise ValueError("nearest_fraction must be within [0, 1]")


def _distances(
    dataset: AtlasDataset, deployment: LetterDeployment
) -> np.ndarray:
    """(n_vps, n_sites) great-circle distances."""
    vps = dataset.vps
    site_lats = np.array(
        [s.location.lat for s in deployment.spec.sites]
    )
    site_lons = np.array(
        [s.location.lon for s in deployment.spec.sites]
    )
    return haversine_km_vec(
        vps.lats[:, None], vps.lons[:, None],
        site_lats[None, :], site_lons[None, :],
    )


def catchment_efficiency(
    dataset: AtlasDataset,
    deployment: LetterDeployment,
    bins: np.ndarray | None = None,
    nearest_tolerance_km: float = 100.0,
) -> EfficiencyStats:
    """Efficiency stats over *bins* (default: the whole window).

    A VP counts as "at the nearest site" when its answering site is
    within *nearest_tolerance_km* of its true nearest site's distance.
    """
    letter = deployment.letter
    obs = dataset.letter(letter)
    distances = _distances(dataset, deployment)
    nearest = distances.min(axis=1)

    if bins is None:
        bins = np.arange(obs.n_bins)
    site_idx = obs.site_idx[bins]
    success = site_idx >= 0
    if not success.any():
        raise ValueError(f"no successful observations for {letter}")

    vp_index = np.broadcast_to(
        np.arange(obs.n_vps), site_idx.shape
    )[success]
    sites = site_idx[success].astype(np.int64)
    actual = distances[vp_index, sites]
    baseline = nearest[vp_index]
    inflation = actual - baseline

    return EfficiencyStats(
        letter=letter,
        nearest_fraction=float(
            (inflation <= nearest_tolerance_km).mean()
        ),
        median_inflation_km=float(np.median(inflation)),
        p90_inflation_km=float(np.percentile(inflation, 90)),
        median_distance_km=float(np.median(actual)),
    )


def efficiency_table(
    dataset: AtlasDataset,
    deployments: dict[str, LetterDeployment],
    bins: np.ndarray | None = None,
) -> TableResult:
    """Per-letter efficiency comparison."""
    rows: list[tuple[object, ...]] = []
    for letter in sorted(deployments):
        if letter not in dataset.letters:
            continue
        stats = catchment_efficiency(
            dataset, deployments[letter], bins
        )
        rows.append(
            (
                letter,
                round(stats.nearest_fraction, 2),
                round(stats.median_distance_km),
                round(stats.median_inflation_km),
                round(stats.p90_inflation_km),
            )
        )
    return TableResult(
        title="Anycast catchment efficiency (distance to answering site)",
        headers=("letter", "near-frac", "med km", "med infl", "p90 infl"),
        rows=tuple(rows),
    )


def inflation_series(
    dataset: AtlasDataset, deployment: LetterDeployment
) -> Series:
    """Per-bin median distance inflation for one letter.

    Rises when withdrawals push catchments to farther sites.
    """
    letter = deployment.letter
    obs = dataset.letter(letter)
    distances = _distances(dataset, deployment)
    nearest = distances.min(axis=1)
    values = np.full(obs.n_bins, np.nan)
    for b in range(obs.n_bins):
        row = obs.site_idx[b]
        mask = row >= 0
        if not mask.any():
            continue
        actual = distances[np.flatnonzero(mask), row[mask].astype(int)]
        values[b] = np.median(actual - nearest[mask])
    return Series(
        name=f"{letter} inflation (km)",
        hours=dataset.grid.hours(),
        values=values,
    )
