"""Data cleaning, following the paper's section 2.4.1.

Two classes of vantage points are removed before analysis:

* **old firmware** -- probes running firmware older than version 4570
  (released early 2013) may measure with outdated methods;
* **hijacked** -- probes whose root queries are answered by a third
  party, identified by the *combination* of CHAOS replies that match
  no known letter pattern and unusually short RTTs (under 7 ms,
  following Fan et al.).  The paper found 74 of 9363 probes (< 1 %)
  in this class.

Cleaning preserves nearly all VPs; the report records exactly what was
dropped and why.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.observations import (
    MIN_FIRMWARE,
    RESP_BOGUS,
    AtlasDataset,
)

#: RTT below which a non-matching reply is considered locally answered.
HIJACK_RTT_THRESHOLD_MS = 7.0

#: Fraction of a VP's replies that must be non-matching to flag it.
BOGUS_FRACTION_THRESHOLD = 0.5


@dataclass(frozen=True, slots=True)
class CleaningReport:
    """What cleaning did, for the record."""

    n_total: int
    n_old_firmware: int
    n_hijacked: int
    old_firmware_ids: tuple[int, ...]
    hijacked_ids: tuple[int, ...]

    @property
    def n_kept(self) -> int:
        return self.n_total - self.n_old_firmware - self.n_hijacked

    @property
    def kept_fraction(self) -> float:
        if self.n_total == 0:
            return 0.0
        return self.n_kept / self.n_total


def detect_hijacked(dataset: AtlasDataset) -> np.ndarray:
    """Boolean mask of VPs that look hijacked.

    A VP is flagged when, across all letters, most of its replies fail
    to parse as any letter's identity *and* those replies come back
    suspiciously fast (both conditions, per the paper).
    """
    n_vps = len(dataset.vps)
    bogus_counts = np.zeros(n_vps)
    reply_counts = np.zeros(n_vps)
    fast_bogus = np.zeros(n_vps)
    for obs in dataset.letters.values():
        is_bogus = obs.site_idx == RESP_BOGUS
        has_reply = (obs.site_idx >= 0) | is_bogus
        bogus_counts += is_bogus.sum(axis=0)
        reply_counts += has_reply.sum(axis=0)
        with np.errstate(invalid="ignore"):
            fast = is_bogus & (obs.rtt_ms < HIJACK_RTT_THRESHOLD_MS)
        fast_bogus += fast.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        bogus_fraction = np.where(
            reply_counts > 0, bogus_counts / reply_counts, 0.0
        )
        fast_fraction = np.where(
            bogus_counts > 0, fast_bogus / bogus_counts, 0.0
        )
    return (bogus_fraction > BOGUS_FRACTION_THRESHOLD) & (
        fast_fraction > 0.5
    )


def clean_dataset(
    dataset: AtlasDataset, min_firmware: int = MIN_FIRMWARE
) -> tuple[AtlasDataset, CleaningReport]:
    """Apply the section-2.4.1 cleaning; returns (cleaned, report)."""
    old = dataset.vps.firmware < min_firmware
    hijacked = detect_hijacked(dataset) & ~old
    keep = ~(old | hijacked)
    report = CleaningReport(
        n_total=len(dataset.vps),
        n_old_firmware=int(old.sum()),
        n_hijacked=int(hijacked.sum()),
        old_firmware_ids=tuple(
            int(v) for v in dataset.vps.ids[old]
        ),
        hijacked_ids=tuple(int(v) for v in dataset.vps.ids[hijacked]),
    )
    return dataset.select_vps(keep), report
