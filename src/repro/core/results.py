"""Common result containers for the analysis toolkit.

Every analysis produces either a :class:`Series` bundle (time series
on the paper's hour axis) or a :class:`TableResult` (rows matching a
paper table).  Both render to aligned ASCII for the benchmark harness
and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..faults.quality import QualityFlag

#: Characters used for the inline sparklines in rendered series.
_SPARK = " .:-=+*#%@"


@dataclass(frozen=True, slots=True)
class Series:
    """One named time series over the observation window."""

    name: str
    hours: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.hours.shape != self.values.shape:
            raise ValueError(f"series {self.name!r}: axis mismatch")

    def min(self) -> float:
        return float(np.nanmin(self.values)) if self.values.size else np.nan

    def max(self) -> float:
        return float(np.nanmax(self.values)) if self.values.size else np.nan

    def median(self) -> float:
        return (
            float(np.nanmedian(self.values)) if self.values.size else np.nan
        )

    def at_hour(self, hour: float) -> float:
        """Value of the bin whose centre is closest to *hour*."""
        if self.values.size == 0:
            raise ValueError("empty series")
        index = int(np.argmin(np.abs(self.hours - hour)))
        return float(self.values[index])

    def window(self, start_hour: float, end_hour: float) -> "Series":
        """Sub-series restricted to ``[start_hour, end_hour)``."""
        mask = (self.hours >= start_hour) & (self.hours < end_hour)
        return Series(self.name, self.hours[mask], self.values[mask])

    def sparkline(self, width: int = 72) -> str:
        """A coarse ASCII rendering of the series shape."""
        if self.values.size == 0:
            return ""
        values = np.nan_to_num(self.values, nan=0.0)
        if values.size > width:
            edges = np.linspace(0, values.size, width + 1, dtype=int)
            values = np.array(
                [
                    values[a:b].mean() if b > a else 0.0
                    for a, b in zip(edges, edges[1:])
                ]
            )
        low, high = values.min(), values.max()
        span = high - low if high > low else 1.0
        levels = ((values - low) / span * (len(_SPARK) - 1)).astype(int)
        return "".join(_SPARK[level] for level in levels)


@dataclass(frozen=True, slots=True)
class SeriesBundle:
    """A set of series sharing one x-axis (one paper figure)."""

    title: str
    series: tuple[Series, ...]
    #: Degradation annotations: which inputs were missing or partial
    #: when this figure was computed (empty for clean data).
    quality: tuple[QualityFlag, ...] = ()

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"{self.title}: no series {name!r}")

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.series]

    def render(self, width: int = 72) -> str:
        """Aligned sparkline view of every series."""
        lines = [self.title]
        label_width = max((len(s.name) for s in self.series), default=0)
        for s in self.series:
            lines.append(
                f"  {s.name:<{label_width}}  "
                f"[{s.min():>10.1f} .. {s.max():>10.1f}]  "
                f"{s.sparkline(width)}"
            )
        for flag in self.quality:
            lines.append(f"  ! {flag}")
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class TableResult:
    """One rendered-as-text table (one paper table)."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...] = field(default=())
    #: Degradation annotations: which inputs were missing or partial
    #: when this table was computed (empty for clean data).
    quality: tuple[QualityFlag, ...] = ()

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ValueError(
                    f"{self.title}: row width {len(row)} != "
                    f"{len(self.headers)} headers"
                )

    def column(self, header: str) -> list[object]:
        """All values of one column."""
        try:
            index = self.headers.index(header)
        except ValueError:
            raise KeyError(
                f"{self.title}: no column {header!r}"
            ) from None
        return [row[index] for row in self.rows]

    def row_for(self, key: object) -> tuple[object, ...]:
        """The row whose first cell equals *key*."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"{self.title}: no row {key!r}")

    def render(self) -> str:
        """Aligned ASCII rendering."""
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.2f}"
            return str(cell)

        table = [tuple(fmt(c) for c in row) for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in table)) if table else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title]
        lines.append(
            "  " + "  ".join(
                h.ljust(widths[i]) for i, h in enumerate(self.headers)
            )
        )
        lines.append("  " + "  ".join("-" * w for w in widths))
        for row in table:
            lines.append(
                "  " + "  ".join(
                    row[i].rjust(widths[i]) for i in range(len(row))
                )
            )
        for flag in self.quality:
            lines.append(f"  ! {flag}")
        return "\n".join(lines)
