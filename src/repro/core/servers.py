"""Per-server analysis within a site (paper Figure 12, section 3.5).

CHAOS identities name the individual server behind a site's load
balancer, so we can count how many VPs each server answers per bin.
The paper's observation: per-server visibility under stress differs
per site (K-FRA collapsed onto one server per event; K-NRT's three
servers all kept answering, degraded), so measurement studies must
look at *all* servers of a site.
"""

from __future__ import annotations

import numpy as np

from ..datasets.observations import AtlasDataset
from .results import Series, SeriesBundle


def server_reachability(
    dataset: AtlasDataset, letter: str, site: str
) -> SeriesBundle:
    """Fig. 12: VPs answered by each server of one site, per bin."""
    obs = dataset.letter(letter)
    try:
        site_index = obs.site_codes.index(site)
    except ValueError:
        raise KeyError(f"{letter}-Root has no site {site!r}") from None
    at_site = obs.site_idx == site_index
    servers = sorted(
        int(s) for s in np.unique(obs.server[at_site]) if s > 0
    )
    hours = dataset.grid.hours()
    series: list[Series] = []
    for srv in servers:
        counts = (at_site & (obs.server == srv)).sum(axis=1)
        series.append(
            Series(
                name=f"{letter}-{site}-S{srv}",
                hours=hours,
                values=counts.astype(np.float64),
            )
        )
    return SeriesBundle(
        title=f"Fig. 12: per-server reachability at {letter}-{site}",
        series=tuple(series),
    )


def answering_servers_per_bin(
    dataset: AtlasDataset, letter: str, site: str
) -> Series:
    """How many distinct servers answered per bin at one site."""
    obs = dataset.letter(letter)
    try:
        site_index = obs.site_codes.index(site)
    except ValueError:
        raise KeyError(f"{letter}-Root has no site {site!r}") from None
    at_site = obs.site_idx == site_index
    counts = np.zeros(obs.n_bins, dtype=np.float64)
    for b in range(obs.n_bins):
        servers = obs.server[b][at_site[b]]
        counts[b] = np.unique(servers[servers > 0]).size
    return Series(
        name=f"{letter}-{site} servers answering",
        hours=dataset.grid.hours(),
        values=counts,
    )


def shed_detected(
    dataset: AtlasDataset,
    letter: str,
    site: str,
    event_hours: tuple[float, float],
) -> bool:
    """Whether the site collapsed onto fewer servers during an event.

    True when the number of distinct answering servers during the
    event drops below its pre-event median (the K-FRA signature).
    """
    series = answering_servers_per_bin(dataset, letter, site)
    before = series.window(0.0, event_hours[0]).values
    during = series.window(*event_hours).values
    if before.size == 0 or during.size == 0:
        return False
    return float(np.median(during)) < float(np.median(before))
