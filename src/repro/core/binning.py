"""Raw probe records -> ten-minute bins (paper section 2.4.1).

RIPE probes each letter every four minutes at arbitrary phases, so the
paper synchronises observations onto ten-minute bins (2.5 probing
intervals).  Within one bin a VP may have several differing results;
the paper's preference order is **site over errors, errors over
missing replies**.  This module implements that rule over raw
:class:`~repro.datasets.io.ProbeRecord` streams, parsing CHAOS answers
into sites and servers with the per-letter identity patterns.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..datasets.io import ProbeRecord
from ..datasets.observations import (
    RESP_BOGUS,
    RESP_ERROR,
    RESP_NOT_PROBED,
    RESP_TIMEOUT,
    LetterObservations,
)
from ..dns.chaos import parse_identity
from ..util.timegrid import TimeGrid

#: Preference rank of each outcome class; higher wins within a bin.
_RANK_SITE = 3
_RANK_BOGUS = 2  # a reply, but unparseable: kept for hijack detection
_RANK_ERROR = 1
_RANK_TIMEOUT = 0


def bin_probe_records(
    records: Iterable[ProbeRecord],
    letter: str,
    grid: TimeGrid,
    vp_ids: list[int],
    site_codes: list[str] | None = None,
) -> LetterObservations:
    """Bin raw records of one letter onto *grid*.

    *site_codes* fixes the site index order; when ``None`` the order
    of first appearance is used.  Records outside the grid or for
    other letters are ignored.
    """
    vp_pos = {int(v): i for i, v in enumerate(vp_ids)}
    codes: list[str] = list(site_codes) if site_codes else []
    code_idx = {c: i for i, c in enumerate(codes)}
    extendable = site_codes is None

    n_vps = len(vp_ids)
    site_idx = np.full((grid.n_bins, n_vps), RESP_NOT_PROBED, dtype=np.int16)
    rtt_ms = np.full((grid.n_bins, n_vps), np.nan, dtype=np.float32)
    server = np.zeros((grid.n_bins, n_vps), dtype=np.int16)
    rank = np.full((grid.n_bins, n_vps), -1, dtype=np.int8)
    best_rtt_rank = np.full((grid.n_bins, n_vps), np.inf)

    for record in records:
        if record.letter != letter:
            continue
        pos = vp_pos.get(record.vp_id)
        if pos is None:
            continue
        if not grid.start <= record.timestamp < grid.end:
            continue
        b = grid.bin_index(record.timestamp)

        if record.answer is not None:
            identity = parse_identity(letter, record.answer)
            if identity is None:
                outcome_rank = _RANK_BOGUS
                outcome = RESP_BOGUS
                outcome_server = 0
            else:
                outcome_rank = _RANK_SITE
                if identity.site not in code_idx:
                    if not extendable:
                        raise ValueError(
                            f"unknown site {identity.site!r} for fixed "
                            f"site list of {letter}"
                        )
                    code_idx[identity.site] = len(codes)
                    codes.append(identity.site)
                outcome = code_idx[identity.site]
                outcome_server = identity.server
        elif record.rcode is not None and record.rcode != 0:
            outcome_rank = _RANK_ERROR
            outcome = RESP_ERROR
            outcome_server = 0
        else:
            outcome_rank = _RANK_TIMEOUT
            outcome = RESP_TIMEOUT
            outcome_server = 0

        if outcome_rank < rank[b, pos]:
            continue
        is_upgrade = outcome_rank > rank[b, pos]
        if is_upgrade:
            rank[b, pos] = outcome_rank
            site_idx[b, pos] = outcome
            server[b, pos] = outcome_server
            rtt = record.rtt_ms if record.rtt_ms is not None else np.nan
            rtt_ms[b, pos] = rtt
            best_rtt_rank[b, pos] = rtt if record.rtt_ms is not None else (
                np.inf
            )
        else:
            # Same rank: keep the site already chosen, but prefer the
            # best (smallest) RTT among successful replies.
            if (
                outcome_rank == _RANK_SITE
                and record.rtt_ms is not None
                and record.rtt_ms < best_rtt_rank[b, pos]
            ):
                site_idx[b, pos] = outcome
                server[b, pos] = outcome_server
                rtt_ms[b, pos] = record.rtt_ms
                best_rtt_rank[b, pos] = record.rtt_ms

    return LetterObservations(
        letter=letter,
        site_codes=codes,
        site_idx=site_idx,
        rtt_ms=rtt_ms,
        server=server,
    )
