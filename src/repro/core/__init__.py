"""The paper's analysis toolkit: one module per table/figure family.

* cleaning, binning -- section 2.4.1 data preparation
* reachability -- Fig. 3; rtt -- Figs. 4, 7, 13
* catchments -- Table 2 (observed), Figs. 5-6
* flips -- Figs. 8, 10, 11; routing_changes -- Fig. 9
* servers -- Fig. 12; event_size -- Table 3
* collateral -- Figs. 14-15; policies -- section 2.2 model
* correlation -- section 3.2.1's R^2
"""

from .binning import bin_probe_records
from .catchments import (
    STABILITY_THRESHOLD,
    SiteCatchmentStats,
    critical_episodes,
    observed_site_count,
    observed_sites_table,
    site_minmax,
    site_minmax_table,
    site_timeseries,
    vps_per_site,
)
from .cleaning import (
    BOGUS_FRACTION_THRESHOLD,
    HIJACK_RTT_THRESHOLD_MS,
    CleaningReport,
    clean_dataset,
    detect_hijacked,
)
from .collateral import (
    MIN_DIP_FRACTION,
    CollateralSite,
    collateral_figure,
    collateral_sites,
    nl_event_minimum,
    nl_figure,
    silence_score,
)
from .correlation import (
    SitesResilienceFit,
    correlation_table,
    sites_vs_resilience,
)
from .efficiency import (
    EfficiencyStats,
    catchment_efficiency,
    efficiency_table,
    inflation_series,
)
from ..faults.quality import DataQuality, QualityFlag, probe_gap_flags
from .event_size import (
    EVENT_DURATIONS,
    EventSizeBounds,
    LetterEventSize,
    MissingReportError,
    estimate_bounds,
    event_size_table,
    letter_event_size,
    robust_baseline,
)
from .flips import (
    BEHAVIOR_FAILED,
    BEHAVIOR_SHIFT_RETURN,
    BEHAVIOR_SHIFT_STAY,
    BEHAVIOR_STUCK,
    BEHAVIOR_UNAFFECTED,
    VpTimeline,
    behaviour_census,
    classify_behaviour,
    count_flips,
    flip_destinations,
    flips_figure,
    vp_timelines,
)
from .policies import (
    AnycastModel,
    LinkGroup,
    best_withdrawal,
    classify_case,
    default_assignment,
    expected_happiness,
    figure2_model,
    happiness,
    optimal_assignment,
    withdrawal_assignment,
)
from .reachability import (
    letter_reachability,
    reachability_figure,
    worst_responsiveness,
)
from .results import Series, SeriesBundle, TableResult
from .routing_changes import (
    event_concentration,
    letters_with_event_churn,
    route_change_series,
)
from .rtt import (
    letter_rtt_series,
    rtt_figure,
    rtt_significantly_changed,
    server_rtt_series,
    site_rtt_figure,
    site_rtt_series,
)
from .servers import (
    answering_servers_per_bin,
    server_reachability,
    shed_detected,
)

__all__ = [
    "AnycastModel",
    "BEHAVIOR_FAILED",
    "BEHAVIOR_SHIFT_RETURN",
    "BEHAVIOR_SHIFT_STAY",
    "BEHAVIOR_STUCK",
    "BEHAVIOR_UNAFFECTED",
    "BOGUS_FRACTION_THRESHOLD",
    "CleaningReport",
    "CollateralSite",
    "DataQuality",
    "EVENT_DURATIONS",
    "EfficiencyStats",
    "EventSizeBounds",
    "HIJACK_RTT_THRESHOLD_MS",
    "LetterEventSize",
    "LinkGroup",
    "MIN_DIP_FRACTION",
    "MissingReportError",
    "QualityFlag",
    "STABILITY_THRESHOLD",
    "Series",
    "SeriesBundle",
    "SiteCatchmentStats",
    "SitesResilienceFit",
    "TableResult",
    "VpTimeline",
    "answering_servers_per_bin",
    "behaviour_census",
    "best_withdrawal",
    "bin_probe_records",
    "catchment_efficiency",
    "classify_behaviour",
    "classify_case",
    "clean_dataset",
    "collateral_figure",
    "collateral_sites",
    "correlation_table",
    "count_flips",
    "critical_episodes",
    "default_assignment",
    "detect_hijacked",
    "efficiency_table",
    "estimate_bounds",
    "event_concentration",
    "event_size_table",
    "expected_happiness",
    "figure2_model",
    "flip_destinations",
    "flips_figure",
    "happiness",
    "inflation_series",
    "letter_event_size",
    "letter_reachability",
    "letter_rtt_series",
    "letters_with_event_churn",
    "nl_event_minimum",
    "nl_figure",
    "observed_site_count",
    "observed_sites_table",
    "optimal_assignment",
    "probe_gap_flags",
    "reachability_figure",
    "robust_baseline",
    "route_change_series",
    "rtt_figure",
    "rtt_significantly_changed",
    "server_reachability",
    "server_rtt_series",
    "shed_detected",
    "silence_score",
    "site_minmax",
    "site_minmax_table",
    "site_rtt_figure",
    "site_rtt_series",
    "site_timeseries",
    "sites_vs_resilience",
    "vp_timelines",
    "vps_per_site",
    "withdrawal_assignment",
    "worst_responsiveness",
]
