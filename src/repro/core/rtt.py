"""RTT analyses (paper Figures 4, 7 and 13).

Median RTT of *successful* queries, at three granularities:

* per letter (Fig. 4) -- baseline differences reflect each letter's
  site footprint relative to the (Europe-biased) VPs; route shifts
  under stress move the median (H-Root's east-to-west coast step);
* per site (Fig. 7) -- overloaded absorbers show queueing delays of
  seconds (K-AMS: ~30 ms to 1-2 s);
* per server within a site (Fig. 13) -- uneven load behind one load
  balancer (K-NRT-S2 slower than its siblings).
"""

from __future__ import annotations

import numpy as np

from ..datasets.observations import AtlasDataset
from .results import Series, SeriesBundle


def _median_ignoring_empty(
    values: np.ndarray, mask: np.ndarray, min_samples: int = 1
) -> np.ndarray:
    """Per-bin median of *values* where *mask*; NaN for sparse bins.

    Bins with fewer than *min_samples* observations yield NaN --
    medians over a handful of probes (A-Root's 30-minute cadence) are
    too noisy to interpret.
    """
    n_bins = values.shape[0]
    out = np.full(n_bins, np.nan)
    for b in range(n_bins):
        selected = values[b][mask[b]]
        if selected.size >= min_samples:
            out[b] = np.median(selected)
    return out


def letter_rtt_series(dataset: AtlasDataset, letter: str) -> Series:
    """Per-bin median RTT of successful queries for one letter."""
    obs = dataset.letter(letter)
    success = obs.site_idx >= 0
    medians = _median_ignoring_empty(obs.rtt_ms, success)
    return Series(name=letter, hours=dataset.grid.hours(), values=medians)


def rtt_figure(
    dataset: AtlasDataset, letters: list[str] | None = None
) -> SeriesBundle:
    """Figure 4: median RTT per letter."""
    if letters is None:
        letters = sorted(dataset.letters)
    return SeriesBundle(
        title="Fig. 4: median RTT of successful queries (ms)",
        series=tuple(letter_rtt_series(dataset, L) for L in letters),
    )


def rtt_significantly_changed(
    dataset: AtlasDataset,
    letter: str,
    factor: float = 1.8,
    min_delta_ms: float = 50.0,
    min_samples: int = 10,
) -> bool:
    """Whether a letter's median RTT moved significantly at any point.

    Requires both a relative (*factor*) and an absolute
    (*min_delta_ms*) excursion over the letter's own baseline, over
    bins with at least *min_samples* successful probes.  The paper
    omits letters with no significant change from Fig. 4.
    """
    obs = dataset.letter(letter)
    success = obs.site_idx >= 0
    medians = _median_ignoring_empty(obs.rtt_ms, success, min_samples)
    baseline = float(np.nanmedian(medians))
    if not np.isfinite(baseline) or baseline <= 0:
        return False
    peak = float(np.nanmax(medians))
    return peak > max(factor * baseline, baseline + min_delta_ms)


def site_rtt_series(dataset: AtlasDataset, letter: str, site: str) -> Series:
    """Figure 7: per-bin median RTT of one site's successful queries."""
    obs = dataset.letter(letter)
    try:
        index = obs.site_codes.index(site)
    except ValueError:
        raise KeyError(f"{letter}-Root has no site {site!r}") from None
    at_site = obs.site_idx == index
    medians = _median_ignoring_empty(obs.rtt_ms, at_site)
    return Series(
        name=f"{letter}-{site}",
        hours=dataset.grid.hours(),
        values=medians,
    )


def site_rtt_figure(
    dataset: AtlasDataset, letter: str, sites: list[str]
) -> SeriesBundle:
    """Figure 7: median RTT for selected sites of one letter."""
    return SeriesBundle(
        title=f"Fig. 7: median RTT for selected {letter}-Root sites (ms)",
        series=tuple(site_rtt_series(dataset, letter, s) for s in sites),
    )


def server_rtt_series(
    dataset: AtlasDataset, letter: str, site: str
) -> SeriesBundle:
    """Figure 13: per-server median RTT at one site."""
    obs = dataset.letter(letter)
    try:
        index = obs.site_codes.index(site)
    except ValueError:
        raise KeyError(f"{letter}-Root has no site {site!r}") from None
    at_site = obs.site_idx == index
    servers = sorted(
        int(s) for s in np.unique(obs.server[at_site]) if s > 0
    )
    series: list[Series] = []
    for srv in servers:
        mask = at_site & (obs.server == srv)
        medians = _median_ignoring_empty(obs.rtt_ms, mask)
        series.append(
            Series(
                name=f"{letter}-{site}-S{srv}",
                hours=dataset.grid.hours(),
                values=medians,
            )
        )
    return SeriesBundle(
        title=f"Fig. 13: per-server median RTT at {letter}-{site} (ms)",
        series=tuple(series),
    )
