"""Site catchment analyses (paper Table 2 "observed" and Figures 5-6).

A site's catchment, as seen from the measurement platform, is the set
of VPs whose CHAOS replies name that site.  The paper studies:

* how many sites are observed at all per letter (Table 2, right
  column);
* each site's minimum/maximum catchment over the window, normalised
  to its median (Fig. 5) -- dips mean withdrawal or loss, rises mean
  absorbed catchment from elsewhere;
* the full per-site time series with "critical" below-median episodes
  (Fig. 6).

Sites whose median catchment is below 20 VPs are flagged unstable, as
in section 2.4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.observations import AtlasDataset
from ..faults.quality import probe_gap_flags
from .results import Series, SeriesBundle, TableResult

#: Median-VP threshold below which per-site stats are unstable.
STABILITY_THRESHOLD = 20


def vps_per_site(dataset: AtlasDataset, letter: str) -> np.ndarray:
    """Matrix ``(n_bins, n_sites)``: VPs answered by each site."""
    obs = dataset.letter(letter)
    n_sites = len(obs.site_codes)
    counts = np.zeros((obs.n_bins, n_sites), dtype=np.int64)
    valid = obs.site_idx >= 0
    for b in range(obs.n_bins):
        sites = obs.site_idx[b][valid[b]]
        if sites.size:
            counts[b] = np.bincount(sites, minlength=n_sites)
    return counts


def observed_site_count(dataset: AtlasDataset, letter: str) -> int:
    """Sites seen by at least one VP over the window (Table 2)."""
    counts = vps_per_site(dataset, letter)
    return int((counts.sum(axis=0) > 0).sum())


def observed_sites_table(dataset: AtlasDataset) -> TableResult:
    """Table 2's right column: observed sites per letter.

    Measurement gaps shrink what is observable; bins without any
    probing VP are flagged on the result's ``quality`` so low
    "observed" counts can be told apart from real withdrawals.
    """
    letters = sorted(dataset.letters)
    rows: list[tuple[object, ...]] = []
    for letter in letters:
        obs = dataset.letter(letter)
        rows.append(
            (letter, len(obs.site_codes), observed_site_count(dataset, letter))
        )
    return TableResult(
        title="Table 2: sites per letter (deployed vs observed)",
        headers=("letter", "deployed", "observed"),
        rows=tuple(rows),
        quality=probe_gap_flags(dataset, letters, metric="catchments"),
    )


@dataclass(frozen=True, slots=True)
class SiteCatchmentStats:
    """Fig. 5 numbers for one site."""

    site: str
    median: float
    minimum: int
    maximum: int

    @property
    def min_normalized(self) -> float:
        return self.minimum / self.median if self.median > 0 else np.nan

    @property
    def max_normalized(self) -> float:
        return self.maximum / self.median if self.median > 0 else np.nan

    @property
    def stable(self) -> bool:
        return self.median >= STABILITY_THRESHOLD


def site_minmax(
    dataset: AtlasDataset, letter: str
) -> list[SiteCatchmentStats]:
    """Fig. 5: per-site min/median/max, ordered by median descending."""
    obs = dataset.letter(letter)
    counts = vps_per_site(dataset, letter)
    stats = [
        SiteCatchmentStats(
            site=f"{letter}-{code}",
            median=float(np.median(counts[:, i])),
            minimum=int(counts[:, i].min()),
            maximum=int(counts[:, i].max()),
        )
        for i, code in enumerate(obs.site_codes)
    ]
    stats.sort(key=lambda s: (-s.median, s.site))
    return stats


def site_minmax_table(dataset: AtlasDataset, letter: str) -> TableResult:
    """Fig. 5 as a table (normalised min/max per site)."""
    rows: list[tuple[object, ...]] = []
    for s in site_minmax(dataset, letter):
        rows.append(
            (
                s.site,
                s.median,
                round(s.min_normalized, 2) if s.median else float("nan"),
                round(s.max_normalized, 2) if s.median else float("nan"),
                "ok" if s.stable else "<20 VPs",
            )
        )
    return TableResult(
        title=f"Fig. 5: {letter}-Root site catchments (min/max vs median)",
        headers=("site", "median", "min/med", "max/med", "stability"),
        rows=tuple(rows),
        quality=probe_gap_flags(dataset, [letter], metric="catchments"),
    )


def site_timeseries(
    dataset: AtlasDataset, letter: str, stable_only: bool = False
) -> SeriesBundle:
    """Fig. 6: per-site catchment, normalised to the site median."""
    obs = dataset.letter(letter)
    counts = vps_per_site(dataset, letter)
    hours = dataset.grid.hours()
    medians = np.median(counts, axis=0)
    order = np.argsort(-medians, kind="stable")
    series: list[Series] = []
    for i in order:
        median = medians[i]
        if stable_only and median < STABILITY_THRESHOLD:
            continue
        normalised = counts[:, i] / median if median > 0 else (
            counts[:, i].astype(float)
        )
        series.append(
            Series(
                name=f"{letter}-{obs.site_codes[i]} ({int(median)})",
                hours=hours,
                values=normalised,
            )
        )
    return SeriesBundle(
        title=(
            f"Fig. 6: {letter}-Root per-site catchment "
            "(normalised to median)"
        ),
        series=tuple(series),
    )


def critical_episodes(
    dataset: AtlasDataset,
    letter: str,
    threshold: float = 0.5,
) -> dict[str, np.ndarray]:
    """Bins where a stable site fell below *threshold* of its median.

    These are the red below-median episodes of Fig. 6; returns a
    boolean per-bin mask per stable site.
    """
    obs = dataset.letter(letter)
    counts = vps_per_site(dataset, letter)
    result: dict[str, np.ndarray] = {}
    for i, code in enumerate(obs.site_codes):
        median = float(np.median(counts[:, i]))
        if median < STABILITY_THRESHOLD:
            continue
        result[f"{letter}-{code}"] = counts[:, i] < threshold * median
    return result
