"""The section-2.2 anycast-vs-DDoS policy model.

The paper grounds its empirical observations in a thought experiment:
an anycast deployment with sites :math:`s_1 = s_2` and
:math:`S_3 = 10 s_1`, clients :math:`c_0, c_1` in :math:`s_1`'s
catchment, :math:`c_2` in :math:`s_2`'s and :math:`c_3` in
:math:`S_3`'s, and attackers :math:`A_0` (ISP0, pinned to
:math:`s_1`) and :math:`A_1` (ISP1, re-routable).  The defender's
levers are route withdrawals and targeted re-routes; the metric is
*happiness* -- how many clients are served.

We model traffic at the granularity of *link groups*: a bundle of
attack volume and clients that moves between sites together (the
paper's "ISP1 with :math:`A_1` and :math:`c_1`").  A strategy assigns
each group to one of the sites it can reach; a site serves its
clients iff its assigned attack volume does not exceed capacity
(legitimate volume is negligible, :math:`c_* \\ll A_*`).  The optimal
strategy is found by exhaustive search, and the paper's five cases
fall out of :func:`classify_case`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class LinkGroup:
    """Traffic that moves between sites as a unit."""

    name: str
    attack: float
    clients: int
    site_options: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.attack < 0:
            raise ValueError("attack volume cannot be negative")
        if self.clients < 0:
            raise ValueError("client count cannot be negative")
        if not self.site_options:
            raise ValueError(f"group {self.name!r} can reach no site")


@dataclass(frozen=True, slots=True)
class AnycastModel:
    """Sites with capacities plus the link groups using them."""

    capacities: dict[str, float]
    groups: tuple[LinkGroup, ...] = field(default=())

    def __post_init__(self) -> None:
        for site, capacity in self.capacities.items():
            if capacity <= 0:
                raise ValueError(f"site {site!r} capacity must be positive")
        for group in self.groups:
            for site in group.site_options:
                if site not in self.capacities:
                    raise ValueError(
                        f"group {group.name!r} references unknown site "
                        f"{site!r}"
                    )

    @property
    def total_clients(self) -> int:
        return sum(g.clients for g in self.groups)


Assignment = dict[str, str]


def default_assignment(model: AnycastModel) -> Assignment:
    """BGP's status quo: every group at its preferred site."""
    return {g.name: g.site_options[0] for g in model.groups}


def happiness(model: AnycastModel, assignment: Assignment) -> int:
    """Clients served under *assignment* (the paper's H).

    A site serves its clients iff its total assigned attack volume is
    at most its capacity.
    """
    load: dict[str, float] = {site: 0.0 for site in model.capacities}
    for group in model.groups:
        site = assignment.get(group.name)
        if site is None:
            raise ValueError(f"group {group.name!r} unassigned")
        if site not in model.capacities:
            raise ValueError(f"unknown site {site!r}")
        load[site] += group.attack
    served = 0
    for group in model.groups:
        site = assignment[group.name]
        if load[site] <= model.capacities[site]:
            served += group.clients
    return served


def withdrawal_assignment(
    model: AnycastModel, withdrawn: set[str]
) -> Assignment:
    """Assignment after withdrawing sites: groups take their first
    still-announced option; a group with none keeps its last option
    (the traffic has nowhere else to go)."""
    assignment: Assignment = {}
    for group in model.groups:
        remaining = [s for s in group.site_options if s not in withdrawn]
        assignment[group.name] = (
            remaining[0] if remaining else group.site_options[-1]
        )
    return assignment


def best_withdrawal(model: AnycastModel) -> tuple[set[str], int]:
    """Best pure-withdrawal strategy (the §2.2 "withdraw" lever).

    Ties prefer fewer withdrawals (less disruption).
    """
    sites = sorted(model.capacities)
    best: tuple[set[str], int] = (set(), happiness(
        model, withdrawal_assignment(model, set())
    ))
    for k in range(1, len(sites)):
        for combo in itertools.combinations(sites, k):
            withdrawn = set(combo)
            h = happiness(model, withdrawal_assignment(model, withdrawn))
            if h > best[1]:
                best = (withdrawn, h)
    return best


def optimal_assignment(model: AnycastModel) -> tuple[Assignment, int]:
    """Best assignment with full routing control (targeted re-routes).

    Exhaustive over each group's reachable sites; feasible for the
    paper-scale models this reproduces.
    """
    names = [g.name for g in model.groups]
    options = [g.site_options for g in model.groups]
    best_assignment = default_assignment(model)
    best_h = happiness(model, best_assignment)
    for combo in itertools.product(*options):
        assignment = dict(zip(names, combo))
        h = happiness(model, assignment)
        if h > best_h:
            best_assignment, best_h = assignment, h
    return best_assignment, best_h


def figure2_model(
    a0: float, a1: float, small_capacity: float = 1.0
) -> AnycastModel:
    """The paper's Figure 2 deployment.

    Sites s1 = s2 = *small_capacity*, S3 = 10x.  ISP0 pins attacker A0
    and client c0 to s1; ISP1 (A1 + c1) prefers s1 but can be
    re-routed to s2 or S3; c2 and c3 are native to s2 and S3.
    """
    big = 10.0 * small_capacity
    return AnycastModel(
        capacities={"s1": small_capacity, "s2": small_capacity, "S3": big},
        groups=(
            LinkGroup("ISP0", attack=a0, clients=1,
                      site_options=("s1", "s2", "S3")),
            LinkGroup("ISP1", attack=a1, clients=1,
                      site_options=("s1", "s2", "S3")),
            LinkGroup("c2", attack=0.0, clients=1, site_options=("s2",)),
            LinkGroup("c3", attack=0.0, clients=1, site_options=("S3",)),
        ),
    )


def classify_case(a0: float, a1: float, small_capacity: float = 1.0) -> int:
    """Which of the paper's five §2.2 cases (a0, a1) falls into."""
    s1 = small_capacity
    big = 10.0 * small_capacity
    if a0 + a1 <= s1:
        return 1  # nobody hurt even together
    if a0 <= s1 and a1 <= s1:
        return 2  # split the attackers across the small sites
    if a0 + a1 <= big:
        return 3  # the big site can take everything
    if a0 <= big and a1 <= big:
        return 4  # re-route one ISP to the big site, sacrifice the other
    return 5  # some attacker overwhelms any site: absorb and contain


def expected_happiness(case: int) -> int:
    """The paper's H for each case (with optimal response)."""
    expected = {1: 4, 2: 4, 3: 4, 4: 3, 5: 2}
    try:
        return expected[case]
    except KeyError:
        raise ValueError(f"unknown case {case}") from None
