"""Site flips: client-side evidence of routing stress (paper §3.4).

A *site flip* is a vantage point changing anycast site between
consecutive observations.  Flips should be rare in steady state; the
events produce bursts of them (Fig. 8).  Following the flips of
specific origin sites reveals where their catchments went (Fig. 10:
70-80 % of K-LHR/K-FRA shifters landed on K-AMS and returned after),
and per-VP timelines expose the behaviour classes of Fig. 11: VPs
"stuck" on a degraded site, VPs that shift and return, VPs that shift
permanently, and VPs that simply fail.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..datasets.observations import AtlasDataset
from ..util.timegrid import EVENTS, Interval
from .results import Series, SeriesBundle


def _site_track(obs_site_idx: np.ndarray) -> np.ndarray:
    """Per-VP site track with non-site bins carried as -1."""
    track = obs_site_idx.astype(np.int64).copy()
    track[track < 0] = -1
    return track


def count_flips(dataset: AtlasDataset, letter: str) -> Series:
    """Fig. 8: number of site flips per bin for one letter.

    A flip is counted in bin *b* when a VP's site in *b* differs from
    the site of its most recent prior successful observation.
    """
    obs = dataset.letter(letter)
    track = _site_track(obs.site_idx)
    n_bins, n_vps = track.shape
    flips = np.zeros(n_bins, dtype=np.int64)
    last_site = np.full(n_vps, -1, dtype=np.int64)
    for b in range(n_bins):
        current = track[b]
        have_site = current >= 0
        flipped = have_site & (last_site >= 0) & (current != last_site)
        flips[b] = int(flipped.sum())
        last_site[have_site] = current[have_site]
    return Series(
        name=letter,
        hours=dataset.grid.hours(),
        values=flips.astype(np.float64),
    )


def flips_figure(
    dataset: AtlasDataset, letters: list[str] | None = None
) -> SeriesBundle:
    """Fig. 8: site flips per letter."""
    if letters is None:
        letters = sorted(dataset.letters)
    return SeriesBundle(
        title="Fig. 8: site flips per 10-minute bin",
        series=tuple(count_flips(dataset, L) for L in letters),
    )


def flip_destinations(
    dataset: AtlasDataset,
    letter: str,
    origin_site: str,
    interval_hours: tuple[float, float],
) -> Counter:
    """Fig. 10: where VPs that left *origin_site* went.

    Considers VPs whose pre-interval modal site is *origin_site* and
    returns the distribution of sites they appear at during the
    interval (excluding the origin itself); failures count as
    ``"(no reply)"``.
    """
    obs = dataset.letter(letter)
    try:
        origin_idx = obs.site_codes.index(origin_site)
    except ValueError:
        raise KeyError(
            f"{letter}-Root has no site {origin_site!r}"
        ) from None
    hours = dataset.grid.hours()
    before = hours < interval_hours[0]
    during = (hours >= interval_hours[0]) & (hours < interval_hours[1])
    if not before.any() or not during.any():
        raise ValueError("interval leaves no before/during bins")

    track = _site_track(obs.site_idx)
    destinations: Counter = Counter()
    for vp in range(obs.n_vps):
        pre = track[before, vp]
        pre_sites = pre[pre >= 0]
        if pre_sites.size == 0:
            continue
        modal = np.bincount(pre_sites).argmax()
        if modal != origin_idx:
            continue
        seen = track[during, vp]
        answered = seen[seen >= 0]
        moved = answered[answered != origin_idx]
        if moved.size:
            dest = np.bincount(moved).argmax()
            destinations[f"{letter}-{obs.site_codes[int(dest)]}"] += 1
        elif answered.size == 0:
            destinations["(no reply)"] += 1
        else:
            destinations[f"{letter}-{origin_site} (stuck)"] += 1
    return destinations


#: Fig. 11 behaviour classes.
BEHAVIOR_STUCK = "stuck"            # stays at origin, degraded
BEHAVIOR_SHIFT_RETURN = "shift+return"
BEHAVIOR_SHIFT_STAY = "shift+stay"
BEHAVIOR_FAILED = "failed"          # no replies during the event
BEHAVIOR_UNAFFECTED = "unaffected"


@dataclass(frozen=True, slots=True)
class VpTimeline:
    """One VP's journey around an event (Fig. 11 row)."""

    vp_id: int
    origin_site: str
    behavior: str
    sites: tuple[str | None, ...]  # per bin: site code or None


def classify_behaviour(
    pre_modal: int,
    during: np.ndarray,
    after: np.ndarray,
) -> str:
    """Classify one VP given its origin and event-window tracks."""
    answered = during[during >= 0]
    if answered.size == 0:
        return BEHAVIOR_FAILED
    moved = answered[answered != pre_modal]
    if moved.size == 0:
        return BEHAVIOR_STUCK if (during < 0).any() else BEHAVIOR_UNAFFECTED
    post = after[after >= 0]
    if post.size and np.bincount(post).argmax() == pre_modal:
        return BEHAVIOR_SHIFT_RETURN
    return BEHAVIOR_SHIFT_STAY


def vp_timelines(
    dataset: AtlasDataset,
    letter: str,
    origin_sites: list[str],
    event: Interval = EVENTS[0],
    sample: int | None = None,
    rng: np.random.Generator | None = None,
) -> list[VpTimeline]:
    """Fig. 11: per-VP site timelines for VPs starting at given sites.

    Returns one timeline per VP whose pre-event modal site is one of
    *origin_sites*, optionally down-sampled to *sample* VPs.
    """
    obs = dataset.letter(letter)
    origin_idx: dict[int, str] = {}
    for site in origin_sites:
        try:
            origin_idx[obs.site_codes.index(site)] = site
        except ValueError:
            raise KeyError(f"{letter}-Root has no site {site!r}") from None

    hours = dataset.grid.hours()
    ev_start, ev_end = event.hours_after(dataset.grid.start)
    before = hours < ev_start
    during = (hours >= ev_start) & (hours < ev_end)
    after = hours >= ev_end

    track = _site_track(obs.site_idx)
    timelines: list[VpTimeline] = []
    for vp in range(obs.n_vps):
        pre = track[before, vp]
        pre_sites = pre[pre >= 0]
        if pre_sites.size == 0:
            continue
        modal = int(np.bincount(pre_sites).argmax())
        if modal not in origin_idx:
            continue
        behavior = classify_behaviour(
            modal, track[during, vp], track[after, vp]
        )
        sites = tuple(
            obs.site_codes[s] if s >= 0 else None for s in track[:, vp]
        )
        timelines.append(
            VpTimeline(
                vp_id=int(dataset.vps.ids[vp]),
                origin_site=origin_idx[modal],
                behavior=behavior,
                sites=sites,
            )
        )
    if sample is not None and len(timelines) > sample:
        if rng is None:
            rng = np.random.default_rng(0)
        keep = rng.choice(len(timelines), size=sample, replace=False)
        timelines = [timelines[i] for i in sorted(keep)]
    return timelines


def behaviour_census(timelines: list[VpTimeline]) -> Counter:
    """Counts per behaviour class (the Fig. 11 group sizes)."""
    return Counter(t.behavior for t in timelines)
