"""Collateral damage analysis (paper Figures 14-15, section 3.6).

Shared facilities cannot be observed directly (hosting details are
proprietary), so the paper assesses shared risk *end to end*: it looks
for service degradation, time-correlated with the events, in services
that were not attacked:

* **D-Root sites** (Fig. 14) -- D was not attacked; sites with at
  least a 10 % reachability dip during the events and at least 20 VPs
  of regular catchment are flagged as collateral suspects;
* **.nl anycast nodes** (Fig. 15) -- the nodes co-located with root
  sites go nearly silent during the events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.observations import AtlasDataset
from ..scenario.nl import NlService
from ..util.timegrid import EVENTS, Interval, TimeGrid
from .catchments import STABILITY_THRESHOLD, vps_per_site
from .results import Series, SeriesBundle

#: Minimum reachability dip to flag a site (Fig. 14: "at least 10 %").
MIN_DIP_FRACTION = 0.10


@dataclass(frozen=True, slots=True)
class CollateralSite:
    """One unattacked site showing an event-correlated dip."""

    site: str
    median_vps: float
    event_min_vps: int
    dip_fraction: float


def collateral_sites(
    dataset: AtlasDataset,
    letter: str,
    min_dip: float = MIN_DIP_FRACTION,
    min_vps: int = STABILITY_THRESHOLD,
    events: tuple[Interval, ...] = EVENTS,
) -> list[CollateralSite]:
    """Fig. 14 candidates: sites of *letter* dipping during events."""
    obs = dataset.letter(letter)
    counts = vps_per_site(dataset, letter)
    event_mask = dataset.grid.event_mask(events)
    if not event_mask.any():
        raise ValueError("grid does not cover the event windows")
    flagged: list[CollateralSite] = []
    for i, code in enumerate(obs.site_codes):
        median = float(np.median(counts[:, i]))
        if median < min_vps:
            continue
        event_min = int(counts[event_mask, i].min())
        dip = 1.0 - event_min / median
        if dip >= min_dip:
            flagged.append(
                CollateralSite(
                    site=f"{letter}-{code}",
                    median_vps=median,
                    event_min_vps=event_min,
                    dip_fraction=dip,
                )
            )
    flagged.sort(key=lambda s: -s.dip_fraction)
    return flagged


def collateral_figure(
    dataset: AtlasDataset, letter: str = "D"
) -> SeriesBundle:
    """Fig. 14: reachability series of the flagged sites."""
    flagged = collateral_sites(dataset, letter)
    counts = vps_per_site(dataset, letter)
    obs = dataset.letter(letter)
    hours = dataset.grid.hours()
    series: list[Series] = []
    for site in flagged:
        code = site.site.split("-", 1)[1]
        index = obs.site_codes.index(code)
        series.append(
            Series(
                name=site.site,
                hours=hours,
                values=counts[:, index].astype(np.float64),
            )
        )
    return SeriesBundle(
        title=f"Fig. 14: affected {letter}-Root sites (absolute VPs)",
        series=tuple(series),
    )


def nl_figure(nl: NlService) -> SeriesBundle:
    """Fig. 15: normalised .nl query rates per node."""
    normalised = nl.normalized_series()
    hours = nl.grid.hours()
    series = tuple(
        Series(name=label, hours=hours, values=normalised[:, i])
        for i, label in enumerate(nl.node_labels)
    )
    return SeriesBundle(
        title="Fig. 15: normalised .nl query rates per node",
        series=series,
    )


def nl_event_minimum(
    nl: NlService, node: str, events: tuple[Interval, ...] = EVENTS
) -> float:
    """A node's lowest normalised rate inside the event windows."""
    try:
        index = nl.node_labels.index(node)
    except ValueError:
        raise KeyError(f"unknown .nl node {node!r}") from None
    mask = nl.grid.event_mask(events)
    return float(nl.normalized_series()[mask, index].min())


def silence_score(
    series: Series, grid: TimeGrid, events: tuple[Interval, ...] = EVENTS
) -> float:
    """How silent a service went during the events (0 = unaffected,
    1 = completely silent): one minus the event-window minimum of the
    normalised series."""
    mask = grid.event_mask(events)
    if series.values.shape[0] != grid.n_bins:
        raise ValueError("series does not match grid")
    return float(1.0 - np.nanmin(series.values[mask]))
