"""Per-letter reachability (paper Figure 3).

For each root letter, the number of vantage points receiving a
successful response in each ten-minute bin.  Letters probed less often
than the bin width (A-Root's 30-minute cadence at the time) are scaled
by their undersampling factor so the curves are comparable, exactly as
the paper scales A's observations.
"""

from __future__ import annotations

import numpy as np

from ..datasets.observations import AtlasDataset, RESP_NOT_PROBED
from ..faults.quality import probe_gap_flags
from .results import Series, SeriesBundle


def letter_reachability(
    dataset: AtlasDataset, letter: str, scale_undersampled: bool = True
) -> Series:
    """VPs with successful queries per bin for one letter."""
    obs = dataset.letter(letter)
    successes = (obs.site_idx >= 0).sum(axis=1).astype(np.float64)
    if scale_undersampled:
        probed = (obs.site_idx != RESP_NOT_PROBED).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(probed > 0, obs.n_vps / probed, 0.0)
        successes = successes * scale
    return Series(
        name=letter, hours=dataset.grid.hours(), values=successes
    )


def reachability_figure(
    dataset: AtlasDataset, letters: list[str] | None = None
) -> SeriesBundle:
    """Figure 3: one reachability series per letter.

    Bins where no VP probed a letter at all (controller outages,
    fleet-wide dropout) yield zero-valued points and are flagged on
    the bundle's ``quality`` rather than raising.
    """
    if letters is None:
        letters = sorted(dataset.letters)
    return SeriesBundle(
        title="Fig. 3: VPs with successful queries per 10-minute bin",
        series=tuple(
            letter_reachability(dataset, letter) for letter in letters
        ),
        quality=probe_gap_flags(dataset, letters, metric="reachability"),
    )


def worst_responsiveness(dataset: AtlasDataset, letter: str) -> float:
    """Smallest per-bin success count, normalised to the median.

    The paper's "worst responsiveness" measure (section 3.2.1): how
    far a letter's successful-VP count dipped relative to normal.
    """
    series = letter_reachability(dataset, letter)
    median = series.median()
    if not np.isfinite(median) or median <= 0:
        return 0.0
    return series.min() / median
