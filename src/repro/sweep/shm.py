"""Zero-copy shared-memory substrates for parallel sweeps.

The pickled dispatch path makes every pool worker rebuild its own
:class:`~repro.scenario.engine.Substrate` from each cell's config --
for sweep grids whose cells differ only in run-time knobs (events,
overload model, controllers, faults) that repeats the same expensive
topology/deployment/VP build once *per worker* and re-derives every
routing table from scratch.  This module removes that tax:

* **Export** (parent, :func:`export_substrate`): every constant array
  of a substrate -- the :class:`~repro.netsim.asgraph.CompiledGraph`
  CSR view, the engine's capacity/threshold vectors, the VP/botnet/
  collector tables, and the AS-graph coordinate/distance memos, as
  enumerated by
  :func:`~repro.scenario.engine.substrate_constant_arrays` -- is
  copied once into a single ``multiprocessing.shared_memory`` segment.
  The remaining object skeleton (deployments, announcement state,
  graph adjacency, warm routing memo) is pickled *into the same
  segment* with every constant array replaced by a persistent-id
  token, so no array bytes travel through the pickle stream.

* **Manifest** (:class:`SubstrateManifest`): what workers receive in
  place of the substrate -- the segment name plus one
  :class:`SharedArraySpec` (name, dtype, shape, offset, read-only
  flag) per array and the skeleton's offset/size.  A manifest pickles
  to a few kilobytes regardless of topology size.

* **Attach** (worker, :func:`attach_substrate`): the worker maps the
  segment, wraps each spec in a ``numpy`` view over the shared buffer
  with ``writeable=False`` -- the same freeze contract the runtime
  sanitizer enforces, so any in-place write raises ``ValueError`` at
  the mutation site instead of corrupting sibling cells -- and
  unpickles the skeleton with a ``persistent_load`` that resolves
  each token to its zero-copy view.  The compiled graph is rebuilt
  through :func:`repro.netsim.bgp.compiled_graph_from_buffers`, so
  its ASN->row index is derived locally instead of pickled.

Lifecycle and ownership: the *parent* owns every segment.  It creates
them before dispatching round 0, passes manifests with every task,
and closes + unlinks them after the pool is gone -- on normal
completion, SIGINT/SIGTERM drain, worker crash, and quarantine alike
(one ``finally`` in the pool runner covers all exit paths).  Workers
only ever map existing segments and never unlink; a worker that dies
mid-cell therefore cannot leak a segment.  Unlinking while a worker
still maps the segment is safe: the kernel keeps the memory alive
until the last map goes away.

Attachment is best-effort: a worker that fails to map a segment falls
back to building the substrate from the cell's config (counted in
:data:`SHM_STATS`), which is bit-identical by the substrate-reuse
contract -- shared memory is a transport optimization and must never
be a correctness dependency.  ``REPRO_SWEEP_SHM=0`` (via
:mod:`repro.util.env`) disables the whole layer, restoring the
per-worker rebuild path.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from ..netsim.asgraph import CompiledGraph
from ..netsim.bgp import compiled_graph_from_buffers

if TYPE_CHECKING:
    from ..scenario.engine import Substrate

#: /dev/shm name prefix for every segment this module creates; tests
#: and the CI leak check key off it.
SEGMENT_PREFIX = "repro_sweep"

#: Array offsets inside a segment are rounded up to this, so every
#: attached view is aligned however the dtypes interleave.
_ALIGN = 64

#: Worker-side telemetry counters (mirrors ``DELTA_STATS``): ``cell``
#: counts cells served from a shared substrate, ``attach`` fresh
#: segment attachments, ``fallback`` failed attachments that fell back
#: to a local build.  Write-only telemetry surfaced through
#: ``CellOutcome.routing_stats`` (prefixed ``shm/``); no simulation
#: code path reads them back.
SHM_STATS: dict[str, int] = {"cell": 0, "attach": 0, "fallback": 0}

#: Monotonic per-process counter feeding segment names.
_segment_counter = 0

_PERSISTENT_TAG = "repro.sweep.shm/array"


@dataclass(frozen=True, slots=True)
class SharedArraySpec:
    """One constant array's location inside a shared segment."""

    name: str              # stable path, e.g. "graph/csr/all_indices"
    dtype: str             # numpy dtype string, e.g. "<i8", "<U4"
    shape: tuple[int, ...]
    offset: int            # byte offset into the segment
    readonly: bool = True  # attached views refuse in-place writes


@dataclass(frozen=True, slots=True)
class SubstrateManifest:
    """Everything a worker needs to reattach one exported substrate.

    Pickled to workers *in place of* the substrate's arrays; the
    ``digest`` identifies the exported content (specs + skeleton
    bytes), so per-worker caches keyed on it survive pool respawns and
    even segment re-exports of identical content.
    """

    segment: str
    digest: str
    arrays: tuple[SharedArraySpec, ...]
    skeleton_offset: int
    skeleton_size: int

    @property
    def n_bytes(self) -> int:
        return self.skeleton_offset + self.skeleton_size


class _SkeletonPickler(pickle.Pickler):
    """Pickles a substrate with constant arrays swapped for tokens.

    Identity (``is``), not equality, decides whether an encountered
    array is one of the exported constants -- two distinct arrays with
    equal contents must not alias each other through the segment.  The
    compiled graph view is reduced to its version plus its array
    fields (all of which are exported constants), so its ASN->row dict
    never enters the stream.
    """

    def __init__(
        self, file: io.BytesIO, constants: Sequence[np.ndarray]
    ) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._constants = tuple(constants)

    def persistent_id(self, obj: object) -> object:
        if isinstance(obj, np.ndarray):
            for index, array in enumerate(self._constants):
                if array is obj:
                    return (_PERSISTENT_TAG, index)
        return None

    def reducer_override(self, obj: object):  # type: ignore[no-untyped-def]
        if isinstance(obj, CompiledGraph):
            arrays = tuple(
                getattr(obj, name) for name in obj.array_fields()
            )
            return (_rebuild_compiled_graph, (obj.version, arrays))
        return NotImplemented


def _rebuild_compiled_graph(
    version: int, arrays: tuple[np.ndarray, ...]
) -> CompiledGraph:
    names = CompiledGraph.array_fields()
    return compiled_graph_from_buffers(version, dict(zip(names, arrays)))


class _SkeletonUnpickler(pickle.Unpickler):
    """Resolves array tokens back to zero-copy shared views."""

    def __init__(
        self, file: io.BytesIO, arrays: Sequence[np.ndarray]
    ) -> None:
        super().__init__(file)
        self._arrays = tuple(arrays)

    def persistent_load(self, pid: object) -> object:
        if (
            isinstance(pid, tuple)
            and len(pid) == 2
            and pid[0] == _PERSISTENT_TAG
        ):
            return self._arrays[pid[1]]
        raise pickle.UnpicklingError(
            f"unknown persistent id in substrate skeleton: {pid!r}"
        )


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _next_segment_name() -> str:
    global _segment_counter
    _segment_counter += 1
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{_segment_counter}"


@dataclass(slots=True)
class SharedSubstrate:
    """Parent-side handle for one exported substrate.

    Owns the segment: hold it for the lifetime of the pool, then call
    :meth:`close` exactly once from a ``finally``.
    """

    manifest: SubstrateManifest
    _shm: shared_memory.SharedMemory | None

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        shm = self._shm
        self._shm = None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


def export_substrate(substrate: "Substrate") -> SharedSubstrate:
    """Export *substrate* into one shared-memory segment.

    Copies every constant array into the segment, pickles the
    remaining skeleton (with arrays tokenized) after them, and returns
    the parent-side handle carrying the :class:`SubstrateManifest`.
    The substrate object itself is untouched and no longer needed
    afterwards -- the caller may drop it to keep parent memory flat.
    """
    from ..scenario.engine import substrate_constant_arrays

    pairs = substrate_constant_arrays(substrate)
    constants = [array for _, array in pairs]
    stream = io.BytesIO()
    _SkeletonPickler(stream, constants).dump(substrate)
    skeleton = stream.getvalue()

    specs: list[SharedArraySpec] = []
    offset = 0
    for name, array in pairs:
        offset = _aligned(offset)
        specs.append(
            SharedArraySpec(
                name=name,
                dtype=array.dtype.str,
                shape=tuple(array.shape),
                offset=offset,
            )
        )
        offset += array.nbytes
    skeleton_offset = _aligned(offset)
    total = max(1, skeleton_offset + len(skeleton))

    digest = hashlib.sha256(
        repr(tuple(specs)).encode("utf-8") + b"\x00" + skeleton
    ).hexdigest()

    shm = shared_memory.SharedMemory(
        name=_next_segment_name(), create=True, size=total
    )
    try:
        for spec, (_, array) in zip(specs, pairs):
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            view[...] = array
        shm.buf[
            skeleton_offset : skeleton_offset + len(skeleton)
        ] = skeleton
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    manifest = SubstrateManifest(
        segment=shm.name,
        digest=digest,
        arrays=tuple(specs),
        skeleton_offset=skeleton_offset,
        skeleton_size=len(skeleton),
    )
    return SharedSubstrate(manifest=manifest, _shm=shm)


def export_shared_substrates(
    cells: Sequence["object"],
    *,
    min_cells: int = 2,
    should_stop: "Callable[[], bool] | None" = None,
) -> tuple[list[SharedSubstrate], dict[tuple[object, ...], SubstrateManifest]]:
    """Build + export one shared substrate per redundant signature.

    Groups *cells* (``SweepCell``-shaped: ``.config`` attribute) by
    :func:`~repro.scenario.engine.substrate_signature` and exports
    only signatures shared by at least *min_cells* cells -- exactly
    the ones every worker would otherwise rebuild; single-use
    signatures stay on the pickled path, where the (parallel)
    worker-side build is cheaper than a serial parent-side one.
    Before export the parent warms each letter's base routing table
    (``deployment.routing()``), so the warmed distance memos ride the
    segment and workers skip the recompute; warming is output-
    invariant (routing is a pure function of the announcement state).

    A signature whose build or export fails is skipped -- its cells
    fall back to worker-side builds.  *should_stop* is polled between
    signatures so a graceful drain is not held up by exports.

    Returns ``(handles, manifests)``; the caller owns the handles and
    must :meth:`~SharedSubstrate.close` each one after the pool is
    gone.
    """
    from ..scenario.engine import build_substrate, substrate_signature

    order: list[tuple[object, ...]] = []
    configs: dict[tuple[object, ...], object] = {}
    counts: dict[tuple[object, ...], int] = {}
    for cell in cells:
        config = cell.config  # type: ignore[attr-defined]
        signature = substrate_signature(config)
        if signature not in counts:
            order.append(signature)
            configs[signature] = config
            counts[signature] = 0
        counts[signature] += 1

    handles: list[SharedSubstrate] = []
    manifests: dict[tuple[object, ...], SubstrateManifest] = {}
    for signature in order:
        if should_stop is not None and should_stop():
            break
        if counts[signature] < min_cells:
            continue
        try:
            substrate = build_substrate(configs[signature])  # type: ignore[arg-type]
            for letter in substrate.letters:
                substrate.deployments[letter].routing()
            handle = export_substrate(substrate)
        except Exception:
            continue
        handles.append(handle)
        manifests[signature] = handle.manifest
    return handles, manifests


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without resource-tracker registration.

    Before Python 3.13 (which grew ``track=False``) merely *attaching*
    registers the segment with the process's resource tracker, which
    would unlink it out from under the parent when this worker exits.
    Suppressing registration for the duration of the attach is the
    standard workaround; ownership stays with the creating parent.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def attach_substrate(
    manifest: SubstrateManifest,
) -> tuple[shared_memory.SharedMemory, "Substrate"]:
    """Reconstruct a substrate view over an exported segment.

    Returns ``(segment, substrate)``; the caller must keep the segment
    object referenced for as long as the substrate lives (the numpy
    views hold the buffer, but the mapping object going away would
    close it on some platforms).  Every manifest array is attached
    zero-copy and read-only; the skeleton supplies everything else,
    private to this process.
    """
    shm = _attach_segment(manifest.segment)
    try:
        arrays: list[np.ndarray] = []
        for spec in manifest.arrays:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            if spec.readonly:
                view.flags.writeable = False
            arrays.append(view)
        raw = bytes(
            shm.buf[
                manifest.skeleton_offset :
                manifest.skeleton_offset + manifest.skeleton_size
            ]
        )
        substrate = _SkeletonUnpickler(io.BytesIO(raw), arrays).load()
    except BaseException:
        shm.close()
        raise
    return shm, substrate


def attached_arrays(
    manifest: SubstrateManifest, shm: shared_memory.SharedMemory
) -> Iterator[tuple[str, np.ndarray]]:
    """(name, zero-copy view) pairs for *manifest* over a mapped
    segment -- the raw-array face of :func:`attach_substrate`, used by
    round-trip tests and debugging tools."""
    for spec in manifest.arrays:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        if spec.readonly:
            view.flags.writeable = False
        yield spec.name, view


def leaked_segments() -> list[str]:
    """Names of repro sweep segments currently present in ``/dev/shm``
    (empty off Linux); the leak tests and CI assert this is empty
    after every sweep exit path."""
    try:
        entries = os.listdir("/dev/shm")
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
    return sorted(
        entry for entry in entries if entry.startswith(SEGMENT_PREFIX)
    )
