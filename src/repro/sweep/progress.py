"""Structured progress events streamed by the sweep runner.

The runner emits one ``sweep-start`` event, one ``cell-done`` event
per finished cell (in *completion* order -- the only place completion
order is visible; results themselves are keyed by cell index), and a
final ``sweep-done``.  Consumers get them through a plain callback,
so the CLI can render a ticker and tests can record the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Event kinds, in lifecycle order.
SWEEP_START = "sweep-start"
CELL_DONE = "cell-done"
SWEEP_DONE = "sweep-done"


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """One step of a sweep's execution."""

    kind: str            # SWEEP_START | CELL_DONE | SWEEP_DONE
    completed: int       # cells finished so far (== total when done)
    total: int           # cells in the sweep
    index: int | None = None   # finished cell's index (CELL_DONE only)
    label: str = ""            # finished cell's label (CELL_DONE only)
    elapsed_s: float = 0.0     # wall time since the sweep started

    def __str__(self) -> str:
        if self.kind == CELL_DONE:
            return (
                f"[{self.completed}/{self.total}] {self.label} "
                f"({self.elapsed_s:.1f}s)"
            )
        return f"{self.kind}: {self.completed}/{self.total} cells"


ProgressCallback = Callable[[ProgressEvent], None]
