"""Structured progress events streamed by the sweep runner.

The runner emits one ``sweep-start`` event, one ``cell-done`` event
per finished cell (in *completion* order -- the only place completion
order is visible; results themselves are keyed by cell index), and a
final ``sweep-done``.  Supervision adds ``cell-restored`` (resumed
from a checkpoint), ``cell-retry`` (an attempt failed and the cell
will be re-dispatched), and ``cell-failed`` (retries exhausted; the
cell is quarantined).  Consumers get them through a plain callback,
so the CLI can render a ticker and tests can record the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Event kinds, in lifecycle order.
SWEEP_START = "sweep-start"
CELL_RESTORED = "cell-restored"
CELL_DONE = "cell-done"
CELL_RETRY = "cell-retry"
CELL_FAILED = "cell-failed"
SWEEP_DONE = "sweep-done"


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """One step of a sweep's execution."""

    kind: str            # one of the constants above
    completed: int       # cells finished so far (== total when done)
    total: int           # cells in the sweep
    index: int | None = None   # affected cell's index (cell-* only)
    label: str = ""            # affected cell's label (cell-* only)
    elapsed_s: float = 0.0     # wall time since the sweep started
    worker_pid: int | None = None  # pid that ran the cell (pool path)
    attempt: int = 1           # 1-based attempt this event refers to
    max_attempts: int = 1      # 1 + max_retries
    reason: str = ""           # failure reason (retry/failed only)

    def __str__(self) -> str:
        if self.kind == CELL_DONE:
            extra = ""
            if self.worker_pid is not None:
                extra += f" pid={self.worker_pid}"
            if self.attempt > 1:
                extra += f" attempt={self.attempt}/{self.max_attempts}"
            return (
                f"[{self.completed}/{self.total}] {self.label} "
                f"({self.elapsed_s:.1f}s{extra})"
            )
        if self.kind == CELL_RESTORED:
            return (
                f"[{self.completed}/{self.total}] restored {self.label} "
                "from checkpoint"
            )
        if self.kind == CELL_RETRY:
            return (
                f"retry cell={self.index} "
                f"attempt={self.attempt}/{self.max_attempts} "
                f"reason={self.reason}"
            )
        if self.kind == CELL_FAILED:
            return (
                f"! cell {self.index} failed after "
                f"{self.attempt} attempt(s): {self.reason}"
            )
        return f"{self.kind}: {self.completed}/{self.total} cells"


ProgressCallback = Callable[[ProgressEvent], None]
