"""Sweep specification: a grid of scenario variations plus replicates.

A :class:`SweepSpec` names the cartesian product the paper's figures
and tables all are underneath: one base :class:`ScenarioConfig`, a set
of *points* (field overrides applied to the base -- built from a grid
of axes or given as an explicit list), and a set of replicate *seeds*.
Every (seed, point) pair is one :class:`SweepCell` with a fixed
**cell index**; the sweep runner keys all results by that index, so
output ordering never depends on execution order.

Cell indexing puts seeds outermost (``index = seed_index * n_points +
point_index``): a contiguous chunk of cells then shares a seed, and --
when the swept fields are run-time knobs (events, overload model,
controllers, faults) rather than substrate knobs -- also shares a
:class:`~repro.scenario.engine.Substrate`, which is what makes the
per-worker substrate cache effective.

Seed hygiene: replicate seeds come from
:func:`~repro.util.rng.derive_seed` under distinct labels, so distinct
cells get distinct, deterministic RNG streams with no coupling, and
``simulate(cell.config)`` standalone reproduces the in-sweep result
bit for bit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..scenario.config import ScenarioConfig
from ..util.rng import derive_seed

#: Field names a sweep may override on the base config.
CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ScenarioConfig)
)

#: One point's overrides, in canonical form: sorted (field, value)
#: pairs.  Hashable as long as the values are.
Overrides = tuple[tuple[str, Any], ...]


def replicate_seeds(base_seed: int, n: int) -> tuple[int, ...]:
    """*n* distinct deterministic replicate seeds for *base_seed*.

    Derived per-index from the base seed under stable labels, so the
    i-th replicate's entire RNG universe is a pure function of
    ``(base_seed, i)`` -- independent of how many replicates run and
    of every other cell.
    """
    if n <= 0:
        raise ValueError("need at least one replicate")
    seeds = tuple(
        derive_seed(base_seed, f"sweep.replicate.{i}") for i in range(n)
    )
    if len(frozenset(seeds)) != n:
        raise ValueError(
            f"replicate seed collision for base seed {base_seed}"
        )
    return seeds


def _canonical_overrides(overrides: Mapping[str, Any]) -> Overrides:
    for name in overrides:
        if name not in CONFIG_FIELDS:
            raise ValueError(
                f"unknown ScenarioConfig field {name!r} in sweep point"
            )
        if name == "seed":
            raise ValueError(
                "sweep points may not override 'seed'; use replicate "
                "seeds (SweepSpec.seeds / replicates=...) instead"
            )
    return tuple(sorted(overrides.items()))


@dataclass(frozen=True, slots=True)
class SweepCell:
    """One (seed, point) combination of a sweep."""

    index: int
    point_index: int
    seed_index: int
    overrides: Overrides
    config: ScenarioConfig

    @property
    def label(self) -> str:
        """Short human-readable cell name for progress output."""
        parts = [f"seed={self.config.seed}"]
        parts.extend(f"{name}={value!r}" for name, value in self.overrides)
        return f"cell {self.index} (" + ", ".join(parts) + ")"


@dataclass(frozen=True, slots=True)
class SweepSpec:
    """A grid/list of scenario variations plus seed replication.

    Build one with :meth:`grid` (cartesian product of per-field value
    axes) or :meth:`from_points` (explicit override mappings); the
    plain constructor takes points already in canonical
    :data:`Overrides` form.  An empty ``seeds`` means one replicate at
    the base config's own seed.
    """

    base: ScenarioConfig
    points: tuple[Overrides, ...] = ((),)
    seeds: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a sweep needs at least one point")
        for overrides in self.points:
            _canonical_overrides(dict(overrides))
        if len(frozenset(self.seeds)) != len(self.seeds):
            raise ValueError("duplicate replicate seeds")

    @classmethod
    def grid(
        cls,
        base: ScenarioConfig,
        axes: Mapping[str, Sequence[Any]],
        *,
        seeds: Sequence[int] = (),
        replicates: int | None = None,
    ) -> "SweepSpec":
        """Cartesian product of *axes* (last axis varies fastest)."""
        names = list(axes)
        for name in names:
            if not axes[name]:
                raise ValueError(f"axis {name!r} has no values")
        points: list[dict[str, Any]] = [{}]
        for name in names:
            points = [
                {**point, name: value}
                for point in points
                for value in axes[name]
            ]
        return cls.from_points(
            base, points, seeds=seeds, replicates=replicates
        )

    @classmethod
    def from_points(
        cls,
        base: ScenarioConfig,
        points: Sequence[Mapping[str, Any]],
        *,
        seeds: Sequence[int] = (),
        replicates: int | None = None,
    ) -> "SweepSpec":
        """Explicit list of override mappings, one per point."""
        if replicates is not None:
            if seeds:
                raise ValueError("give either seeds or replicates, not both")
            seeds = replicate_seeds(base.seed, replicates)
        return cls(
            base=base,
            points=tuple(_canonical_overrides(p) for p in points),
            seeds=tuple(seeds),
        )

    @property
    def n_points(self) -> int:
        return len(self.points)

    def effective_seeds(self) -> tuple[int, ...]:
        """The replicate seeds actually run (base seed if none given)."""
        return self.seeds if self.seeds else (self.base.seed,)

    @property
    def n_seeds(self) -> int:
        return len(self.effective_seeds())

    @property
    def n_cells(self) -> int:
        return self.n_points * self.n_seeds

    def cell(self, index: int) -> SweepCell:
        """The cell at *index* (seeds outermost, points innermost)."""
        if not 0 <= index < self.n_cells:
            raise IndexError(
                f"cell index {index} out of range [0, {self.n_cells})"
            )
        seed_index, point_index = divmod(index, self.n_points)
        overrides = self.points[point_index]
        config = dataclasses.replace(
            self.base,
            seed=self.effective_seeds()[seed_index],
            **dict(overrides),
        )
        return SweepCell(
            index=index,
            point_index=point_index,
            seed_index=seed_index,
            overrides=overrides,
            config=config,
        )

    def cells(self) -> tuple[SweepCell, ...]:
        """Every cell, in index order."""
        return tuple(self.cell(i) for i in range(self.n_cells))

    def digest(self) -> str:
        """Hex digest identifying this spec (base, points, seeds).

        Computed over the ``repr`` of the canonical frozen form of the
        spec (sets sorted, dataclasses field-ordered, dicts
        key-sorted; every leaf a primitive), so two value-equal specs
        digest identically no matter how they were built -- including
        a spec pickled into a checkpoint header and loaded back, whose
        internal object sharing differs from the original's (which is
        why the digest must not hash pickle bytes).  The checkpoint
        layer (:mod:`repro.sweep.checkpoint`) keys its write-ahead log
        on this, refusing to merge cells into a sweep they do not
        belong to.
        """
        import hashlib

        from ..scenario.engine import _freeze

        canonical = (
            _freeze(self.base),
            _freeze(self.points),
            self.seeds,
        )
        payload = repr(canonical).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()
