"""Append-only, crash-safe checkpoint log for sweep runs.

A checkpoint is a JSONL write-ahead log: one header line identifying
the :class:`~repro.sweep.spec.SweepSpec` it belongs to, then one
record per completed cell, appended (and flushed + fsynced) the moment
the parent receives that cell's result.  A run that dies -- worker
crash, operator Ctrl-C, power loss -- leaves a file whose valid prefix
is exactly the set of cells that finished, and
``run_sweep(spec, checkpoint=path)`` resumes from it, re-running only
the missing cells.  Because every cell is a pure function of its own
config (PR 4's determinism contract), the merged output is
bit-identical to an uninterrupted run.

Records are keyed by ``(spec digest, substrate signature digest, cell
index, seed)`` and carry a CRC32 over their own body, so the loader
can tell a torn tail (the line being written when the process died)
from good data: the first unparsable, crc-mismatching, or
key-mismatching line *truncates* the log there -- everything before it
is trusted, everything after it is dropped, and nothing raises.

The header is written atomically (temp file + ``os.replace``), so a
checkpoint file either does not exist or starts with a complete,
valid header; appends go straight to the file with per-record
``flush`` + ``fsync``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..scenario.engine import substrate_signature
from .spec import SweepCell, SweepSpec

if TYPE_CHECKING:
    from ..scenario.engine import ScenarioResult

#: First-line marker; a file not starting with this is not a checkpoint.
FORMAT = "repro-sweep-checkpoint"
VERSION = 1

#: Pickle protocol pinned so digests and payloads do not drift with
#: the interpreter's default.
_PICKLE_PROTOCOL = 4


class CheckpointError(RuntimeError):
    """A checkpoint file exists but cannot be used (bad header, wrong
    spec, unreadable)."""


def spec_digest(spec: SweepSpec) -> str:
    """Hex digest identifying *spec*; see :meth:`SweepSpec.digest`."""
    return spec.digest()


def substrate_digest(cell: SweepCell) -> str:
    """Short hex digest of the cell's substrate signature."""
    text = repr(substrate_signature(cell.config))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _encode_result(result: ScenarioResult) -> str:
    raw = pickle.dumps(result, protocol=_PICKLE_PROTOCOL)
    return base64.b64encode(zlib.compress(raw, level=6)).decode("ascii")


def _decode_result(payload: str) -> ScenarioResult:
    raw = zlib.decompress(base64.b64decode(payload.encode("ascii")))
    result: ScenarioResult = pickle.loads(raw)
    return result


def _record_crc(index: int, seed: int, substrate: str, payload: str) -> int:
    body = f"{index}:{seed}:{substrate}:{payload}"
    return zlib.crc32(body.encode("ascii"))


def _encode_spec(spec: SweepSpec) -> str:
    raw = pickle.dumps(spec, protocol=_PICKLE_PROTOCOL)
    return base64.b64encode(zlib.compress(raw, level=6)).decode("ascii")


def _decode_spec(payload: str) -> SweepSpec:
    raw = zlib.decompress(base64.b64decode(payload.encode("ascii")))
    spec: SweepSpec = pickle.loads(raw)
    return spec


def _header_line(spec: SweepSpec) -> str:
    header = {
        "format": FORMAT,
        "version": VERSION,
        "spec_digest": spec_digest(spec),
        "n_cells": spec.n_cells,
        "spec": _encode_spec(spec),
    }
    return json.dumps(header, sort_keys=True) + "\n"


def _record_line(cell: SweepCell, result: ScenarioResult) -> str:
    substrate = substrate_digest(cell)
    payload = _encode_result(result)
    record = {
        "index": cell.index,
        "seed": cell.config.seed,
        "substrate": substrate,
        "payload": payload,
        "crc": _record_crc(cell.index, cell.config.seed, substrate, payload),
    }
    return json.dumps(record, sort_keys=True) + "\n"


@dataclass(slots=True)
class CheckpointData:
    """What a checkpoint file held: the spec it belongs to, every
    recovered cell result (first record per index wins), the byte
    offset of the last valid line, and how many tail lines were
    dropped as torn/corrupt."""

    spec: SweepSpec
    digest: str
    results: dict[int, "ScenarioResult"]
    valid_bytes: int
    dropped_lines: int


def load_checkpoint(
    path: str | os.PathLike[str], spec: SweepSpec | None = None
) -> CheckpointData:
    """Read a checkpoint, trusting only its valid prefix.

    With *spec* given, the header's spec digest must match it (a
    mismatch raises :class:`CheckpointError` -- merging someone else's
    cells would silently corrupt a sweep).  A missing/empty file and a
    bad header also raise; torn or corrupt *record* lines never do --
    the log is truncated at the first bad line and
    ``dropped_lines`` counts what was discarded.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not blob:
        raise CheckpointError(f"checkpoint {path} is empty")
    lines = blob.splitlines(keepends=True)
    header_line = lines[0]
    if not header_line.endswith(b"\n"):
        raise CheckpointError(f"checkpoint {path} has a torn header")
    try:
        header = json.loads(header_line)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} has an unparsable header"
        ) from exc
    if (
        not isinstance(header, dict)
        or header.get("format") != FORMAT
        or header.get("version") != VERSION
    ):
        raise CheckpointError(
            f"{path} is not a version-{VERSION} sweep checkpoint"
        )
    try:
        header_spec = _decode_spec(header["spec"])
    except (KeyError, ValueError, zlib.error, pickle.UnpicklingError) as exc:
        raise CheckpointError(
            f"checkpoint {path} header carries no loadable spec"
        ) from exc
    digest = str(header.get("spec_digest", ""))
    if spec is not None and digest != spec_digest(spec):
        raise CheckpointError(
            f"checkpoint {path} belongs to a different sweep spec "
            f"(digest {digest[:12]}... != {spec_digest(spec)[:12]}...)"
        )
    against = spec if spec is not None else header_spec

    results: dict[int, ScenarioResult] = {}
    valid_bytes = len(header_line)
    valid_lines = 1
    for line in lines[1:]:
        record = _parse_record(line, against)
        if record is None:
            # Torn/corrupt line: in an append-only log everything at
            # and after it is the untrusted tail -- truncate here.
            break
        index, result = record
        results.setdefault(index, result)
        valid_bytes += len(line)
        valid_lines += 1
    return CheckpointData(
        spec=header_spec,
        digest=digest,
        results=results,
        valid_bytes=valid_bytes,
        dropped_lines=len(lines) - valid_lines,
    )


def _parse_record(
    line: bytes, spec: SweepSpec
) -> tuple[int, "ScenarioResult"] | None:
    """One record line -> ``(index, result)``, or ``None`` if torn or
    corrupt (bad JSON, missing newline, wrong fields, crc mismatch,
    key mismatch against *spec*, or unloadable payload)."""
    if not line.endswith(b"\n"):
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict):
        return None
    try:
        index = int(record["index"])
        seed = int(record["seed"])
        substrate = str(record["substrate"])
        payload = str(record["payload"])
        crc = int(record["crc"])
    except (KeyError, TypeError, ValueError):
        return None
    if crc != _record_crc(index, seed, substrate, payload):
        return None
    if not 0 <= index < spec.n_cells:
        return None
    cell = spec.cell(index)
    if seed != cell.config.seed or substrate != substrate_digest(cell):
        return None
    try:
        result = _decode_result(payload)
    except Exception:
        return None
    return index, result


class CheckpointWriter:
    """Append-only writer over a checkpoint file.

    Creating one either starts a fresh log (header written atomically
    via a temp file + ``os.replace``) or re-opens an existing one: the
    file is loaded, its torn tail (if any) physically truncated, and
    appends continue after the last valid record.  ``record()`` is
    idempotent per cell index, and every append is flushed and fsynced
    before returning, so a record is durable the moment the call
    returns.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        spec: SweepSpec,
        *,
        data: CheckpointData | None = None,
    ) -> None:
        self.path = os.fspath(path)
        self._spec = spec
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if exists:
            if data is None:
                data = load_checkpoint(self.path, spec)
            self._recorded = set(data.results)
            self._handle = open(self.path, "r+b")
            self._handle.truncate(data.valid_bytes)
            self._handle.seek(0, os.SEEK_END)
        else:
            self._recorded = set()
            tmp = self.path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(_header_line(spec).encode("ascii"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self._handle = open(self.path, "ab")

    @property
    def recorded(self) -> frozenset[int]:
        """Cell indices already durable in this checkpoint."""
        return frozenset(self._recorded)

    def record(self, cell: SweepCell, result: "ScenarioResult") -> None:
        """Append one completed cell (no-op if already recorded)."""
        if cell.index in self._recorded:
            return
        line = _record_line(cell, result).encode("ascii")
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._recorded.add(cell.index)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def resume_command(
    path: str, *, jobs: int | None = None
) -> str:
    """The CLI invocation that resumes from *path* (printed on
    interrupt so the operator can copy-paste it)."""
    parts = ["anycast-ddos sweep", f"--resume {path}"]
    if jobs is not None and jobs != 1:
        parts.append(f"--jobs {jobs}")
    return " ".join(parts)


def checkpoint_summary(
    results: Mapping[int, object], n_cells: int
) -> str:
    """One-line human description of a loaded checkpoint."""
    return f"{len(results)}/{n_cells} cell(s) restored from checkpoint"
