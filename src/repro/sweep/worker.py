"""Pool-worker side of the sweep runner.

Each worker process keeps a small cache of
:class:`~repro.scenario.engine.Substrate` objects keyed by
:func:`~repro.scenario.engine.substrate_signature`: consecutive cells
that differ only in run-time knobs (events, overload model,
controllers, faults) reuse the expensive topology/deployment/VP build
instead of repeating it.  Substrate reuse is bit-identical to a fresh
build (``tests/scenario/test_substrate.py``), so caching cannot change
any output.

Fault-stream isolation: each cell's ``FaultPlan`` is resolved inside
:func:`~repro.scenario.engine.simulate` from a fresh
:class:`~repro.util.rng.RngFactory` seeded with that cell's own seed
-- the worker holds no shared fault RNG, so a cell's fault draws are
a pure function of its config, wherever it runs.

The serial (``jobs=1``) path goes through :func:`run_chunk_serial`,
which pickle-roundtrips the chunk first: worker processes only ever
see pickled copies of cell configs, and mirroring that inline keeps
stateful objects inside a config (e.g. defense controllers, which
accumulate per-run state) from leaking between cells or back into the
caller's spec.  That is what makes ``jobs=1`` and ``jobs=N``
bit-identical by construction.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING

from ..scenario.engine import Substrate, build_substrate, simulate
from ..scenario.engine import substrate_signature

if TYPE_CHECKING:
    from ..scenario.engine import ScenarioResult
    from .spec import SweepCell

#: Per-process substrate cache; signature -> substrate.  Bounded: a
#: chunk walks cells in index order, so only the most recent
#: signatures are worth keeping.
_SUBSTRATE_CACHE: dict[tuple[object, ...], Substrate] = {}
_CACHE_MAX = 4


def init_worker() -> None:
    """Process-pool initializer: start with an empty substrate cache."""
    _SUBSTRATE_CACHE.clear()


def _substrate_for(cell: SweepCell) -> Substrate:
    signature = substrate_signature(cell.config)
    substrate = _SUBSTRATE_CACHE.get(signature)
    if substrate is None:
        substrate = build_substrate(cell.config)
        while len(_SUBSTRATE_CACHE) >= _CACHE_MAX:
            _SUBSTRATE_CACHE.pop(next(iter(_SUBSTRATE_CACHE)))
        _SUBSTRATE_CACHE[signature] = substrate
    return substrate


def run_chunk(
    cells: tuple[SweepCell, ...],
) -> list[tuple[int, ScenarioResult]]:
    """Simulate one chunk of cells; results keyed by cell index."""
    return [
        (cell.index, simulate(cell.config, _substrate_for(cell)))
        for cell in cells
    ]


def run_chunk_serial(
    cells: tuple[SweepCell, ...],
) -> list[tuple[int, ScenarioResult]]:
    """Inline chunk execution mirroring the process boundary.

    The chunk is pickle-roundtripped before running, exactly as a pool
    worker would receive it, so the serial path sees the same fresh
    config copies as the parallel one.
    """
    return run_chunk(pickle.loads(pickle.dumps(cells)))
