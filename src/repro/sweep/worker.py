"""Pool-worker side of the sweep runner.

Each worker process keeps a small cache of
:class:`~repro.scenario.engine.Substrate` objects keyed by
:func:`~repro.scenario.engine.substrate_signature`: consecutive cells
that differ only in run-time knobs (events, overload model,
controllers, faults) reuse the expensive topology/deployment/VP build
instead of repeating it.  Substrate reuse is bit-identical to a fresh
build (``tests/scenario/test_substrate.py``), so caching cannot change
any output.

Fault-stream isolation: each cell's ``FaultPlan`` is resolved inside
:func:`~repro.scenario.engine.simulate` from a fresh
:class:`~repro.util.rng.RngFactory` seeded with that cell's own seed
-- the worker holds no shared fault RNG, so a cell's fault draws are
a pure function of its config, wherever it runs.

Supervision contract: a worker never lets one cell's exception escape
the task -- every cell produces a :class:`CellOutcome`, carrying
either the result or the error string, plus the worker's pid and the
cell's routing-layer counter deltas (``DELTA_STATS`` /
``PREFIX_CACHE_STATS``), so the parent can retry failed cells, spot
which process did what, and surface fallback storms.  Only process
death (crash, chaos kill, OOM) loses a task, and the runner detects
that as ``BrokenProcessPool``.

The serial (``jobs=1``) path goes through :func:`run_cells_serial`,
which pickle-roundtrips the cells first: worker processes only ever
see pickled copies of cell configs, and mirroring that inline keeps
stateful objects inside a config (e.g. defense controllers, which
accumulate per-run state) from leaking between cells or back into the
caller's spec.  That is what makes ``jobs=1`` and ``jobs=N``
bit-identical by construction.
"""

from __future__ import annotations

import os
import pickle
import resource
import signal
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Mapping, Sequence

from ..devtools import sanitize
from ..netsim import DELTA_STATS
from ..netsim.anycast import PREFIX_CACHE_STATS
from ..scenario.engine import Substrate, build_substrate, simulate
from ..scenario.engine import substrate_signature
from .chaos import maybe_inject
from .shm import SHM_STATS, SubstrateManifest, attach_substrate

if TYPE_CHECKING:
    from ..scenario.engine import ScenarioResult
    from .spec import SweepCell

#: Per-process substrate cache; signature -> substrate.  Bounded: a
#: chunk walks cells in index order, so only the most recent
#: signatures are worth keeping.
_SUBSTRATE_CACHE: dict[tuple[object, ...], Substrate] = {}
_CACHE_MAX = 4

#: Per-process attached-segment cache; manifest digest -> (segment,
#: substrate view).  Same FIFO bound as the build cache.  Eviction
#: only drops the references -- it must NOT ``close()`` the segment,
#: because live numpy views over its buffer would raise
#: ``BufferError``; the mapping goes away when the views do, and the
#: parent owns the unlink.
_SHM_CACHE: dict[str, tuple[shared_memory.SharedMemory, Substrate]] = {}

#: signature -> manifest routing table for the current task, installed
#: by :func:`run_cells` for the duration of one task.
_MANIFESTS: dict[tuple[object, ...], SubstrateManifest] = {}

#: True inside a process-pool worker (set by :func:`init_worker`);
#: gates chaos actions that must never take down the parent.
_IN_WORKER = False


@dataclass(frozen=True, slots=True)
class CellOutcome:
    """What one attempt at one cell produced.

    Exactly one of ``result``/``error`` is set.  ``routing_stats``
    holds this cell's *deltas* of the process-global routing counters
    (keys prefixed ``delta/`` and ``prefix_cache/``), so the parent
    can sum them across workers without double counting.
    """

    index: int
    result: "ScenarioResult | None"
    error: str | None
    worker_pid: int
    routing_stats: dict[str, int]
    #: This worker's peak RSS (``ru_maxrss``, KiB on Linux) observed
    #: right after the cell ran -- a high-water mark, not a per-cell
    #: delta, so the parent takes a max per pid, not a sum.
    peak_rss_kb: int = field(default=0)


def init_worker() -> None:
    """Process-pool initializer: empty substrate cache, worker flag,
    clean signal disposition.

    With the ``fork`` start method a worker inherits the parent's
    graceful-drain SIGINT/SIGTERM handlers (the runner installs them
    before spawning the pool); left in place they would swallow the
    supervisor's ``terminate()`` and turn every pool kill into a hang.
    Workers therefore restore SIGTERM to its default (die) and ignore
    SIGINT (a Ctrl-C goes to the whole foreground process group; the
    *parent* drains gracefully and decides the workers' fate).
    """
    global _IN_WORKER
    _IN_WORKER = True
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _SUBSTRATE_CACHE.clear()
    _SHM_CACHE.clear()
    _MANIFESTS.clear()


def _shared_substrate_for(manifest: SubstrateManifest) -> Substrate:
    """Substrate view for *manifest*, attached at most once per
    process (keyed by content digest, so a pool respawn or segment
    re-export of identical content still hits the cache)."""
    cached = _SHM_CACHE.get(manifest.digest)
    if cached is not None:
        return cached[1]
    shm, substrate = attach_substrate(manifest)
    SHM_STATS["attach"] += 1
    while len(_SHM_CACHE) >= _CACHE_MAX:
        _SHM_CACHE.pop(next(iter(_SHM_CACHE)))
    _SHM_CACHE[manifest.digest] = (shm, substrate)
    return substrate


def _substrate_for(cell: SweepCell) -> Substrate:
    signature = substrate_signature(cell.config)
    manifest = _MANIFESTS.get(signature)
    if manifest is not None:
        try:
            substrate = _shared_substrate_for(manifest)
        except Exception:
            # Shared memory is a transport optimization, never a
            # correctness dependency: any attach failure (segment gone,
            # mapping refused, skeleton drift) falls back to the local
            # build below, which is bit-identical by the
            # substrate-reuse contract.
            SHM_STATS["fallback"] += 1
        else:
            SHM_STATS["cell"] += 1
            return substrate
    substrate = _SUBSTRATE_CACHE.get(signature)
    if substrate is None:
        substrate = build_substrate(cell.config)
        while len(_SUBSTRATE_CACHE) >= _CACHE_MAX:
            _SUBSTRATE_CACHE.pop(next(iter(_SUBSTRATE_CACHE)))
        _SUBSTRATE_CACHE[signature] = substrate
    return substrate


def _stats_snapshot() -> dict[str, int]:
    snapshot = {f"delta/{k}": v for k, v in DELTA_STATS.items()}
    snapshot.update(
        {f"prefix_cache/{k}": v for k, v in PREFIX_CACHE_STATS.items()}
    )
    snapshot.update({f"shm/{k}": v for k, v in SHM_STATS.items()})
    return snapshot


def _run_cell(cell: SweepCell, attempt: int) -> CellOutcome:
    """One attempt at one cell; exceptions become error outcomes."""
    pid = os.getpid()
    sanitizing = sanitize.enabled()
    before = _stats_snapshot()
    try:
        maybe_inject(cell.index, attempt, in_worker=_IN_WORKER)
        substrate = _substrate_for(cell)
        if sanitizing:
            # Per-cell draw accounting covers the simulate phase only:
            # the counters are zeroed *after* the substrate lookup,
            # because a build may be served from the per-process cache
            # -- counting its draws would make the telemetry depend on
            # cache warmth, not on the cell's config.  Zeroed here,
            # the reported ``sanitize/stream/*`` deltas are a pure
            # function of the cell's config, identical wherever (and
            # under whatever jobs count) the cell runs.
            sanitize.reset_streams()
        result = simulate(cell.config, substrate)
    except Exception as exc:
        return CellOutcome(
            index=cell.index,
            result=None,
            error=f"{type(exc).__name__}: {exc}",
            worker_pid=pid,
            routing_stats={},
            peak_rss_kb=_peak_rss_kb(),
        )
    after = _stats_snapshot()
    stats = {
        name: after[name] - before[name]
        for name in after
        if after[name] != before[name]
    }
    if sanitizing:
        stats.update(
            {
                f"sanitize/stream/{label}": count
                for label, count in sanitize.stream_report().items()
            }
        )
    return CellOutcome(
        index=cell.index,
        result=result,
        error=None,
        worker_pid=pid,
        routing_stats=stats,
        peak_rss_kb=_peak_rss_kb(),
    )


def _install_manifests(
    manifests: Mapping[tuple[object, ...], SubstrateManifest] | None,
) -> None:
    """Install (or clear, with ``None``) the signature -> manifest
    routing table for the current task."""
    _MANIFESTS.clear()
    if manifests:
        _MANIFESTS.update(manifests)


def _peak_rss_kb() -> int:
    """This process's lifetime peak RSS in KiB (``ru_maxrss`` is
    already KiB on Linux, bytes on macOS -- normalised here)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if os.uname().sysname == "Darwin":
        peak //= 1024
    return int(peak)


def run_cells(
    cells: tuple[SweepCell, ...],
    attempts: Mapping[int, int],
    manifests: Mapping[tuple[object, ...], SubstrateManifest] | None = None,
) -> list[CellOutcome]:
    """Simulate one task's cells; one outcome per cell, index order.

    *attempts* maps cell index to the 0-based attempt number the
    runner is on, which the chaos hook keys off.  *manifests* (when
    the shared-memory layer is on) maps substrate signatures to
    shared-segment manifests; cells whose signature appears there are
    served from a zero-copy attached substrate instead of a local
    build.  A failing cell does not stop the rest of the task -- its
    outcome carries the error.
    """
    _install_manifests(manifests)
    try:
        return [
            _run_cell(cell, attempts.get(cell.index, 0)) for cell in cells
        ]
    finally:
        _install_manifests(None)


def run_cells_serial(
    cells: Sequence[SweepCell],
    attempts: Mapping[int, int],
    manifests: Mapping[tuple[object, ...], SubstrateManifest] | None = None,
) -> list[CellOutcome]:
    """Inline execution mirroring the process boundary.

    The cells are pickle-roundtripped before running, exactly as a
    pool worker would receive them, so the serial path sees the same
    fresh config copies as the parallel one.
    """
    return run_cells(
        pickle.loads(pickle.dumps(tuple(cells))), attempts, manifests
    )
