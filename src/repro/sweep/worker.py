"""Pool-worker side of the sweep runner.

Each worker process keeps a small cache of
:class:`~repro.scenario.engine.Substrate` objects keyed by
:func:`~repro.scenario.engine.substrate_signature`: consecutive cells
that differ only in run-time knobs (events, overload model,
controllers, faults) reuse the expensive topology/deployment/VP build
instead of repeating it.  Substrate reuse is bit-identical to a fresh
build (``tests/scenario/test_substrate.py``), so caching cannot change
any output.

Fault-stream isolation: each cell's ``FaultPlan`` is resolved inside
:func:`~repro.scenario.engine.simulate` from a fresh
:class:`~repro.util.rng.RngFactory` seeded with that cell's own seed
-- the worker holds no shared fault RNG, so a cell's fault draws are
a pure function of its config, wherever it runs.

Supervision contract: a worker never lets one cell's exception escape
the task -- every cell produces a :class:`CellOutcome`, carrying
either the result or the error string, plus the worker's pid and the
cell's routing-layer counter deltas (``DELTA_STATS`` /
``PREFIX_CACHE_STATS``), so the parent can retry failed cells, spot
which process did what, and surface fallback storms.  Only process
death (crash, chaos kill, OOM) loses a task, and the runner detects
that as ``BrokenProcessPool``.

The serial (``jobs=1``) path goes through :func:`run_cells_serial`,
which pickle-roundtrips the cells first: worker processes only ever
see pickled copies of cell configs, and mirroring that inline keeps
stateful objects inside a config (e.g. defense controllers, which
accumulate per-run state) from leaking between cells or back into the
caller's spec.  That is what makes ``jobs=1`` and ``jobs=N``
bit-identical by construction.
"""

from __future__ import annotations

import os
import pickle
import signal
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..devtools import sanitize
from ..netsim import DELTA_STATS
from ..netsim.anycast import PREFIX_CACHE_STATS
from ..scenario.engine import Substrate, build_substrate, simulate
from ..scenario.engine import substrate_signature
from .chaos import maybe_inject

if TYPE_CHECKING:
    from ..scenario.engine import ScenarioResult
    from .spec import SweepCell

#: Per-process substrate cache; signature -> substrate.  Bounded: a
#: chunk walks cells in index order, so only the most recent
#: signatures are worth keeping.
_SUBSTRATE_CACHE: dict[tuple[object, ...], Substrate] = {}
_CACHE_MAX = 4

#: True inside a process-pool worker (set by :func:`init_worker`);
#: gates chaos actions that must never take down the parent.
_IN_WORKER = False


@dataclass(frozen=True, slots=True)
class CellOutcome:
    """What one attempt at one cell produced.

    Exactly one of ``result``/``error`` is set.  ``routing_stats``
    holds this cell's *deltas* of the process-global routing counters
    (keys prefixed ``delta/`` and ``prefix_cache/``), so the parent
    can sum them across workers without double counting.
    """

    index: int
    result: "ScenarioResult | None"
    error: str | None
    worker_pid: int
    routing_stats: dict[str, int]


def init_worker() -> None:
    """Process-pool initializer: empty substrate cache, worker flag,
    clean signal disposition.

    With the ``fork`` start method a worker inherits the parent's
    graceful-drain SIGINT/SIGTERM handlers (the runner installs them
    before spawning the pool); left in place they would swallow the
    supervisor's ``terminate()`` and turn every pool kill into a hang.
    Workers therefore restore SIGTERM to its default (die) and ignore
    SIGINT (a Ctrl-C goes to the whole foreground process group; the
    *parent* drains gracefully and decides the workers' fate).
    """
    global _IN_WORKER
    _IN_WORKER = True
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _SUBSTRATE_CACHE.clear()


def _substrate_for(cell: SweepCell) -> Substrate:
    signature = substrate_signature(cell.config)
    substrate = _SUBSTRATE_CACHE.get(signature)
    if substrate is None:
        substrate = build_substrate(cell.config)
        while len(_SUBSTRATE_CACHE) >= _CACHE_MAX:
            _SUBSTRATE_CACHE.pop(next(iter(_SUBSTRATE_CACHE)))
        _SUBSTRATE_CACHE[signature] = substrate
    return substrate


def _stats_snapshot() -> dict[str, int]:
    snapshot = {f"delta/{k}": v for k, v in DELTA_STATS.items()}
    snapshot.update(
        {f"prefix_cache/{k}": v for k, v in PREFIX_CACHE_STATS.items()}
    )
    return snapshot


def _run_cell(cell: SweepCell, attempt: int) -> CellOutcome:
    """One attempt at one cell; exceptions become error outcomes."""
    pid = os.getpid()
    sanitizing = sanitize.enabled()
    before = _stats_snapshot()
    try:
        maybe_inject(cell.index, attempt, in_worker=_IN_WORKER)
        substrate = _substrate_for(cell)
        if sanitizing:
            # Per-cell draw accounting covers the simulate phase only:
            # the counters are zeroed *after* the substrate lookup,
            # because a build may be served from the per-process cache
            # -- counting its draws would make the telemetry depend on
            # cache warmth, not on the cell's config.  Zeroed here,
            # the reported ``sanitize/stream/*`` deltas are a pure
            # function of the cell's config, identical wherever (and
            # under whatever jobs count) the cell runs.
            sanitize.reset_streams()
        result = simulate(cell.config, substrate)
    except Exception as exc:
        return CellOutcome(
            index=cell.index,
            result=None,
            error=f"{type(exc).__name__}: {exc}",
            worker_pid=pid,
            routing_stats={},
        )
    after = _stats_snapshot()
    stats = {
        name: after[name] - before[name]
        for name in after
        if after[name] != before[name]
    }
    if sanitizing:
        stats.update(
            {
                f"sanitize/stream/{label}": count
                for label, count in sanitize.stream_report().items()
            }
        )
    return CellOutcome(
        index=cell.index,
        result=result,
        error=None,
        worker_pid=pid,
        routing_stats=stats,
    )


def run_cells(
    cells: tuple[SweepCell, ...], attempts: Mapping[int, int]
) -> list[CellOutcome]:
    """Simulate one task's cells; one outcome per cell, index order.

    *attempts* maps cell index to the 0-based attempt number the
    runner is on, which the chaos hook keys off.  A failing cell does
    not stop the rest of the task -- its outcome carries the error.
    """
    return [_run_cell(cell, attempts.get(cell.index, 0)) for cell in cells]


def run_cells_serial(
    cells: Sequence[SweepCell], attempts: Mapping[int, int]
) -> list[CellOutcome]:
    """Inline execution mirroring the process boundary.

    The cells are pickle-roundtripped before running, exactly as a
    pool worker would receive them, so the serial path sees the same
    fresh config copies as the parallel one.
    """
    return run_cells(pickle.loads(pickle.dumps(tuple(cells))), attempts)
