"""The sweep runner: serial or process-parallel, supervised either way.

Determinism contract
--------------------

* Cells are enumerated by the spec (seeds outermost); every result
  lands in an index-keyed slot, never appended in completion order.
* Workers receive pickled cell copies; the serial path pickles too
  (:func:`~repro.sweep.worker.run_cells_serial`), so both paths see
  identical inputs.
* Each cell's simulation draws only from RNG streams derived from its
  own config seed; substrate reuse inside a worker is proven
  bit-identical to a fresh build.

Hence ``run_sweep(spec, jobs=N)`` returns bit-identical results for
every ``N``; only the progress-event interleaving and wall times vary.
``tests/sweep/test_parallel_golden.py`` asserts this against the
golden fixture.

Supervision contract
--------------------

Because every cell is a pure function of its own config, *when* and
*where* a cell runs -- first try or third retry, original pool or a
respawned one, this run or a resumed one -- cannot change its output.
The supervision layer leans on that:

* Worker death (``BrokenProcessPool``) and per-cell wall-clock
  timeouts are detected in the parent; the pool is respawned and only
  the incomplete cells are re-dispatched, with the attempt counter
  incremented for every cell that was in flight (the dying worker
  cannot be attributed more precisely than that).
* Failed attempts are retried up to ``max_retries`` with exponential
  backoff.  The backoff *schedule* is a pure function of the retry
  round (``backoff_base_s * 2**(round-1)``, capped) -- no wall-clock
  read feeds the decision; the parent just sleeps.
* A cell that exhausts its retries is quarantined: recorded as a
  failure, flagged ``cell-failed`` on its point's summary by
  :func:`~repro.sweep.aggregate.summarize`, and the sweep carries on.
* With ``checkpoint=<path>``, every completed cell is appended to a
  crash-safe write-ahead log the moment it arrives
  (:mod:`repro.sweep.checkpoint`); an existing, spec-matching log is
  resumed from automatically, and the merged output is bit-identical
  to an uninterrupted run.
* SIGINT/SIGTERM drain gracefully: in-flight work is abandoned (it is
  already durable or repeatable), the checkpoint is flushed, and
  :class:`SweepInterrupted` carries the resume command.  A second
  signal aborts immediately.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..util.env import SWEEP_SHM, env_flag
from .aggregate import CellSummary, summarize
from .checkpoint import CheckpointWriter, load_checkpoint, resume_command
from .shm import (
    SharedSubstrate,
    SubstrateManifest,
    export_shared_substrates,
)
from .progress import (
    CELL_DONE,
    CELL_FAILED,
    CELL_RESTORED,
    CELL_RETRY,
    SWEEP_DONE,
    SWEEP_START,
    ProgressCallback,
    ProgressEvent,
)
from .spec import SweepCell, SweepSpec
from .worker import CellOutcome, init_worker, run_cells, run_cells_serial

if TYPE_CHECKING:
    from ..scenario.engine import ScenarioResult

#: Longest single backoff sleep, whatever the retry round.
BACKOFF_CAP_S = 30.0

#: How often the pool supervisor wakes to check deadlines/signals.
_POLL_S = 0.1


class SweepInterrupted(RuntimeError):
    """A sweep was stopped by SIGINT/SIGTERM after a graceful drain.

    Carries everything the caller needs to tell the operator how to
    pick the run back up; the checkpoint (when one was configured) is
    already flushed by the time this is raised.
    """

    def __init__(
        self,
        signal_name: str,
        completed: int,
        total: int,
        checkpoint_path: str | None,
    ) -> None:
        self.signal_name = signal_name
        self.completed = completed
        self.total = total
        self.checkpoint_path = checkpoint_path
        detail = f"{completed}/{total} cell(s) completed"
        if checkpoint_path is not None:
            detail += f"; resume with: {resume_command(checkpoint_path)}"
        else:
            detail += "; no checkpoint was configured, progress is lost"
        super().__init__(
            f"sweep interrupted by {signal_name} ({detail})"
        )


@dataclass(slots=True)
class SweepResult:
    """Everything a finished sweep produced.

    ``results`` is in cell-index order (identical for any worker
    count); a slot is ``None`` only for a quarantined cell, whose
    index then appears in ``failures``.  ``summaries`` is in point
    order with replicates folded (failed replicates flagged).
    ``elapsed_s``, ``attempts``, ``routing_stats``, and ``restored``
    are telemetry only and never feed back into any simulated
    quantity.
    """

    spec: SweepSpec
    cells: tuple[SweepCell, ...]
    results: list["ScenarioResult | None"]
    summaries: tuple[CellSummary, ...]
    jobs: int
    elapsed_s: float
    #: Quarantined cells: index -> failure description.
    failures: dict[int, str] = field(default_factory=dict)
    #: Attempts actually started per cell index (1 for a clean run).
    attempts: dict[int, int] = field(default_factory=dict)
    #: Summed per-cell routing-layer counter deltas across all
    #: workers (``delta/*`` and ``prefix_cache/*`` keys).
    routing_stats: dict[str, int] = field(default_factory=dict)
    #: Cell indices restored from the checkpoint instead of re-run.
    restored: tuple[int, ...] = ()
    checkpoint_path: str | None = None
    #: Shared-memory segments exported for this run (0 when the layer
    #: is disabled, the run was serial, or no signature was shared by
    #: enough cells to be worth exporting).
    shm_segments: int = 0
    #: Peak RSS per worker pid (KiB), as reported by the last outcome
    #: each worker returned.  Telemetry only.
    worker_rss_kb: dict[int, int] = field(default_factory=dict)

    def result_of(self, index: int) -> "ScenarioResult":
        result = self.results[index]
        if result is None:
            raise RuntimeError(
                f"cell {index} was quarantined: "
                f"{self.failures.get(index, 'unknown failure')}"
            )
        return result


def default_start_method() -> str:
    """``fork`` where available (cheap, shares the loaded code), else
    ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def default_chunk_size(n_cells: int, jobs: int) -> int:
    """Contiguous cells per task: ~4 tasks per worker for balance,
    while keeping chunks long enough to hit the substrate cache."""
    return max(1, math.ceil(n_cells / max(1, jobs * 4)))


def backoff_schedule_s(
    round_index: int, base_s: float, cap_s: float = BACKOFF_CAP_S
) -> float:
    """Seconds to sleep before retry round *round_index* (1-based).

    Pure function of the round number -- the deterministic part of the
    backoff; only the parent's ``time.sleep`` consumes it.
    """
    if round_index < 1 or base_s <= 0.0:
        return 0.0
    return min(cap_s, base_s * (2.0 ** (round_index - 1)))


def _chunks(
    cells: Sequence[SweepCell], chunk_size: int
) -> list[tuple[SweepCell, ...]]:
    return [
        tuple(cells[start : start + chunk_size])
        for start in range(0, len(cells), chunk_size)
    ]


@dataclass(slots=True)
class _Supervisor:
    """Mutable bookkeeping shared by the serial and pool paths."""

    spec: SweepSpec
    cells: tuple[SweepCell, ...]
    progress: ProgressCallback | None
    max_retries: int
    writer: CheckpointWriter | None
    started: float
    slots: list["ScenarioResult | None"] = field(default_factory=list)
    failures: dict[int, str] = field(default_factory=dict)
    tries: dict[int, int] = field(default_factory=dict)
    routing_stats: dict[str, int] = field(default_factory=dict)
    completed: int = 0
    #: Signal name once a graceful stop was requested.
    stop_signal: str | None = None
    #: Shared-memory segments exported for the pool path.
    shm_segments: int = 0
    #: Peak RSS per worker pid (KiB); a high-water mark, so max-merged.
    worker_rss: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.slots:
            self.slots = [None] * len(self.cells)
        self.tries = {cell.index: 0 for cell in self.cells}

    # -- helpers -------------------------------------------------------

    def elapsed(self) -> float:
        return time.perf_counter() - self.started  # repro: noqa DET003 -- progress/telemetry only; never reaches simulated outputs

    def emit(self, event: ProgressEvent) -> None:
        if self.progress is not None:
            self.progress(event)

    def incomplete(self) -> list[SweepCell]:
        return [
            cell
            for cell in self.cells
            if self.slots[cell.index] is None
            and cell.index not in self.failures
        ]

    def restore(self, index: int, result: "ScenarioResult") -> None:
        self.slots[index] = result
        self.completed += 1
        self.emit(
            ProgressEvent(
                kind=CELL_RESTORED,
                completed=self.completed,
                total=len(self.cells),
                index=index,
                label=self.cells[index].label,
                elapsed_s=self.elapsed(),
            )
        )

    def store(self, outcome: CellOutcome) -> None:
        index = outcome.index
        if self.slots[index] is not None:
            raise RuntimeError(f"cell {index} produced twice")
        assert outcome.result is not None
        self.slots[index] = outcome.result
        self.completed += 1
        for name, value in outcome.routing_stats.items():
            self.routing_stats[name] = (
                self.routing_stats.get(name, 0) + value
            )
        if self.writer is not None:
            self.writer.record(self.cells[index], outcome.result)
        self.emit(
            ProgressEvent(
                kind=CELL_DONE,
                completed=self.completed,
                total=len(self.cells),
                index=index,
                label=self.cells[index].label,
                elapsed_s=self.elapsed(),
                worker_pid=outcome.worker_pid,
                attempt=self.tries[index],
                max_attempts=self.max_retries + 1,
            )
        )

    def fail_attempt(self, index: int, reason: str) -> None:
        """One attempt at *index* failed: schedule a retry or, when
        retries are exhausted, quarantine the cell."""
        attempts = self.tries[index]
        if attempts > self.max_retries:
            self.failures[index] = (
                f"failed after {attempts} attempt(s): {reason}"
            )
            self.emit(
                ProgressEvent(
                    kind=CELL_FAILED,
                    completed=self.completed,
                    total=len(self.cells),
                    index=index,
                    label=self.cells[index].label,
                    elapsed_s=self.elapsed(),
                    attempt=attempts,
                    max_attempts=self.max_retries + 1,
                    reason=reason,
                )
            )
        else:
            self.emit(
                ProgressEvent(
                    kind=CELL_RETRY,
                    completed=self.completed,
                    total=len(self.cells),
                    index=index,
                    label=self.cells[index].label,
                    elapsed_s=self.elapsed(),
                    attempt=attempts + 1,
                    max_attempts=self.max_retries + 1,
                    reason=reason,
                )
            )

    def handle_outcomes(self, outcomes: Sequence[CellOutcome]) -> None:
        for outcome in outcomes:
            if outcome.peak_rss_kb > 0:
                pid = outcome.worker_pid
                self.worker_rss[pid] = max(
                    self.worker_rss.get(pid, 0), outcome.peak_rss_kb
                )
            if outcome.error is None:
                self.store(outcome)
            else:
                self.fail_attempt(outcome.index, outcome.error)

    def interrupt(self, checkpoint_path: str | None) -> SweepInterrupted:
        return SweepInterrupted(
            self.stop_signal or "SIGINT",
            self.completed,
            len(self.cells),
            checkpoint_path,
        )


def _run_serial(
    sup: _Supervisor, chunk_size: int, backoff_base_s: float
) -> None:
    """Inline execution with the same retry/quarantine semantics as
    the pool path (no timeouts: there is no worker to kill)."""
    round_index = 0
    while True:
        todo = sup.incomplete()
        if not todo or sup.stop_signal:
            return
        if round_index > 0:
            time.sleep(backoff_schedule_s(round_index, backoff_base_s))
        size = chunk_size if round_index == 0 else 1
        for chunk in _chunks(todo, size):
            if sup.stop_signal:
                return
            for cell in chunk:
                sup.tries[cell.index] += 1
            attempts = {
                cell.index: sup.tries[cell.index] - 1 for cell in chunk
            }
            sup.handle_outcomes(run_cells_serial(chunk, attempts))
        round_index += 1


@dataclass(slots=True)
class _Task:
    """One in-flight pool submission."""

    cells: tuple[SweepCell, ...]
    deadline: float | None  # perf_counter deadline, None = no timeout


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly terminate a pool's worker processes (for timeouts and
    graceful drains -- ``shutdown()`` alone never stops running work).

    SIGTERM first (workers restore ``SIG_DFL`` in ``init_worker``),
    escalating to SIGKILL for anything still alive shortly after, so a
    stalled or signal-blocking worker cannot hang the supervisor.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
    # A worker killed mid-result-write leaves a truncated message in
    # the result pipe, and the executor's manager thread would block
    # in ``recv()`` forever -- the parent's own writer fd keeps the
    # pipe from ever hitting EOF.  Closing that fd turns the truncated
    # message into an EOF, the manager marks the pool broken and
    # exits, and interpreter shutdown (which joins manager threads)
    # cannot hang.
    queue = getattr(pool, "_result_queue", None)
    writer = getattr(queue, "_writer", None)
    if writer is not None:
        try:
            writer.close()
        except OSError:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pool(
    sup: _Supervisor,
    jobs: int,
    chunk_size: int,
    start_method: str | None,
    cell_timeout_s: float | None,
    backoff_base_s: float,
    checkpoint_path: str | None,
    shm_enabled: bool,
) -> None:
    context = multiprocessing.get_context(
        start_method or default_start_method()
    )
    pool: ProcessPoolExecutor | None = None

    def _spawn() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=init_worker,
        )

    # Shared-substrate export happens once, before any dispatch: the
    # parent owns every segment for the whole pool lifetime (respawns
    # included) and unlinks them in the ``finally`` below -- the one
    # cleanup covering normal completion, graceful drain, worker
    # death, and quarantine exits alike.
    shared: list[SharedSubstrate] = []
    manifests: dict[tuple[object, ...], SubstrateManifest] = {}
    try:
        if shm_enabled:
            shared, manifests = export_shared_substrates(
                sup.incomplete(),
                should_stop=lambda: sup.stop_signal is not None,
            )
            sup.shm_segments = len(shared)
        round_index = 0
        while True:
            todo = sup.incomplete()
            if not todo:
                return
            if sup.stop_signal:
                raise sup.interrupt(checkpoint_path)
            if round_index > 0:
                time.sleep(
                    backoff_schedule_s(round_index, backoff_base_s)
                )
            if pool is None:
                pool = _spawn()
            # Round 0 dispatches contiguous chunks (substrate-cache
            # friendly); retry rounds isolate cells one per task so a
            # poison cell only ever takes itself down.
            size = chunk_size if round_index == 0 else 1
            futures: dict[Future[list[CellOutcome]], _Task] = {}
            for chunk in _chunks(todo, size):
                for cell in chunk:
                    sup.tries[cell.index] += 1
                attempts = {
                    cell.index: sup.tries[cell.index] - 1
                    for cell in chunk
                }
                deadline = (
                    time.perf_counter() + cell_timeout_s * len(chunk)  # repro: noqa DET003 -- supervision deadline only; never reaches simulated outputs
                    if cell_timeout_s is not None
                    else None
                )
                futures[
                    pool.submit(
                        run_cells, chunk, attempts, manifests or None
                    )
                ] = _Task(cells=chunk, deadline=deadline)
            pool_broken = False
            while futures and not pool_broken:
                if sup.stop_signal:
                    _kill_pool(pool)
                    pool = None
                    raise sup.interrupt(checkpoint_path)
                done, _ = wait(
                    futures, timeout=_POLL_S,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    task = futures.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        for cell in task.cells:
                            if sup.slots[cell.index] is None:
                                sup.fail_attempt(
                                    cell.index, "worker died"
                                )
                    else:
                        sup.handle_outcomes(outcomes)
                if pool_broken:
                    break
                now = time.perf_counter()  # repro: noqa DET003 -- supervision deadline only; never reaches simulated outputs
                expired = [
                    (future, task)
                    for future, task in futures.items()
                    if task.deadline is not None
                    and now > task.deadline
                    and not future.done()
                ]
                if expired:
                    # A hung worker cannot be preempted; kill the pool
                    # and let the next round re-dispatch survivors.
                    for future, task in expired:
                        futures.pop(future)
                        for cell in task.cells:
                            if sup.slots[cell.index] is None:
                                sup.fail_attempt(cell.index, "timeout")
                    pool_broken = True
            if pool_broken:
                # Everything still in flight died with the pool; an
                # attempt was started for each, so it counts.
                for task in futures.values():
                    for cell in task.cells:
                        if (
                            sup.slots[cell.index] is None
                            and cell.index not in sup.failures
                        ):
                            sup.fail_attempt(cell.index, "worker died")
                _kill_pool(pool)
                pool = None
            round_index += 1
    finally:
        # Workers must be gone (or at least past submission) before
        # the segments are unlinked; unlinking a still-mapped segment
        # is safe (the kernel keeps the memory until the last map
        # drops), and a worker whose attach races the unlink falls
        # back to a local build.
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        for handle in shared:
            handle.close()


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
    start_method: str | None = None,
    checkpoint: str | os.PathLike[str] | None = None,
    max_retries: int = 2,
    cell_timeout_s: float | None = None,
    backoff_base_s: float = 0.5,
    shm: bool | None = None,
) -> SweepResult:
    """Run every cell of *spec* and fold replicates into summaries.

    ``jobs=1`` runs inline; ``jobs>1`` uses a supervised
    ``ProcessPoolExecutor`` with a per-worker substrate cache, worker
    death/timeout detection, and retry with deterministic exponential
    backoff.  Outputs are bit-identical across ``jobs`` values, across
    retries, and across checkpoint resumes.

    On the pool path, substrates whose signature is shared by two or
    more cells are built once in the parent and exported to
    shared-memory segments that workers attach zero-copy
    (:mod:`repro.sweep.shm`); *shm* forces the layer on/off, and the
    default defers to ``REPRO_SWEEP_SHM`` (on unless set to ``0``).
    The layer is transport-only -- outputs are bit-identical with it
    on, off, or falling back mid-run.

    With *checkpoint*, completed cells are persisted to an append-only
    log as they finish; if the file already exists (and matches the
    spec), those cells are restored instead of re-run.
    ``cell_timeout_s`` bounds one cell's wall time (pool path only; a
    task's budget is ``cell_timeout_s * cells_in_task``).  A cell
    failing more than ``max_retries`` retries is quarantined, not
    fatal.  SIGINT/SIGTERM raise :class:`SweepInterrupted` after the
    checkpoint is flushed; a second signal aborts immediately.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if cell_timeout_s is not None and cell_timeout_s <= 0:
        raise ValueError("cell_timeout_s must be positive")
    cells = spec.cells()
    if chunk_size is None:
        chunk_size = default_chunk_size(len(cells), jobs)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")

    started = time.perf_counter()  # repro: noqa DET003 -- progress/telemetry only; never reaches simulated outputs
    sup = _Supervisor(
        spec=spec,
        cells=cells,
        progress=progress,
        max_retries=max_retries,
        writer=None,
        started=started,
    )

    checkpoint_path: str | None = None
    restored_results: dict[int, "ScenarioResult"] = {}
    if checkpoint is not None:
        checkpoint_path = os.fspath(checkpoint)
        data = None
        if (
            os.path.exists(checkpoint_path)
            and os.path.getsize(checkpoint_path) > 0
        ):
            data = load_checkpoint(checkpoint_path, spec)
            restored_results = data.results
        sup.writer = CheckpointWriter(checkpoint_path, spec, data=data)

    sup.emit(
        ProgressEvent(
            kind=SWEEP_START, completed=0, total=len(cells)
        )
    )
    for index in sorted(restored_results):
        sup.restore(index, restored_results[index])

    # Graceful-drain signal handling: first SIGINT/SIGTERM sets a flag
    # the supervision loops poll; a second one aborts hard.  Handlers
    # can only be installed from the main thread -- elsewhere (e.g. a
    # sweep driven from a worker thread) signals keep their previous
    # behaviour.
    previous: dict[int, object] = {}

    def _request_stop(signum: int, frame: object) -> None:
        if sup.stop_signal is not None:
            raise KeyboardInterrupt
        sup.stop_signal = signal.Signals(signum).name

    in_main_thread = (
        threading.current_thread() is threading.main_thread()
    )
    if in_main_thread:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.getsignal(signum)
            signal.signal(signum, _request_stop)
    try:
        try:
            if jobs == 1:
                _run_serial(sup, chunk_size, backoff_base_s)
            else:
                shm_enabled = (
                    env_flag(SWEEP_SHM, default=True)
                    if shm is None
                    else shm
                )
                _run_pool(
                    sup, jobs, chunk_size, start_method,
                    cell_timeout_s, backoff_base_s, checkpoint_path,
                    shm_enabled,
                )
        except KeyboardInterrupt:
            sup.stop_signal = sup.stop_signal or "SIGINT"
        if sup.stop_signal is not None:
            raise sup.interrupt(checkpoint_path)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]
        if sup.writer is not None:
            sup.writer.close()

    missing = [
        i
        for i, slot in enumerate(sup.slots)
        if slot is None and i not in sup.failures
    ]
    if missing:
        raise RuntimeError(f"cells never completed: {missing}")
    summaries = summarize(spec, sup.slots, failures=sup.failures)
    elapsed = sup.elapsed()
    sup.emit(
        ProgressEvent(
            kind=SWEEP_DONE,
            completed=sup.completed,
            total=len(cells),
            elapsed_s=elapsed,
        )
    )
    return SweepResult(
        spec=spec,
        cells=cells,
        results=sup.slots,
        summaries=summaries,
        jobs=jobs,
        elapsed_s=elapsed,
        failures=dict(sup.failures),
        attempts={
            index: count
            for index, count in sup.tries.items()
            if count > 0
        },
        routing_stats=dict(sup.routing_stats),
        restored=tuple(sorted(restored_results)),
        checkpoint_path=checkpoint_path,
        shm_segments=sup.shm_segments,
        worker_rss_kb=dict(sup.worker_rss),
    )


def summaries_records(
    summaries: Sequence[CellSummary],
) -> list[dict[str, object]]:
    """JSON-friendly per-cell summary records (for files and the CLI)."""
    return [summary.as_record() for summary in summaries]
