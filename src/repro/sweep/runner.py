"""The sweep runner: serial or process-parallel, bit-identical either way.

Determinism contract
--------------------

* Cells are enumerated by the spec (seeds outermost); every result
  lands in an index-keyed slot, never appended in completion order.
* Workers receive pickled cell copies; the serial path pickles too
  (:func:`~repro.sweep.worker.run_chunk_serial`), so both paths see
  identical inputs.
* Each cell's simulation draws only from RNG streams derived from its
  own config seed; substrate reuse inside a worker is proven
  bit-identical to a fresh build.

Hence ``run_sweep(spec, jobs=N)`` returns bit-identical results for
every ``N``; only the progress-event interleaving and wall times vary.
``tests/sweep/test_parallel_golden.py`` asserts this against the
golden fixture.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from .aggregate import CellSummary, summarize
from .progress import (
    CELL_DONE,
    SWEEP_DONE,
    SWEEP_START,
    ProgressCallback,
    ProgressEvent,
)
from .spec import SweepCell, SweepSpec
from .worker import init_worker, run_chunk, run_chunk_serial

if TYPE_CHECKING:
    from ..scenario.engine import ScenarioResult


@dataclass(slots=True)
class SweepResult:
    """Everything a finished sweep produced.

    ``results`` is in cell-index order (identical for any worker
    count); ``summaries`` is in point order with replicates folded.
    ``elapsed_s`` is telemetry only and never feeds back into any
    simulated quantity.
    """

    spec: SweepSpec
    cells: tuple[SweepCell, ...]
    results: list[ScenarioResult]
    summaries: tuple[CellSummary, ...]
    jobs: int
    elapsed_s: float

    def result_of(self, index: int) -> ScenarioResult:
        return self.results[index]


def default_start_method() -> str:
    """``fork`` where available (cheap, shares the loaded code), else
    ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def default_chunk_size(n_cells: int, jobs: int) -> int:
    """Contiguous cells per task: ~4 tasks per worker for balance,
    while keeping chunks long enough to hit the substrate cache."""
    return max(1, math.ceil(n_cells / max(1, jobs * 4)))


def _chunks(
    cells: tuple[SweepCell, ...], chunk_size: int
) -> list[tuple[SweepCell, ...]]:
    return [
        cells[start : start + chunk_size]
        for start in range(0, len(cells), chunk_size)
    ]


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
    start_method: str | None = None,
) -> SweepResult:
    """Run every cell of *spec* and fold replicates into summaries.

    ``jobs=1`` runs inline; ``jobs>1`` uses a ``ProcessPoolExecutor``
    with a per-worker substrate cache.  Outputs are bit-identical
    across ``jobs`` values.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cells = spec.cells()
    if chunk_size is None:
        chunk_size = default_chunk_size(len(cells), jobs)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunks = _chunks(cells, chunk_size)
    labels = {cell.index: cell.label for cell in cells}

    started = time.perf_counter()  # repro: noqa DET003 -- progress/telemetry only; never reaches simulated outputs

    def _elapsed() -> float:
        return time.perf_counter() - started  # repro: noqa DET003 -- progress/telemetry only; never reaches simulated outputs

    def _emit(event: ProgressEvent) -> None:
        if progress is not None:
            progress(event)

    _emit(
        ProgressEvent(
            kind=SWEEP_START, completed=0, total=len(cells)
        )
    )
    slots: list[ScenarioResult | None] = [None] * len(cells)
    completed = 0

    def _store(index: int, result: ScenarioResult) -> None:
        nonlocal completed
        if slots[index] is not None:
            raise RuntimeError(f"cell {index} produced twice")
        slots[index] = result
        completed += 1
        _emit(
            ProgressEvent(
                kind=CELL_DONE,
                completed=completed,
                total=len(cells),
                index=index,
                label=labels[index],
                elapsed_s=_elapsed(),
            )
        )

    if jobs == 1:
        for chunk in chunks:
            for index, result in run_chunk_serial(chunk):
                _store(index, result)
    else:
        context = multiprocessing.get_context(
            start_method or default_start_method()
        )
        with ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=init_worker,
        ) as pool:
            futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            for future in as_completed(futures):
                for index, result in future.result():
                    _store(index, result)

    missing = [i for i, slot in enumerate(slots) if slot is None]
    if missing:
        raise RuntimeError(f"cells never completed: {missing}")
    results: list[ScenarioResult] = [slot for slot in slots if slot is not None]
    summaries = summarize(spec, results)
    elapsed = _elapsed()
    _emit(
        ProgressEvent(
            kind=SWEEP_DONE,
            completed=len(cells),
            total=len(cells),
            elapsed_s=elapsed,
        )
    )
    return SweepResult(
        spec=spec,
        cells=cells,
        results=results,
        summaries=summaries,
        jobs=jobs,
        elapsed_s=elapsed,
    )


def summaries_records(
    summaries: Sequence[CellSummary],
) -> list[dict[str, object]]:
    """JSON-friendly per-cell summary records (for files and the CLI)."""
    return [summary.as_record() for summary in summaries]
