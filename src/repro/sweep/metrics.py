"""Scalar per-cell metrics extracted from a :class:`ScenarioResult`.

The sweep aggregator folds replicate runs of one point into
mean/CI summaries; this module defines which scalars get folded.  The
set mirrors what the paper's figures quantify: legitimate-traffic
availability (the Fig. 3 reachability story), offered-weighted loss
and queueing delay (Figs. 6-7), and BGP churn (Figs. 8-9).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..scenario.engine import ScenarioResult


def _weighted_mean(values: np.ndarray, weights: np.ndarray) -> float:
    total = float(weights.sum())
    if total <= 0.0:
        return 0.0
    return float((values * weights).sum() / total)


def cell_metrics(result: ScenarioResult) -> dict[str, float]:
    """Deterministic scalar metrics for one simulated cell.

    Per letter: ``{L}/availability`` (legitimate served over offered),
    ``{L}/mean_loss`` and ``{L}/mean_delay_ms`` (offered-weighted over
    all site-bins), ``{L}/route_changes`` (total BGPmon-visible
    transitions).  Plus the cross-letter ``availability`` and
    ``mean_loss`` rollups.  Keys are identical for every replicate of
    a point, which is what lets the aggregator fold them.
    """
    metrics: dict[str, float] = {}
    total_offered = 0.0
    total_served = 0.0
    loss_sum = 0.0
    weight_sum = 0.0
    for letter in result.letters:
        truth = result.truth[letter]
        offered = float(truth.legit_offered_qps.sum())
        served = float(truth.legit_served_qps.sum())
        metrics[f"{letter}/availability"] = (
            served / offered if offered > 0.0 else 1.0
        )
        metrics[f"{letter}/mean_loss"] = _weighted_mean(
            truth.loss, truth.offered_qps
        )
        metrics[f"{letter}/mean_delay_ms"] = _weighted_mean(
            truth.delay_ms, truth.offered_qps
        )
        metrics[f"{letter}/route_changes"] = float(
            np.asarray(result.route_changes[letter]).sum()
        )
        total_offered += offered
        total_served += served
        loss_sum += float((truth.loss * truth.offered_qps).sum())
        weight_sum += float(truth.offered_qps.sum())
    metrics["availability"] = (
        total_served / total_offered if total_offered > 0.0 else 1.0
    )
    metrics["mean_loss"] = (
        loss_sum / weight_sum if weight_sum > 0.0 else 0.0
    )
    return metrics
