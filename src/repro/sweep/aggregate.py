"""Folding replicate runs of each sweep point into per-cell summaries.

Each point's replicates collapse to a :class:`MetricSummary` per
metric -- mean, sample standard deviation, and a normal-approximation
95% confidence half-width -- while every replicate's
:class:`~repro.faults.quality.DataQuality` report is *unioned*, not
dropped: a degraded replicate leaves its mark on the summary, with
flags deduplicated across replicates that degraded identically.

Quarantined cells (retries exhausted under the supervised runner) are
tolerated rather than fatal: their replicate slot arrives as ``None``
with a failure reason, the summary folds the replicates that *did*
finish, and a ``cell-failed`` :class:`~repro.faults.quality.QualityFlag`
marks the gap.  A point whose every replicate failed summarizes to an
empty metric set -- flagged, not raised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..faults.quality import DataQuality, cell_failed_flag
from .metrics import cell_metrics
from .spec import Overrides, SweepSpec

if TYPE_CHECKING:
    from ..scenario.engine import ScenarioResult

#: Two-sided 95% normal quantile; with few replicates the interval is
#: the normal approximation, not a t-interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """One metric folded over a point's replicates."""

    mean: float
    std: float        # sample std (ddof=1); 0.0 for a single replicate
    ci95_half: float  # Z_95 * std / sqrt(n), normal approximation
    n: int
    values: tuple[float, ...]  # per-replicate values, seed order

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricSummary":
        vals = tuple(float(v) for v in values)
        if not vals:
            raise ValueError("cannot summarize zero values")
        n = len(vals)
        mean = math.fsum(vals) / n
        if n > 1:
            var = math.fsum((v - mean) ** 2 for v in vals) / (n - 1)
            std = math.sqrt(var)
        else:
            std = 0.0
        return cls(
            mean=mean,
            std=std,
            ci95_half=Z_95 * std / math.sqrt(n),
            n=n,
            values=vals,
        )


@dataclass(frozen=True, slots=True)
class CellSummary:
    """One sweep point folded over its replicate seeds."""

    point_index: int
    overrides: Overrides
    seeds: tuple[int, ...]
    metrics: dict[str, MetricSummary]
    quality: DataQuality

    def as_record(self) -> dict[str, object]:
        """A flat JSON-friendly rendering (for run_paper / the CLI)."""
        record: dict[str, object] = {
            "point": self.point_index,
            "overrides": {name: repr(value) for name, value in self.overrides},
            "seeds": list(self.seeds),
            "quality_flags": [str(flag) for flag in self.quality],
        }
        record["metrics"] = {
            name: {
                "mean": summary.mean,
                "std": summary.std,
                "ci95_half": summary.ci95_half,
                "n": summary.n,
            }
            for name, summary in self.metrics.items()
        }
        return record


def summarize(
    spec: SweepSpec,
    results: Sequence[ScenarioResult | None],
    *,
    failures: Mapping[int, str] | None = None,
) -> tuple[CellSummary, ...]:
    """Per-point summaries from index-ordered sweep *results*.

    *results* must be the runner's output: one slot per cell, in
    cell-index order (seeds outermost).  Replicates of each point are
    folded in seed order, so the summary is a pure function of the
    spec -- independent of execution interleaving.

    A ``None`` slot is only legal for a cell index listed in
    *failures* (reason strings from the supervised runner); such
    replicates are excluded from the fold and flagged ``cell-failed``
    on their point's summary instead.
    """
    failures = dict(failures or {})
    if len(results) != spec.n_cells:
        raise ValueError(
            f"expected {spec.n_cells} results, got {len(results)}"
        )
    for index, result in enumerate(results):
        if result is None and index not in failures:
            raise ValueError(
                f"cell {index} has no result and no failure record"
            )
    seeds = spec.effective_seeds()
    summaries: list[CellSummary] = []
    for point_index in range(spec.n_points):
        indices = [
            seed_index * spec.n_points + point_index
            for seed_index in range(spec.n_seeds)
        ]
        present = [
            results[i] for i in indices if results[i] is not None
        ]
        per_rep = [cell_metrics(r) for r in present]
        names = list(per_rep[0]) if per_rep else []
        for rep in per_rep[1:]:
            if list(rep) != names:
                raise ValueError(
                    "replicates of one point produced different "
                    "metric sets; cannot aggregate"
                )
        quality = DataQuality().union(*(r.quality for r in present))
        fail_flags = tuple(
            cell_failed_flag(
                i, spec.effective_seeds()[i // spec.n_points], failures[i]
            )
            for i in indices
            if results[i] is None
        )
        if fail_flags:
            quality = quality.merged(DataQuality(flags=fail_flags))
        summaries.append(
            CellSummary(
                point_index=point_index,
                overrides=spec.points[point_index],
                seeds=seeds,
                metrics={
                    name: MetricSummary.of([rep[name] for rep in per_rep])
                    for name in names
                },
                quality=quality,
            )
        )
    return tuple(summaries)
