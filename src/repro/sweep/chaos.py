"""Test-only deterministic fault injection for sweep execution.

The supervision layer (worker-death detection, timeouts, retries,
checkpoint resume) is only trustworthy if it can be exercised on
demand.  This module gives tests and CI a deterministic way to make a
specific cell misbehave, gated behind the ``REPRO_SWEEP_CHAOS``
environment variable -- unset (the normal case), nothing here runs at
all.

Grammar: ``ACTION:cellINDEX[@ATTEMPT][:SECONDS]``

* ``kill:cell3`` -- the pool worker about to simulate cell 3 (first
  attempt) dies with ``os._exit(KILL_EXIT_CODE)``, exactly like an
  OOM-kill or segfault.  Worker processes only: in a serial
  (``jobs=1``) run the action is ignored rather than killing the
  parent -- use SIGINT to exercise parent-death resume.
* ``stall:cell2:30`` -- the worker sleeps 30 s before simulating
  cell 2, tripping the per-cell timeout.  Worker processes only.
* ``raise:cell1`` -- simulating cell 1 raises :class:`ChaosError`
  (any execution path, including serial), exercising the
  retry/quarantine machinery without killing anything.

``@ATTEMPT`` pins the action to one 0-based attempt (default ``@0``,
so a retried cell succeeds); ``@*`` fires on every attempt, which is
how tests make a poison cell that exhausts ``max_retries``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..util.env import SWEEP_CHAOS, env_str

#: Environment variable holding the chaos spec.
CHAOS_ENV = SWEEP_CHAOS

#: Exit status of a chaos-killed worker (distinctive in logs).
KILL_EXIT_CODE = 87

_ACTIONS = ("kill", "stall", "raise")


class ChaosError(RuntimeError):
    """The injected failure raised by a ``raise:`` chaos action."""


@dataclass(frozen=True, slots=True)
class ChaosAction:
    """One parsed ``REPRO_SWEEP_CHAOS`` directive."""

    action: str           # "kill" | "stall" | "raise"
    cell_index: int
    attempt: int | None   # None means every attempt ("@*")
    seconds: float = 0.0  # stall duration

    def matches(self, cell_index: int, attempt: int) -> bool:
        if cell_index != self.cell_index:
            return False
        return self.attempt is None or attempt == self.attempt


def parse_chaos(text: str | None) -> ChaosAction | None:
    """Parse a chaos spec; ``None`` for blank/unset, ``ValueError`` if
    malformed (a typoed spec must not silently disable the test)."""
    if text is None:
        return None
    text = text.strip()
    if not text:
        return None
    parts = text.split(":")
    if len(parts) not in (2, 3) or parts[0] not in _ACTIONS:
        raise ValueError(f"malformed {CHAOS_ENV} spec {text!r}")
    action = parts[0]
    target, _, attempt_part = parts[1].partition("@")
    if not target.startswith("cell"):
        raise ValueError(f"malformed {CHAOS_ENV} target {parts[1]!r}")
    try:
        cell_index = int(target[len("cell"):])
    except ValueError as exc:
        raise ValueError(
            f"malformed {CHAOS_ENV} target {parts[1]!r}"
        ) from exc
    attempt: int | None
    if attempt_part == "*":
        attempt = None
    elif attempt_part:
        attempt = int(attempt_part)
    else:
        attempt = 0
    seconds = 0.0
    if len(parts) == 3:
        if action != "stall":
            raise ValueError(
                f"{CHAOS_ENV}: only 'stall' takes a seconds field"
            )
        seconds = float(parts[2])
    elif action == "stall":
        raise ValueError(f"{CHAOS_ENV}: 'stall' needs a seconds field")
    return ChaosAction(
        action=action,
        cell_index=cell_index,
        attempt=attempt,
        seconds=seconds,
    )


def maybe_inject(cell_index: int, attempt: int, *, in_worker: bool) -> None:
    """Apply the configured chaos action to this (cell, attempt).

    Called by the worker immediately before simulating a cell.
    ``kill`` and ``stall`` only fire inside pool worker processes
    (``in_worker=True``); ``raise`` fires anywhere.  No-op when
    ``REPRO_SWEEP_CHAOS`` is unset.
    """
    action = parse_chaos(env_str(CHAOS_ENV))
    if action is None or not action.matches(cell_index, attempt):
        return
    if action.action == "raise":
        raise ChaosError(
            f"chaos-injected failure for cell {cell_index} "
            f"(attempt {attempt})"
        )
    if not in_worker:
        return
    if action.action == "kill":
        os._exit(KILL_EXIT_CODE)
    if action.action == "stall":
        time.sleep(action.seconds)
