"""Deterministic parallel sweep engine.

Runs grids of :class:`~repro.scenario.config.ScenarioConfig`
variations (plus seed replication) across a process pool, with
per-worker substrate caching, structured progress events, and
replicate aggregation -- while guaranteeing outputs bit-identical to
a serial run.  See ``docs/architecture.md`` ("Parallel sweeps").
"""

from .aggregate import CellSummary, MetricSummary, summarize
from .metrics import cell_metrics
from .progress import (
    CELL_DONE,
    SWEEP_DONE,
    SWEEP_START,
    ProgressCallback,
    ProgressEvent,
)
from .runner import (
    SweepResult,
    default_chunk_size,
    default_start_method,
    run_sweep,
    summaries_records,
)
from .spec import SweepCell, SweepSpec, replicate_seeds

__all__ = [
    "CELL_DONE",
    "CellSummary",
    "MetricSummary",
    "ProgressCallback",
    "ProgressEvent",
    "SWEEP_DONE",
    "SWEEP_START",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "cell_metrics",
    "default_chunk_size",
    "default_start_method",
    "replicate_seeds",
    "run_sweep",
    "summaries_records",
    "summarize",
]
