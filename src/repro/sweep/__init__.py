"""Deterministic parallel sweep engine.

Runs grids of :class:`~repro.scenario.config.ScenarioConfig`
variations (plus seed replication) across a supervised process pool,
with per-worker substrate caching, zero-copy shared-memory substrate
export (:mod:`repro.sweep.shm`), structured progress events,
replicate aggregation, crash-safe checkpointing, and retry/timeout
handling -- while guaranteeing outputs bit-identical to a serial,
uninterrupted run.  See ``docs/architecture.md`` ("Parallel sweeps",
"Zero-copy sweeps", and "Fault-tolerant sweeps").
"""

from .aggregate import CellSummary, MetricSummary, summarize
from .chaos import CHAOS_ENV, ChaosError, parse_chaos
from .checkpoint import (
    CheckpointData,
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
    resume_command,
    spec_digest,
)
from .metrics import cell_metrics
from .progress import (
    CELL_DONE,
    CELL_FAILED,
    CELL_RESTORED,
    CELL_RETRY,
    SWEEP_DONE,
    SWEEP_START,
    ProgressCallback,
    ProgressEvent,
)
from .runner import (
    SweepInterrupted,
    SweepResult,
    backoff_schedule_s,
    default_chunk_size,
    default_start_method,
    run_sweep,
    summaries_records,
)
from .shm import (
    SharedArraySpec,
    SharedSubstrate,
    SubstrateManifest,
    attach_substrate,
    export_shared_substrates,
    export_substrate,
    leaked_segments,
)
from .spec import SweepCell, SweepSpec, replicate_seeds

__all__ = [
    "CELL_DONE",
    "CELL_FAILED",
    "CELL_RESTORED",
    "CELL_RETRY",
    "CHAOS_ENV",
    "CellSummary",
    "ChaosError",
    "CheckpointData",
    "CheckpointError",
    "CheckpointWriter",
    "MetricSummary",
    "ProgressCallback",
    "ProgressEvent",
    "SWEEP_DONE",
    "SWEEP_START",
    "SharedArraySpec",
    "SharedSubstrate",
    "SubstrateManifest",
    "SweepCell",
    "SweepInterrupted",
    "SweepResult",
    "SweepSpec",
    "attach_substrate",
    "backoff_schedule_s",
    "cell_metrics",
    "default_chunk_size",
    "default_start_method",
    "export_shared_substrates",
    "export_substrate",
    "leaked_segments",
    "load_checkpoint",
    "parse_chaos",
    "replicate_seeds",
    "resume_command",
    "run_sweep",
    "spec_digest",
    "summaries_records",
    "summarize",
]
