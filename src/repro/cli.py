"""Command-line interface: simulate, analyze, report, policies, sweep.

Installed as the ``anycast-ddos`` console script:

* ``anycast-ddos simulate --out events.npz`` -- run a scenario and
  save the Atlas dataset;
* ``anycast-ddos analyze events.npz --figure fig3`` -- reproduce one
  figure/table from a saved dataset;
* ``anycast-ddos report`` -- simulate and print the full post-mortem;
* ``anycast-ddos policies --attack 6`` -- evaluate the §2.2 model;
* ``anycast-ddos sweep --axis baseline_days=3,7 --replicates 3
  --jobs 4`` -- run a scenario grid in parallel and print per-cell
  summaries (bit-identical for any ``--jobs``);
* ``anycast-ddos gen-topo --ases 50000 --out topo.as-rel2`` --
  generate a deterministic internet-scale AS topology in CAIDA
  as-rel2 format (loadable with
  :func:`repro.netsim.topology.load_as_rel2`).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Sequence

from . import ScenarioConfig, june2016_config, nov2015_config, simulate
from .core import (
    clean_dataset,
    correlation_table,
    flips_figure,
    observed_sites_table,
    reachability_figure,
    rtt_figure,
    site_minmax_table,
    sites_vs_resilience,
)
from .datasets import load_dataset, save_dataset

#: Figures/tables the ``analyze`` command can regenerate from a saved
#: dataset (those needing only Atlas data).
ANALYSES = ("table2", "fig3", "fig4", "fig5", "fig8", "correlation")


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--stubs", type=int, default=400,
                        help="stub ASes in the synthetic Internet")
    parser.add_argument("--vps", type=int, default=800,
                        help="vantage points")
    parser.add_argument(
        "--letters", default=None,
        help="comma-separated subset of letters (default: all 13)",
    )
    parser.add_argument(
        "--preset", choices=("nov2015", "june2016"), default="nov2015",
        help="which event to simulate",
    )


def _config_from_args(args: argparse.Namespace) -> ScenarioConfig:
    letters = None
    if args.letters:
        letters = tuple(part.strip().upper() for part in
                        args.letters.split(","))
    factory = (
        nov2015_config if args.preset == "nov2015" else june2016_config
    )
    return factory(
        seed=args.seed,
        n_stubs=args.stubs,
        n_vps=args.vps,
        letters=letters,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    print(
        f"simulating {args.preset} "
        f"({config.n_stubs} stubs, {config.n_vps} VPs) ...",
        file=sys.stderr,
    )
    result = simulate(config)
    save_dataset(result.atlas, args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _analyze(dataset, which: str) -> str:
    if which == "table2":
        return observed_sites_table(dataset).render()
    if which == "fig3":
        return reachability_figure(dataset).render()
    if which == "fig4":
        return rtt_figure(dataset).render()
    if which == "fig5":
        return "\n\n".join(
            site_minmax_table(dataset, letter).render()
            for letter in ("E", "K")
            if letter in dataset.letters
        )
    if which == "fig8":
        return flips_figure(dataset).render()
    if which == "correlation":
        from .rootdns import LETTERS_SPEC

        fit = sites_vs_resilience(
            dataset,
            {L: s.n_sites for L, s in LETTERS_SPEC.items()},
        )
        return correlation_table(fit).render()
    raise ValueError(f"unknown analysis {which!r}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    if not args.raw:
        dataset, report = clean_dataset(dataset)
        print(
            f"(cleaned: kept {report.n_kept}/{report.n_total} VPs)",
            file=sys.stderr,
        )
    print(_analyze(dataset, args.figure))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    result = simulate(config)
    dataset, _ = clean_dataset(result.atlas)
    for which in ANALYSES:
        try:
            print(_analyze(dataset, which))
        except ValueError as exc:
            # e.g. the correlation fit needs at least three letters.
            print(f"[{which} skipped: {exc}]", file=sys.stderr)
            continue
        print("=" * 72)
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from .core import (
        best_withdrawal,
        classify_case,
        default_assignment,
        figure2_model,
        happiness,
        optimal_assignment,
    )

    model = figure2_model(args.attack, args.attack)
    case = classify_case(args.attack, args.attack)
    absorb = happiness(model, default_assignment(model))
    withdrawn, withdraw = best_withdrawal(model)
    assignment, optimal = optimal_assignment(model)
    print(f"A0 = A1 = {args.attack}: paper case {case}")
    print(f"  absorb:   H = {absorb}/4")
    print(f"  withdraw: H = {withdraw}/4  (withdraw {sorted(withdrawn)})")
    print(f"  re-route: H = {optimal}/4  ({assignment})")
    return 0


def _parse_axis(spec_str: str) -> tuple[str, list[Any]]:
    """Parse one ``--axis field=v1,v2,...`` argument.

    Values go through ``ast.literal_eval`` so numbers, booleans, and
    tuples arrive typed; anything unparsable stays a string.
    """
    name, sep, raw = spec_str.partition("=")
    if not sep or not raw:
        raise argparse.ArgumentTypeError(
            f"expected field=v1,v2,... got {spec_str!r}"
        )
    values: list[Any] = []
    for part in raw.split(","):
        part = part.strip()
        try:
            values.append(ast.literal_eval(part))
        except (ValueError, SyntaxError):
            values.append(part)
    return name.strip(), values


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import (
        SweepInterrupted,
        SweepSpec,
        load_checkpoint,
        resume_command,
        run_sweep,
        summaries_records,
    )

    checkpoint = args.checkpoint
    if args.resume:
        # The checkpoint header carries the full pickled spec, so a
        # resume needs no re-typed --axis/--replicates flags (and
        # cannot accidentally run with different ones).
        data = load_checkpoint(args.resume)
        spec = data.spec
        checkpoint = args.resume
        print(
            f"resuming from {args.resume}: "
            f"{len(data.results)}/{spec.n_cells} cell(s) already done",
            file=sys.stderr,
        )
    else:
        base = _config_from_args(args)
        axes = dict(_parse_axis(spec_str) for spec_str in args.axis or [])
        spec = SweepSpec.grid(
            base,
            axes,
            replicates=args.replicates if args.replicates > 1 else None,
        )
    print(
        f"sweep: {spec.n_points} point(s) x {spec.n_seeds} seed(s) = "
        f"{spec.n_cells} cell(s), jobs={args.jobs}",
        file=sys.stderr,
    )

    def _progress(event: Any) -> None:
        print(str(event), file=sys.stderr)

    try:
        result = run_sweep(
            spec,
            jobs=args.jobs,
            progress=None if args.quiet else _progress,
            checkpoint=checkpoint,
            max_retries=args.max_retries,
            cell_timeout_s=args.cell_timeout,
        )
    except SweepInterrupted as exc:
        print(f"\n{exc}", file=sys.stderr)
        if exc.checkpoint_path is not None:
            print(
                f"resume with: {resume_command(exc.checkpoint_path, jobs=args.jobs)}",
                file=sys.stderr,
            )
        return 130
    payload: dict[str, Any] = {
        "n_points": spec.n_points,
        "n_seeds": spec.n_seeds,
        "n_cells": spec.n_cells,
        "jobs": args.jobs,
        "summaries": summaries_records(result.summaries),
        "failed_cells": {
            str(index): reason
            for index, reason in sorted(result.failures.items())
        },
        # Telemetry: wall-clock, retry, and routing-layer counters.
        # Varies with worker count and caching; everything above it is
        # bit-identical for any --jobs value.
        "telemetry": {
            "elapsed_s": result.elapsed_s,
            "attempts": {
                str(i): n for i, n in sorted(result.attempts.items())
            },
            "restored_cells": list(result.restored),
            "routing": dict(sorted(result.routing_stats.items())),
        },
    }
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(rendered)
    if args.verbose:
        for name, value in sorted(result.routing_stats.items()):
            print(f"routing {name}: {value}", file=sys.stderr)
        for index, reason in sorted(result.failures.items()):
            print(f"! cell {index}: {reason}", file=sys.stderr)
    if result.failures:
        print(
            f"warning: {len(result.failures)} cell(s) quarantined; "
            "summaries are partial (see failed_cells)",
            file=sys.stderr,
        )
    return 0


def _cmd_gen_topo(args: argparse.Namespace) -> int:
    from .netsim.topology import (
        AsRelTopologyConfig,
        build_internet_graph,
        dump_as_rel2,
    )

    config = AsRelTopologyConfig(
        n_ases=args.ases,
        clique_size=args.clique,
        multihome_fraction=args.multihome,
        peer_degree=args.peer_degree,
        seed=args.seed,
    )
    graph = build_internet_graph(config)
    dump_as_rel2(graph, args.out)
    n_transit = sum(len(graph.customers(asn)) for asn in graph.asns)
    n_peer = sum(len(graph.peers(asn)) for asn in graph.asns) // 2
    print(
        f"wrote {args.out}: {len(graph)} ASes, "
        f"{n_transit} transit links, {n_peer} peer links "
        f"(seed={args.seed})",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="anycast-ddos",
        description=(
            "Reproduction toolkit for 'Anycast vs. DDoS' (IMC 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a scenario, save dataset")
    _add_scenario_args(sim)
    sim.add_argument("--out", default="events.npz",
                     help="output .npz path")
    sim.set_defaults(func=_cmd_simulate)

    ana = sub.add_parser("analyze", help="analyze a saved dataset")
    ana.add_argument("dataset", help="path to a saved .npz dataset")
    ana.add_argument("--figure", choices=ANALYSES, default="fig3")
    ana.add_argument("--raw", action="store_true",
                     help="skip the cleaning pipeline")
    ana.set_defaults(func=_cmd_analyze)

    rep = sub.add_parser("report", help="simulate and print a report")
    _add_scenario_args(rep)
    rep.set_defaults(func=_cmd_report)

    pol = sub.add_parser("policies", help="evaluate the §2.2 model")
    pol.add_argument("--attack", type=float, default=6.0,
                     help="attack volume A0 = A1 (site capacity = 1)")
    pol.set_defaults(func=_cmd_policies)

    swp = sub.add_parser(
        "sweep",
        help="run a scenario grid (parallel, deterministic)",
    )
    _add_scenario_args(swp)
    swp.add_argument(
        "--axis", action="append", metavar="FIELD=V1,V2,...",
        help="one grid axis over a ScenarioConfig field (repeatable)",
    )
    swp.add_argument("--replicates", type=int, default=1,
                     help="replicate seeds per grid point")
    swp.add_argument("--jobs", type=int, default=1,
                     help="worker processes (output identical for any N)")
    swp.add_argument("--out", default=None,
                     help="write summary JSON here instead of stdout")
    swp.add_argument("--quiet", action="store_true",
                     help="suppress per-cell progress lines")
    swp.add_argument("--verbose", action="store_true",
                     help="print routing counters and failed cells")
    swp.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="append completed cells to this crash-safe log as they "
             "finish (resume later with --resume PATH)",
    )
    swp.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume an interrupted sweep from its checkpoint; the "
             "spec is read from the checkpoint header, so --axis/"
             "--replicates are ignored",
    )
    swp.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per cell after a crash/timeout before the cell "
             "is quarantined (default 2)",
    )
    swp.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell; a hung worker is killed and "
             "the cell retried (default: no timeout)",
    )
    swp.set_defaults(func=_cmd_sweep)

    topo = sub.add_parser(
        "gen-topo",
        help="generate an as-rel2 synthetic internet topology",
    )
    topo.add_argument("--ases", type=int, default=50_000,
                      help="total ASes in the graph")
    topo.add_argument("--clique", type=int, default=12,
                      help="transit-free core clique size")
    topo.add_argument("--multihome", type=float, default=0.35,
                      help="fraction of ASes with two providers")
    topo.add_argument("--peer-degree", type=float, default=0.6,
                      help="extra peer links per AS beyond the clique")
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument("--out", default="topology.as-rel2",
                      help="output path (CAIDA as-rel2 serial-2)")
    topo.set_defaults(func=_cmd_gen_topo)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``anycast-ddos`` script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
