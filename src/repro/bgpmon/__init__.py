"""BGPmon-style route collector simulation."""

from .collector import (
    UPDATES_PER_CHANGE,
    BgpCollectors,
    BgpmonConfig,
    build_collectors,
)

__all__ = [
    "BgpCollectors",
    "BgpmonConfig",
    "UPDATES_PER_CHANGE",
    "build_collectors",
]
