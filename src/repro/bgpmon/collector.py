"""BGPmon-style route collectors (paper section 2.4.3).

BGPmon peers with dozens of routers holding full tables; the paper
uses 152 peers to count route changes around the events (Fig. 9).
Our collectors are a sample of ASes (biased towards North America, as
the paper notes its BGP vantage points were) that observe an update
whenever their best route for a letter's prefix changes.  Each
best-path change at a peer surfaces as a small burst of updates
(path exploration), modelled as a Poisson count per change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netsim.anycast import AnycastPrefix
from ..netsim.topology import Topology
from ..util.timegrid import Interval, TimeGrid

#: Mean BGP updates a collector peer logs per best-path change
#: (path exploration / MRAI batching).
UPDATES_PER_CHANGE = 2.5


@dataclass(frozen=True, slots=True)
class BgpmonConfig:
    """Knobs for the collector fleet."""

    n_peers: int = 152
    na_bias: float = 0.6

    def __post_init__(self) -> None:
        if self.n_peers <= 0:
            raise ValueError("need at least one collector peer")
        if not 0.0 <= self.na_bias <= 1.0:
            raise ValueError("na_bias must be within [0, 1]")


class BgpCollectors:
    """A fixed set of collector peers."""

    def __init__(self, peer_asns: np.ndarray) -> None:
        peer_asns = np.asarray(peer_asns, dtype=np.int64)
        if peer_asns.size == 0:
            raise ValueError("collector fleet cannot be empty")
        self.peer_asns = peer_asns
        self._peer_set = frozenset(int(a) for a in peer_asns)

    def __len__(self) -> int:
        return int(self.peer_asns.size)

    def route_changes_per_bin(
        self,
        prefix: AnycastPrefix,
        grid: TimeGrid,
        rng: np.random.Generator,
        peer_outages: tuple[tuple[Interval, frozenset[int]], ...] = (),
    ) -> np.ndarray:
        """Updates observed per bin for one letter's prefix (Fig. 9).

        Routing transitions outside the grid (e.g. pre-simulation
        standby withdrawals) are ignored.  *peer_outages* lists
        ``(interval, down_peer_asns)`` windows (collector-peer churn,
        ``repro.faults``): a peer that is down when a transition
        happens does not observe it, so the counted churn is partial
        exactly as a real collector fleet's would be.
        """
        counts = np.zeros(grid.n_bins, dtype=np.float64)
        for record in prefix.change_log():
            if not grid.start <= record.timestamp < grid.end:
                continue
            peers = self._peer_set
            for interval, down in peer_outages:
                if interval.contains(record.timestamp):
                    peers = peers - down
            affected = len(peers & record.changed_asns)
            if affected == 0:
                continue
            updates = rng.poisson(UPDATES_PER_CHANGE, size=affected).sum()
            counts[grid.bin_index(record.timestamp)] += float(updates)
        return counts


def build_collectors(
    topology: Topology, config: BgpmonConfig, rng: np.random.Generator
) -> BgpCollectors:
    """Sample the collector fleet from the topology's ASes.

    Peers are stub and transit ASes, biased towards North America.
    """
    candidates = list(topology.stub_asns) + list(topology.transit_asns)
    regions = []
    for asn in candidates:
        name = topology.graph.node(asn).name
        regions.append("NA" if "-NA" in name or "transit" in name else "X")
    regions = np.array(regions)
    candidates = np.array(candidates, dtype=np.int64)

    weights = np.where(regions == "NA", config.na_bias, 1.0 - config.na_bias)
    weights = weights / weights.sum()
    size = min(config.n_peers, candidates.size)
    chosen = rng.choice(candidates, size=size, replace=False, p=weights)
    return BgpCollectors(chosen)
