"""Dataset persistence: compressed NumPy bundles and NDJSON records.

Two formats are supported:

* :func:`save_dataset` / :func:`load_dataset` -- the full binned
  :class:`~repro.datasets.observations.AtlasDataset` as one ``.npz``
  bundle (compact, lossless, fast);
* :func:`write_probe_records` / :func:`read_probe_records` -- raw
  probe-level records as NDJSON, the shape in which real RIPE Atlas
  results arrive and in which the binning pipeline consumes them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..util.timegrid import TimeGrid
from .observations import AtlasDataset, LetterObservations, VantagePointTable

_FORMAT_VERSION = 1


def save_dataset(dataset: AtlasDataset, path: str | Path) -> None:
    """Write *dataset* as a compressed ``.npz`` bundle."""
    arrays: dict[str, np.ndarray] = {
        "format_version": np.array([_FORMAT_VERSION]),
        "grid": np.array(
            [dataset.grid.start, dataset.grid.bin_seconds,
             dataset.grid.n_bins]
        ),
        "vp_ids": dataset.vps.ids,
        "vp_asns": dataset.vps.asns,
        "vp_lats": dataset.vps.lats,
        "vp_lons": dataset.vps.lons,
        "vp_regions": dataset.vps.regions,
        "vp_firmware": dataset.vps.firmware,
        "vp_hijacked": dataset.vps.hijacked,
        "letters": np.array(sorted(dataset.letters)),
    }
    for letter in sorted(dataset.letters):
        obs = dataset.letters[letter]
        arrays[f"{letter}_sites"] = np.array(obs.site_codes)
        arrays[f"{letter}_site_idx"] = obs.site_idx
        arrays[f"{letter}_rtt"] = obs.rtt_ms
        arrays[f"{letter}_server"] = obs.server
    np.savez_compressed(Path(path), **arrays)


def load_dataset(path: str | Path) -> AtlasDataset:
    """Read a dataset written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported dataset format {version}")
        start, bin_seconds, n_bins = (int(x) for x in data["grid"])
        grid = TimeGrid(start=start, bin_seconds=bin_seconds, n_bins=n_bins)
        vps = VantagePointTable(
            ids=data["vp_ids"],
            asns=data["vp_asns"],
            lats=data["vp_lats"],
            lons=data["vp_lons"],
            regions=data["vp_regions"],
            firmware=data["vp_firmware"],
            hijacked=data["vp_hijacked"],
        )
        letters = {}
        for letter in data["letters"]:
            letter = str(letter)
            letters[letter] = LetterObservations(
                letter=letter,
                site_codes=[str(s) for s in data[f"{letter}_sites"]],
                site_idx=data[f"{letter}_site_idx"],
                rtt_ms=data[f"{letter}_rtt"],
                server=data[f"{letter}_server"],
            )
    return AtlasDataset(grid=grid, vps=vps, letters=letters)


@dataclass(frozen=True, slots=True)
class ProbeRecord:
    """One raw measurement result (the RIPE Atlas result shape)."""

    vp_id: int
    letter: str
    timestamp: float
    #: CHAOS TXT reply string, or ``None`` on timeout.
    answer: str | None
    rtt_ms: float | None
    rcode: int | None
    firmware: int

    def __post_init__(self) -> None:
        if self.answer is not None and self.rtt_ms is None:
            raise ValueError("a reply must carry an RTT")


def write_probe_records(
    records: Iterable[ProbeRecord], path: str | Path
) -> int:
    """Write records as NDJSON; returns the number written."""
    count = 0
    with open(Path(path), "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(asdict(record), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


class CorruptRecordError(ValueError):
    """One NDJSON line could not be parsed into a :class:`ProbeRecord`.

    Carries the file and 1-based line number so a truncated download
    or a disk-mangled archive can be located exactly.  Subclasses
    :class:`ValueError` for callers that catch broadly.
    """

    def __init__(self, path: str | Path, line_no: int, reason: str) -> None:
        self.path = str(path)
        self.line_no = line_no
        self.reason = reason
        super().__init__(f"{path}:{line_no}: {reason}")


def read_probe_records(
    path: str | Path,
    skip_corrupt: bool = False,
    skipped: list[int] | None = None,
) -> Iterator[ProbeRecord]:
    """Stream records from an NDJSON file.

    Corrupt lines -- invalid JSON, unknown fields, or field values a
    :class:`ProbeRecord` rejects -- raise :class:`CorruptRecordError`
    naming the file and line.  With ``skip_corrupt=True`` they are
    skipped instead (real Atlas dumps routinely have a few); pass a
    list as *skipped* to collect the 1-based line numbers that were
    dropped, e.g. to flag the dataset as partial.
    """
    with open(Path(path), encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                if not isinstance(raw, dict):
                    raise ValueError(
                        f"expected a JSON object, got "
                        f"{type(raw).__name__}"
                    )
                record = ProbeRecord(**raw)
            except (ValueError, TypeError) as exc:
                if skip_corrupt:
                    if skipped is not None:
                        skipped.append(line_no)
                    continue
                reason = (
                    f"invalid JSON: {exc}"
                    if isinstance(exc, json.JSONDecodeError)
                    else f"invalid record: {exc}"
                )
                raise CorruptRecordError(path, line_no, reason) from exc
            yield record
