"""Dataset containers and persistence."""

from .io import (
    CorruptRecordError,
    ProbeRecord,
    load_dataset,
    read_probe_records,
    save_dataset,
    write_probe_records,
)
from .observations import (
    MIN_FIRMWARE,
    RESP_BOGUS,
    RESP_ERROR,
    RESP_NOT_PROBED,
    RESP_TIMEOUT,
    AtlasDataset,
    LetterObservations,
    VantagePointTable,
)

__all__ = [
    "AtlasDataset",
    "CorruptRecordError",
    "LetterObservations",
    "MIN_FIRMWARE",
    "ProbeRecord",
    "RESP_BOGUS",
    "RESP_ERROR",
    "RESP_NOT_PROBED",
    "RESP_TIMEOUT",
    "VantagePointTable",
    "load_dataset",
    "read_probe_records",
    "save_dataset",
    "write_probe_records",
]
