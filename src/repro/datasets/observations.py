"""Observation dataset schema for the Atlas-style measurements.

The analysis pipeline consumes per-letter matrices of shape
``(n_bins, n_vps)``:

* ``site_idx`` -- which site answered (index into ``site_codes``), or a
  negative sentinel: timeout, response error (RCODE != 0), a reply that
  failed to parse (hijack suspects), or "not probed this bin" (A-Root's
  30-minute cadence);
* ``rtt_ms`` -- round-trip time of the reply (NaN when there was none);
* ``server`` -- 1-based server number from the CHAOS identity (0 when
  unknown).

The vantage-point table carries the metadata the cleaning stage needs
(firmware version) plus ground truth used only by validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.timegrid import TimeGrid

#: Sentinels for ``site_idx``.
RESP_TIMEOUT = -1
RESP_ERROR = -2
RESP_BOGUS = -3
RESP_NOT_PROBED = -4

#: Firmware threshold the paper cleans on (section 2.4.1).
MIN_FIRMWARE = 4570


@dataclass(frozen=True, slots=True)
class VantagePointTable:
    """Column-oriented VP metadata."""

    ids: np.ndarray        # int64, unique
    asns: np.ndarray       # int64, stub AS of each VP
    lats: np.ndarray       # float64
    lons: np.ndarray       # float64
    regions: np.ndarray    # unicode region tags
    firmware: np.ndarray   # int32
    hijacked: np.ndarray   # bool -- ground truth, for validation only

    def __post_init__(self) -> None:
        n = self.ids.size
        for name in ("asns", "lats", "lons", "regions", "firmware",
                     "hijacked"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"column {name} misaligned")
        if np.unique(self.ids).size != n:
            raise ValueError("duplicate VP ids")

    def __len__(self) -> int:
        return int(self.ids.size)

    def europe_fraction(self) -> float:
        """Fraction of VPs in Europe (the paper's known Atlas bias)."""
        if len(self) == 0:
            return 0.0
        return float((self.regions == "EU").mean())


@dataclass(slots=True)
class LetterObservations:
    """Binned observations of one letter from all VPs."""

    letter: str
    site_codes: list[str]
    site_idx: np.ndarray   # int16 (n_bins, n_vps)
    rtt_ms: np.ndarray     # float32 (n_bins, n_vps)
    server: np.ndarray     # int16 (n_bins, n_vps)

    def __post_init__(self) -> None:
        if self.site_idx.shape != self.rtt_ms.shape or (
            self.site_idx.shape != self.server.shape
        ):
            raise ValueError("observation matrices misaligned")
        if self.site_idx.ndim != 2:
            raise ValueError("observation matrices must be 2-D")

    @property
    def n_bins(self) -> int:
        return self.site_idx.shape[0]

    @property
    def n_vps(self) -> int:
        return self.site_idx.shape[1]

    def site_code(self, index: int) -> str:
        """Code of site *index*, raising for sentinel values."""
        if index < 0:
            raise ValueError(f"sentinel response {index} has no site")
        return self.site_codes[index]

    def success_mask(self) -> np.ndarray:
        """Boolean matrix: a site answered with RCODE 0."""
        return self.site_idx >= 0

    def probed_mask(self) -> np.ndarray:
        """Boolean matrix: the VP actually probed this bin."""
        return self.site_idx != RESP_NOT_PROBED

    def select_vps(self, keep: np.ndarray) -> "LetterObservations":
        """A view restricted to the VPs selected by boolean mask *keep*."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.n_vps,):
            raise ValueError("mask must match VP count")
        return LetterObservations(
            letter=self.letter,
            site_codes=self.site_codes,
            site_idx=self.site_idx[:, keep],
            rtt_ms=self.rtt_ms[:, keep],
            server=self.server[:, keep],
        )


@dataclass(slots=True)
class AtlasDataset:
    """The full two-day measurement dataset."""

    grid: TimeGrid
    vps: VantagePointTable
    letters: dict[str, LetterObservations] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for letter, obs in self.letters.items():
            if obs.n_bins != self.grid.n_bins:
                raise ValueError(f"{letter}: bin count mismatch")
            if obs.n_vps != len(self.vps):
                raise ValueError(f"{letter}: VP count mismatch")

    def letter(self, letter: str) -> LetterObservations:
        try:
            return self.letters[letter]
        except KeyError:
            raise KeyError(f"no observations for letter {letter!r}") from None

    def select_vps(self, keep: np.ndarray) -> "AtlasDataset":
        """Dataset restricted to the VPs selected by *keep*."""
        keep = np.asarray(keep, dtype=bool)
        vps = VantagePointTable(
            ids=self.vps.ids[keep],
            asns=self.vps.asns[keep],
            lats=self.vps.lats[keep],
            lons=self.vps.lons[keep],
            regions=self.vps.regions[keep],
            firmware=self.vps.firmware[keep],
            hijacked=self.vps.hijacked[keep],
        )
        return AtlasDataset(
            grid=self.grid,
            vps=vps,
            letters={
                letter: obs.select_vps(keep)
                for letter, obs in self.letters.items()
            },
        )
