"""Runtime deployment of a root letter onto the network substrate.

A :class:`LetterDeployment` binds a :class:`~repro.rootdns.letters.LetterSpec`
to the AS topology: each site gets a host AS, the letter gets an
anycast prefix with one origin per site, and site states track the
policy machinery (withdrawals, partial withdrawals, recovery budgets).

The per-bin control loop lives in :meth:`LetterDeployment.apply_policies`:
given each site's utilisation it executes the section-2.2 policy
space -- absorb, withdraw, partial withdraw -- plus standby activation
(H-Root's primary/backup pair) and post-event recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netsim.anycast import AnycastPrefix
from ..netsim.bgp import Origin, RoutingTable, Scope
from ..netsim.topology import Topology
from .facility import FacilityRegistry
from .letters import LETTERS_SPEC, LetterSpec
from .servers import rotate_shed_server
from .sites import DEFAULT_RECOVERY_BINS, SitePolicy, SiteSpec, SiteState

@dataclass(frozen=True, slots=True)
class PolicyEvent:
    """One policy action taken by a site (for reporting and tests)."""

    timestamp: float
    site: str
    action: str  # "withdraw" | "announce" | "partial" | "restore"


class LetterDeployment:
    """One letter's sites wired into the topology, with policy state."""

    def __init__(
        self,
        spec: LetterSpec,
        topology: Topology,
        facilities: FacilityRegistry | None = None,
    ) -> None:
        self.spec = spec
        self.topology = topology
        self.site_order = [s.code for s in spec.sites]
        self.site_index = {c: i for i, c in enumerate(self.site_order)}
        #: Facility labels in site order, precomputed for the engine's
        #: per-bin spillover bookkeeping.
        self.site_labels = [s.label(spec.letter) for s in spec.sites]
        self.states = {s.code: SiteState.initial(s) for s in spec.sites}
        self.host_asns: dict[str, int] = {}
        self.policy_log: list[PolicyEvent] = []
        self._capacity_vector = np.array(
            [s.capacity_qps for s in spec.sites], dtype=np.float64
        )
        # Per-site thresholds for the quiet-bin fast path: only sites
        # whose policy can actually react to overload participate.
        self._fastpath_thresholds = np.array(
            [
                s.withdraw_threshold
                if s.initially_announced
                and s.policy in (
                    SitePolicy.WITHDRAW, SitePolicy.PARTIAL_WITHDRAW
                )
                else np.inf
                for s in spec.sites
            ],
            dtype=np.float64,
        )
        self._quiet_cache: tuple[int, bool] | None = None
        self._announced_cache: tuple[int, np.ndarray] | None = None

        origins = []
        for site in spec.sites:
            label = site.label(spec.letter)
            partial = site.policy is SitePolicy.PARTIAL_WITHDRAW
            ixp = site.scope is Scope.LOCAL or partial
            # Partial-withdraw sites are the big IXP-present ones; their
            # direct peering is what stays "stuck" during withdrawal.
            asn = topology.add_site_host(
                label,
                site.location,
                site.scope,
                ixp_peering=ixp,
                ixp_radius_km=300.0 if partial else None,
                ixp_max_peers=15 if partial else None,
                n_transits=(
                    site.n_transit_providers
                    if site.scope is Scope.GLOBAL
                    else 1
                ),
            )
            self.host_asns[site.code] = asn
            origins.append(
                Origin(
                    site=site.code,
                    asn=asn,
                    scope=site.scope,
                    location=site.location,
                    preference_discount=site.route_preference_discount,
                )
            )
            if facilities is not None and site.facility is not None:
                facilities.register(
                    site.facility,
                    label,
                    site.capacity_qps,
                    site.facility_coupling,
                )
        self.prefix = AnycastPrefix(topology.graph, origins)
        for site in spec.sites:
            if not site.initially_announced:
                self.prefix.withdraw(site.code, timestamp=float("-inf"))

    def reset(self) -> None:
        """Restore the post-construction state for a fresh run.

        Rebuilds the site policy states, clears the policy log and the
        memo caches, and resets the prefix -- including replaying the
        initial withdrawal of standby sites exactly as ``__init__``
        does, so the change log starts with the same records.  The
        routing-table cache inside the prefix survives, which is the
        point: a reused deployment skips every BGP propagation it has
        already done.
        """
        self.states = {s.code: SiteState.initial(s) for s in self.spec.sites}
        self.policy_log = []
        self._quiet_cache = None
        self._announced_cache = None
        self.prefix.reset()
        for site in self.spec.sites:
            if not site.initially_announced:
                self.prefix.withdraw(site.code, timestamp=float("-inf"))

    @property
    def letter(self) -> str:
        return self.spec.letter

    def site_spec(self, code: str) -> SiteSpec:
        return self.spec.site(code)

    def state(self, code: str) -> SiteState:
        try:
            return self.states[code]
        except KeyError:
            raise KeyError(
                f"{self.letter}-Root has no site {code!r}"
            ) from None

    def routing(self) -> RoutingTable:
        """Current best-route table for this letter's prefix."""
        return self.prefix.routing()

    def capacity_by_site(self) -> np.ndarray:
        """Site capacities in site order (a fresh copy)."""
        return self._capacity_vector.copy()

    @property
    def capacity_vector(self) -> np.ndarray:
        """Cached site capacities in site order; treat as read-only."""
        return self._capacity_vector

    def buffer_caps(self, default_ms: float) -> np.ndarray:
        """Per-site queueing-delay ceilings in site order."""
        return np.array(
            [
                s.buffer_ms if s.buffer_ms is not None else default_ms
                for s in self.spec.sites
            ],
            dtype=np.float64,
        )

    def announced_mask(self) -> np.ndarray:
        """Boolean mask over site order: currently announced?

        Memoized per routing-table version (announcement state and
        routing version change together); treat as read-only.
        """
        version = self.prefix.routing().version
        cached = self._announced_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        mask = np.array(
            [self.prefix.is_announced(c) for c in self.site_order]
        )
        self._announced_cache = (version, mask)
        return mask

    def _is_quiet(self) -> bool:
        """Whether every site is in its normal announcement state.

        Quiet means: every primary announced and fully exported, every
        standby down.  In that state ``apply_policies`` with sub-
        threshold utilisations is a no-op, so the engine's per-bin call
        can return immediately.  Memoized per routing-table version.
        """
        version = self.prefix.routing().version
        cached = self._quiet_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        quiet = True
        for code in self.site_order:
            state = self.states[code]
            up = self.prefix.is_announced(code)
            if state.spec.initially_announced:
                if not up or state.partial:
                    quiet = False
                    break
            elif up:
                quiet = False
                break
        self._quiet_cache = (version, quiet)
        return quiet

    def _blocked_set_for_partial(self, code: str) -> frozenset[int]:
        """Neighbors a partially withdrawing site stops exporting to.

        Transit providers are cut; direct IXP peers are kept, which is
        what pins part of the catchment to the degraded site.
        """
        asn = self.host_asns[code]
        return frozenset(self.topology.graph.providers(asn))

    def apply_policies(
        self,
        utilisation_by_site: dict[str, float] | np.ndarray,
        letter_under_attack: bool,
        timestamp: float,
    ) -> bool:
        """Run one control-loop step; returns whether routing changed.

        *utilisation_by_site* is each announced site's offered/capacity
        for the last bin -- either a ``{code: rho}`` dict or an array
        in site order (the engine's fast path).  Withdrawn sites see no
        traffic; their recovery is driven by the letter-wide attack
        signal (operators re-enable sites once the event subsides).
        """
        if isinstance(utilisation_by_site, np.ndarray):
            rho_vector = utilisation_by_site
            # Quiet-bin fast path: every site in its normal state and
            # nobody over a reaction threshold -> the loop below would
            # be a no-op, so skip it (the common case outside events).
            if self._is_quiet() and not (
                rho_vector > self._fastpath_thresholds
            ).any():
                return False
            utilisation_by_site = {
                code: float(rho_vector[i])
                for i, code in enumerate(self.site_order)
            }
        changed = False
        any_withdrawn_primary = False

        for code in self.site_order:
            state = self.states[code]
            spec = state.spec
            if not spec.initially_announced:
                continue  # standby sites handled below
            announced = self.prefix.is_announced(code)
            rho = utilisation_by_site.get(code, 0.0)

            if announced and rho > spec.withdraw_threshold:
                if spec.policy is SitePolicy.WITHDRAW:
                    if self.prefix.withdraw(code, timestamp):
                        state.withdrawals += 1
                        state.calm_bins = 0
                        changed = True
                        self._log(timestamp, code, "withdraw")
                elif (
                    spec.policy is SitePolicy.PARTIAL_WITHDRAW
                    and not state.partial
                ):
                    blocked = self._blocked_set_for_partial(code)
                    if self.prefix.set_blocked(code, blocked, timestamp):
                        state.partial = True
                        state.calm_bins = 0
                        changed = True
                        self._log(timestamp, code, "partial")
            elif not announced:
                if letter_under_attack:
                    state.calm_bins = 0
                else:
                    state.calm_bins += 1
                    if (
                        state.calm_bins >= DEFAULT_RECOVERY_BINS
                        and state.may_reannounce()
                        and self.prefix.announce(code, timestamp)
                    ):
                        state.calm_bins = 0
                        changed = True
                        self._log(timestamp, code, "announce")
            elif state.partial:
                if letter_under_attack:
                    state.calm_bins = 0
                else:
                    state.calm_bins += 1
                    if state.calm_bins >= DEFAULT_RECOVERY_BINS:
                        if self.prefix.set_blocked(
                            code, frozenset(), timestamp
                        ):
                            changed = True
                        state.partial = False
                        state.calm_bins = 0
                        # A new event sheds to a different server.
                        state.shed_server = rotate_shed_server(
                            state.shed_server, spec.n_servers
                        )
                        self._log(timestamp, code, "restore")

            if (
                spec.initially_announced
                and not self.prefix.is_announced(code)
            ):
                any_withdrawn_primary = True

        # Standby activation: H-Root's backup announces while the
        # primary is down and withdraws once it returns.
        for code in self.site_order:
            state = self.states[code]
            if state.spec.initially_announced:
                continue
            is_up = self.prefix.is_announced(code)
            if any_withdrawn_primary and not is_up:
                if self.prefix.announce(code, timestamp):
                    changed = True
                    self._log(timestamp, code, "announce")
            elif not any_withdrawn_primary and is_up:
                if self.prefix.withdraw(code, timestamp):
                    changed = True
                    self._log(timestamp, code, "withdraw")
        return changed

    def _log(self, timestamp: float, site: str, action: str) -> None:
        self.policy_log.append(
            PolicyEvent(timestamp=timestamp, site=site, action=action)
        )


def build_deployments(
    topology: Topology,
    facilities: FacilityRegistry | None = None,
    letters: dict[str, LetterSpec] | None = None,
) -> dict[str, LetterDeployment]:
    """Deploy every letter onto *topology*, in letter order."""
    specs = letters if letters is not None else LETTERS_SPEC
    return {
        letter: LetterDeployment(spec, topology, facilities)
        for letter, spec in sorted(specs.items())
    }
