"""Wire-level root name server: answers actual DNS messages.

The simulation engine works at rate granularity for scale, but the
underlying protocol behaviour is implemented for real here: a
:class:`RootNameServer` parses query packets and produces response
packets --

* CHAOS TXT ``hostname.bind``/``id.server`` queries get the letter's
  identity string (what RIPE Atlas parses, section 2.1);
* IN queries get a referral to the proper TLD's name servers from a
  synthetic root zone, or NXDOMAIN (with the root SOA) for unknown
  TLDs -- the event queries for ``www.336901.com`` draw .com
  referrals, which is what made the ~490-byte response sizes of
  Table 3;
* response-rate limiting accounts every response and drops or
  truncates ("slip") the excess, as the operators did (section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dns.chaos import make_chaos_reply
from ..dns.message import (
    Header,
    Message,
    ResourceRecord,
    make_response,
)
from ..dns.name import encode_name, normalize_name, split_labels
from ..dns.rcode import (
    CHAOS_HOSTNAME_BIND,
    CHAOS_ID_SERVER,
    Opcode,
    QClass,
    QType,
    Rcode,
)
from ..dns.rrl import ResponseRateLimiter, RrlAction

#: TTL of delegation records in the synthetic root zone (2 days, as
#: .com carried in 2015).
DELEGATION_TTL = 172_800

#: Number of NS records per delegation (gTLD style).
NS_PER_DELEGATION = 4


@dataclass(frozen=True, slots=True)
class RootZone:
    """A synthetic root zone: the set of delegated TLDs."""

    tlds: frozenset[str] = field(
        default_factory=lambda: frozenset(
            {"com", "net", "org", "nl", "jp", "de", "uk", "fr", "arpa"}
        )
    )

    def __post_init__(self) -> None:
        for tld in self.tlds:
            if not tld or "." in tld:
                raise ValueError(f"bad TLD {tld!r}")

    def delegation_for(self, qname: str) -> str | None:
        """The delegated TLD owning *qname*, or ``None``."""
        labels = split_labels(normalize_name(qname))
        if not labels:
            return None
        tld = labels[-1].decode("ascii")
        return tld if tld in self.tlds else None

    def referral_records(self, tld: str) -> tuple[ResourceRecord, ...]:
        """Authority-section NS records delegating *tld*."""
        if tld not in self.tlds:
            raise KeyError(f"{tld!r} not delegated")
        return tuple(
            ResourceRecord(
                name=f"{tld}.",
                rtype=QType.NS,
                rclass=QClass.IN,
                ttl=DELEGATION_TTL,
                rdata=encode_name(f"{chr(ord('a') + i)}.nic.{tld}."),
            )
            for i in range(NS_PER_DELEGATION)
        )

    def soa_record(self) -> ResourceRecord:
        """The root SOA, returned with negative answers."""
        rdata = (
            encode_name("a.root-servers.net.")
            + encode_name("nstld.example.")
            + (2015113000).to_bytes(4, "big")
            + (1800).to_bytes(4, "big")
            + (900).to_bytes(4, "big")
            + (604800).to_bytes(4, "big")
            + (86400).to_bytes(4, "big")
        )
        return ResourceRecord(
            name=".",
            rtype=QType.SOA,
            rclass=QClass.IN,
            ttl=86400,
            rdata=rdata,
        )


class RootNameServer:
    """One server instance at one site of one letter."""

    def __init__(
        self,
        letter: str,
        site: str,
        server_no: int,
        zone: RootZone | None = None,
        rrl: ResponseRateLimiter | None = None,
    ) -> None:
        self.letter = letter
        self.site = site
        self.server_no = server_no
        self.zone = zone if zone is not None else RootZone()
        self.rrl = rrl
        self.queries_handled = 0
        self.responses_sent = 0
        self.responses_dropped = 0

    def handle_wire(
        self, wire: bytes, source: str, now: float = 0.0
    ) -> bytes | None:
        """Handle one query packet; returns the response packet.

        ``None`` means no response (malformed query, or dropped by
        response-rate limiting).
        """
        try:
            query = Message.decode(wire)
        except Exception:
            return None
        response = self.handle(query, source, now)
        return response.encode() if response is not None else None

    def handle(
        self, query: Message, source: str, now: float = 0.0
    ) -> Message | None:
        """Handle one parsed query message."""
        if query.header.qr or query.header.opcode is not Opcode.QUERY:
            return None
        if not query.questions:
            return make_response(query, rcode=Rcode.FORMERR)
        self.queries_handled += 1
        question = query.questions[0]
        qname = normalize_name(question.qname)

        if question.qclass is QClass.CH:
            if qname in (CHAOS_HOSTNAME_BIND, CHAOS_ID_SERVER):
                response = make_chaos_reply(
                    query, self.letter, self.site, self.server_no
                )
            else:
                response = make_response(query, rcode=Rcode.REFUSED)
        elif question.qclass is QClass.IN:
            tld = self.zone.delegation_for(qname)
            if qname == ".":
                # Apex query: answer with the root SOA in authority.
                response = Message(
                    header=self._response_header(query, Rcode.NOERROR,
                                                 ns=1),
                    questions=query.questions,
                    authorities=(self.zone.soa_record(),),
                )
            elif tld is not None:
                records = self.zone.referral_records(tld)
                response = Message(
                    header=self._response_header(
                        query, Rcode.NOERROR, ns=len(records)
                    ),
                    questions=query.questions,
                    authorities=records,
                )
            else:
                response = Message(
                    header=self._response_header(query, Rcode.NXDOMAIN,
                                                 ns=1),
                    questions=query.questions,
                    authorities=(self.zone.soa_record(),),
                )
        else:
            response = make_response(query, rcode=Rcode.NOTIMP)

        if self.rrl is not None:
            action = self.rrl.account(source, qname, now)
            if action is RrlAction.DROP:
                self.responses_dropped += 1
                return None
            if action is RrlAction.SLIP:
                # Truncated response: header only, TC set.
                self.responses_sent += 1
                return Message(
                    header=Header(
                        msg_id=query.header.msg_id,
                        qr=True,
                        tc=True,
                        rcode=Rcode.NOERROR,
                        qdcount=len(query.questions),
                    ),
                    questions=query.questions,
                )
        self.responses_sent += 1
        return response

    @staticmethod
    def _response_header(
        query: Message, rcode: Rcode, ns: int = 0
    ) -> Header:
        return Header(
            msg_id=query.header.msg_id,
            qr=True,
            aa=rcode is Rcode.NXDOMAIN,
            rd=query.header.rd,
            rcode=rcode,
            qdcount=len(query.questions),
            nscount=ns,
        )
