"""Per-server behaviour behind a site load balancer (paper section 3.5).

Large sites run several servers behind a load balancer (Fig. 1).  The
paper observes that *which* servers answer, and how well, differs
between sites under stress:

* **K-FRA** normally answered from any of its three servers; during
  each event all replies came from a single (different) server
  (Fig. 12 top) with stable latency (Fig. 13 top);
* **K-NRT**'s three servers all kept answering but degraded, one
  (K-NRT-S2) worse than the others (Figs. 12-13 bottom).

The model assigns a vantage point to a server by source hash (ECMP
style) in normal operation and applies the site's configured
:class:`~repro.rootdns.sites.ServerBehavior` when the site is
overloaded.
"""

from __future__ import annotations

import numpy as np

from .sites import ServerBehavior

#: Overload multiplier for the hottest server under SKEWED behaviour.
SKEW_HOT_MULTIPLIER = 1.6

#: Overload multiplier for the remaining servers under SKEWED behaviour.
SKEW_COOL_MULTIPLIER = 0.85


def hot_server_index(site_code: str, n_servers: int) -> int:
    """Deterministic index of the most-loaded server at a site."""
    if n_servers < 1:
        raise ValueError("need at least one server")
    return sum(ord(c) for c in site_code) % n_servers


def observed_servers(
    behavior: ServerBehavior,
    n_servers: int,
    vp_hashes: np.ndarray,
    overloaded: bool,
    shed_server: int,
) -> np.ndarray:
    """Server number (1-based) each vantage point's reply comes from.

    *vp_hashes* are stable per-VP integers (source hashing).  Under
    SHED_TO_ONE overload every reply comes from *shed_server*.
    """
    if n_servers < 1:
        raise ValueError("need at least one server")
    hashes = np.asarray(vp_hashes, dtype=np.int64)
    balanced = hashes % n_servers + 1
    if overloaded and behavior is ServerBehavior.SHED_TO_ONE:
        if not 1 <= shed_server <= n_servers:
            raise ValueError(
                f"shed server {shed_server} out of range 1..{n_servers}"
            )
        return np.full_like(balanced, shed_server)
    return balanced


def server_loss_multipliers(
    behavior: ServerBehavior,
    site_code: str,
    n_servers: int,
    overloaded: bool,
) -> np.ndarray:
    """Per-server multipliers applied to the site loss fraction.

    Index ``i`` scales the loss seen by queries answered at server
    ``i + 1``.  Only SKEWED behaviour deviates from uniform.
    """
    multipliers = np.ones(n_servers, dtype=np.float64)
    if overloaded and behavior is ServerBehavior.SKEWED:
        multipliers[:] = SKEW_COOL_MULTIPLIER
        multipliers[hot_server_index(site_code, n_servers)] = (
            SKEW_HOT_MULTIPLIER
        )
    return multipliers


def server_delay_multipliers(
    behavior: ServerBehavior,
    site_code: str,
    n_servers: int,
    overloaded: bool,
) -> np.ndarray:
    """Per-server multipliers applied to the site queueing delay.

    The hot server of a SKEWED site queues deeper (K-NRT-S2's higher
    latency in Fig. 13); a SHED_TO_ONE site keeps stable latency on
    the surviving server (K-FRA in Fig. 13).
    """
    multipliers = np.ones(n_servers, dtype=np.float64)
    if not overloaded:
        return multipliers
    if behavior is ServerBehavior.SKEWED:
        multipliers[:] = SKEW_COOL_MULTIPLIER
        multipliers[hot_server_index(site_code, n_servers)] = (
            SKEW_HOT_MULTIPLIER
        )
    elif behavior is ServerBehavior.SHED_TO_ONE:
        # The surviving server is provisioned to answer what it gets;
        # latency stays near normal (Fig. 13 top).
        multipliers[:] = 0.15
    return multipliers


def rotate_shed_server(current: int, n_servers: int) -> int:
    """Next shed server (K-FRA answered from a different server per
    event: S2 in the first, S3 in the second; Fig. 12)."""
    if n_servers < 1:
        raise ValueError("need at least one server")
    return current % n_servers + 1
