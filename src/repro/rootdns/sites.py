"""Anycast site model: capacity, policy, and server behaviour.

Each root letter deploys a set of sites (Table 2 of the paper).  A site
has a capacity (servers behind a load balancer), a routing *scope*
(global or local, section 2.1), and a *policy* describing how it reacts
to overload (section 2.2):

* **absorb** -- keep announcing; excess traffic is dropped at the
  ingress and latency balloons ("degraded absorber");
* **withdraw** -- pull the BGP announcement entirely, shifting the
  whole catchment (good and bad traffic) to other sites;
* **partial withdraw** -- stop exporting to transit providers while
  keeping direct peers, so part of the catchment stays "stuck" on the
  degraded site while the rest shifts (the behaviour behind the
  paper's Fig. 11 VP groups).

Server behaviour under stress is modelled separately because the paper
observes two distinct patterns at K-Root (section 3.5): K-FRA answered
from a single surviving server per event, while K-NRT degraded across
all three servers with one more loaded than the rest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..netsim.bgp import Scope
from ..util.airports import airport
from ..util.geo import Location


class SitePolicy(enum.Enum):
    """How a site reacts to sustained overload (paper section 2.2)."""

    ABSORB = "absorb"
    WITHDRAW = "withdraw"
    PARTIAL_WITHDRAW = "partial_withdraw"


class ServerBehavior(enum.Enum):
    """How a site's servers respond under stress (paper section 3.5)."""

    NORMAL = "normal"          # balanced; all servers keep answering
    SHED_TO_ONE = "shed_to_one"  # replies collapse onto one server
    SKEWED = "skewed"          # all degrade; load is uneven


#: Default per-server capacity in queries/s.  Section 2.2: "a modest
#: modern computer can handle an entire letter's typical traffic
#: (30-60k queries/s)"; production root servers run well above that.
DEFAULT_PER_SERVER_QPS = 100_000.0

#: Utilisation that triggers a withdraw-policy site to pull its routes.
DEFAULT_WITHDRAW_THRESHOLD = 2.0

#: Bins of calm needed before a withdrawn site re-announces.
DEFAULT_RECOVERY_BINS = 6


@dataclass(frozen=True, slots=True)
class SiteSpec:
    """Static description of one anycast site.

    Parameters
    ----------
    code:
        Three-letter airport code (the paper's ``X-APT`` convention).
    scope:
        Global or local routing (Table 2's site-type split).
    n_servers:
        Physical servers behind the site load balancer.
    per_server_qps:
        Capacity each server contributes.
    policy:
        Overload reaction (see :class:`SitePolicy`).
    server_behavior:
        Per-server degradation pattern (see :class:`ServerBehavior`).
    facility:
        Shared data-centre id, or ``None`` when the site is isolated.
        Co-located services in one facility share ingress fate
        (collateral damage, paper section 3.6).
    initially_announced:
        ``False`` for standby sites (H-Root's backup, section 2.1).
    reannounce_limit:
        How many times the site auto-recovers after withdrawing;
        ``None`` means unlimited.  The paper's five E-Root sites that
        "shut down" after the second event behave like limit 1.
    withdraw_threshold:
        Utilisation that triggers the withdraw/partial policies.
    """

    code: str
    scope: Scope = Scope.GLOBAL
    n_servers: int = 3
    per_server_qps: float = DEFAULT_PER_SERVER_QPS
    policy: SitePolicy = SitePolicy.ABSORB
    server_behavior: ServerBehavior = ServerBehavior.NORMAL
    facility: str | None = None
    initially_announced: bool = True
    reannounce_limit: int | None = None
    withdraw_threshold: float = DEFAULT_WITHDRAW_THRESHOLD
    #: How many transit providers the site host buys from.  Very well
    #: connected sites (K-AMS at AMS-IX) attract shifted catchments
    #: when nearby sites withdraw -- the Fig. 10 "70-80 % go to K-AMS"
    #: signature.
    n_transit_providers: int = 2
    #: Routing-preference discount (see netsim.bgp.Origin).
    route_preference_discount: float = 0.0
    #: Queueing-buffer ceiling override in ms; ``None`` uses the
    #: scenario's overload model.  Sites with shallow buffers drop
    #: instead of queueing (B-Root showed only modest RTT increases
    #: while losing most queries, section 3.2.1).
    buffer_ms: float | None = None
    #: How strongly the site shares ingress fate with its facility
    #: (0 = fully independent transit, 1 = entirely behind the shared
    #: ingress).  Collateral damage (section 3.6) flows through this.
    facility_coupling: float = 0.15

    def __post_init__(self) -> None:
        if len(self.code) != 3:
            raise ValueError(f"site codes are 3 letters: {self.code!r}")
        if self.n_servers < 1:
            raise ValueError("a site needs at least one server")
        if self.per_server_qps <= 0:
            raise ValueError("per-server capacity must be positive")
        if self.withdraw_threshold <= 1.0:
            raise ValueError("withdraw threshold must exceed 1.0")
        if self.reannounce_limit is not None and self.reannounce_limit < 0:
            raise ValueError("reannounce_limit cannot be negative")
        if self.n_transit_providers < 1:
            raise ValueError("a site needs at least one transit provider")
        if not 0.0 <= self.facility_coupling <= 1.0:
            raise ValueError("facility_coupling must be within [0, 1]")
        if self.buffer_ms is not None and self.buffer_ms <= 0:
            raise ValueError("buffer_ms must be positive")

    @property
    def capacity_qps(self) -> float:
        """Aggregate site capacity in queries per second."""
        return self.n_servers * self.per_server_qps

    @property
    def location(self) -> Location:
        """Site location, from the airport table."""
        return airport(self.code).location

    def label(self, letter: str) -> str:
        """The paper's normalized site name, e.g. ``K-AMS``."""
        return f"{letter}-{self.code}"


@dataclass(slots=True)
class SiteState:
    """Mutable per-site simulation state."""

    spec: SiteSpec
    announced: bool
    withdrawals: int = 0
    calm_bins: int = 0
    partial: bool = False
    #: Which server currently answers when behaviour is SHED_TO_ONE
    #: (rotates between events, as seen at K-FRA in Fig. 12).
    shed_server: int = 1

    @classmethod
    def initial(cls, spec: SiteSpec) -> "SiteState":
        return cls(spec=spec, announced=spec.initially_announced)

    def may_reannounce(self) -> bool:
        """Whether the auto-recovery budget allows re-announcing."""
        if self.spec.reannounce_limit is None:
            return True
        return self.withdrawals <= self.spec.reannounce_limit
