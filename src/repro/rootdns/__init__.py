"""Root DNS service model: letters, sites, servers, facilities."""

from .deployment import (
    LetterDeployment,
    PolicyEvent,
    build_deployments,
)
from .facility import FacilityMember, FacilityRegistry
from .runtime import RootNameServer, RootZone
from .letters import (
    ATTACKED_LETTERS,
    LETTERS_SPEC,
    RIPE_MEASUREMENT_IDS,
    RSSAC_REPORTING_LETTERS,
    SHARED_FACILITY_METROS,
    LetterSpec,
    facility_for,
    letter_spec,
)
from .servers import (
    hot_server_index,
    observed_servers,
    rotate_shed_server,
    server_delay_multipliers,
    server_loss_multipliers,
)
from .sites import (
    DEFAULT_PER_SERVER_QPS,
    DEFAULT_RECOVERY_BINS,
    DEFAULT_WITHDRAW_THRESHOLD,
    ServerBehavior,
    SitePolicy,
    SiteSpec,
    SiteState,
)

__all__ = [
    "ATTACKED_LETTERS",
    "DEFAULT_PER_SERVER_QPS",
    "DEFAULT_RECOVERY_BINS",
    "DEFAULT_WITHDRAW_THRESHOLD",
    "FacilityMember",
    "FacilityRegistry",
    "LETTERS_SPEC",
    "LetterDeployment",
    "LetterSpec",
    "PolicyEvent",
    "RIPE_MEASUREMENT_IDS",
    "RSSAC_REPORTING_LETTERS",
    "RootNameServer",
    "RootZone",
    "SHARED_FACILITY_METROS",
    "ServerBehavior",
    "SitePolicy",
    "SiteSpec",
    "SiteState",
    "build_deployments",
    "facility_for",
    "hot_server_index",
    "letter_spec",
    "observed_servers",
    "rotate_shed_server",
    "server_delay_multipliers",
    "server_loss_multipliers",
]
