"""The 13 Root Letter services (paper Table 2).

Each letter is an independently operated DNS service with its own
architecture.  E- and K-Root get explicit site lists taken from the
paper's Figures 5-6 (airport codes, relative catchment sizes, and the
stress behaviours sections 3.3-3.5 document per site).  The other
letters' per-site details were not published, so their deployments are
synthesised deterministically to match Table 2's *observed* site
counts and each operator's regional footprint.

Calibration notes (all documented in DESIGN.md):

* capacities are chosen so the ~5 Mq/s per-letter event traffic
  (section 2.3) reproduces each letter's observed outcome: B (unicast,
  one site) nearly disappears, H's primary withdraws to its backup,
  K-LHR/K-FRA shed to K-AMS while K-AMS absorbs with seconds of
  latency, five E sites withdraw and stay down after the second event,
  and the large letters (J, L) barely notice;
* ``rssac_capture_fraction`` models best-effort RSSAC-002 measurement
  losing data under stress (sections 2.4.2, 3.1): A measured the whole
  event, H/J/K under-measured badly;
* ``rssac_ip_capture_fraction`` models the (much more expensive)
  unique-source counting sampling an even smaller slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netsim.bgp import Scope
from ..util.airports import AIRPORTS
from .sites import ServerBehavior, SitePolicy, SiteSpec

#: Metros whose data centres host multiple services (section 3.6 finds
#: collateral damage in Frankfurt and Sydney; we also share the other
#: big European interconnection metros).
SHARED_FACILITY_METROS = ("FRA", "AMS", "LHR", "SYD", "NRT")

#: RIPE Atlas measurement ids per letter (paper reference [46]).
RIPE_MEASUREMENT_IDS = {
    "A": 10309, "B": 10310, "C": 10311, "D": 10312, "E": 10313,
    "F": 10304, "G": 10314, "H": 10315, "I": 10305, "J": 10316,
    "K": 10301, "L": 10308, "M": 10306,
}


def facility_for(code: str) -> str | None:
    """Shared facility id for a metro, or ``None`` if isolated."""
    if code in SHARED_FACILITY_METROS:
        return f"{code}-DC"
    return None


@dataclass(frozen=True, slots=True)
class LetterSpec:
    """One root letter service and its deployment."""

    letter: str
    operator: str
    reported_sites: int
    reported_note: str
    attacked: bool
    rssac_reporting: bool
    rssac_capture_fraction: float
    rssac_ip_capture_fraction: float
    baseline_qps: float
    probe_interval_s: int
    sites: tuple[SiteSpec, ...]

    def __post_init__(self) -> None:
        codes = [s.code for s in self.sites]
        if len(set(codes)) != len(codes):
            raise ValueError(f"duplicate site codes for {self.letter}")
        if not 0.0 <= self.rssac_capture_fraction <= 1.0:
            raise ValueError("rssac_capture_fraction must be in [0, 1]")
        if not 0.0 <= self.rssac_ip_capture_fraction <= 1.0:
            raise ValueError("rssac_ip_capture_fraction must be in [0, 1]")

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    @property
    def capacity_qps(self) -> float:
        """Aggregate capacity over all sites."""
        return sum(s.capacity_qps for s in self.sites)

    @property
    def measurement_id(self) -> int:
        return RIPE_MEASUREMENT_IDS[self.letter]

    def site(self, code: str) -> SiteSpec:
        """Look up a site by airport code."""
        for spec in self.sites:
            if spec.code == code:
                return spec
        raise KeyError(f"{self.letter}-Root has no site {code!r}")


def _site(code: str, **kwargs) -> SiteSpec:
    kwargs.setdefault("facility", facility_for(code))
    return SiteSpec(code=code, **kwargs)


def _e_root_sites() -> tuple[SiteSpec, ...]:
    """E-Root: the 32 sites of Fig. 6a plus small unlisted ones.

    Five sites (AMS, CDG, WAW, SYD, NLV) withdrew under stress and
    stayed down after the second event (Fig. 6a); the big survivors
    (FRA, LHR, ARC, VIE, IAD) absorbed the shifted load.
    """
    withdrawers = {"AMS", "CDG", "WAW", "SYD", "NLV"}
    big = {"FRA": 8, "LHR": 8, "ARC": 8, "VIE": 5, "IAD": 5,
           "AMS": 2, "CDG": 1, "WAW": 1, "SYD": 1, "NLV": 1}
    well_connected = {"FRA": 4, "LHR": 4, "ARC": 3, "VIE": 3, "IAD": 3}
    named = [
        "AMS", "FRA", "LHR", "ARC", "CDG", "VIE", "QPG", "ORD", "KBP",
        "ZRH", "IAD", "PAO", "WAW", "ATL", "BER", "SYD", "SEA", "NLV",
        "MIA", "NRT", "TRN", "AKL", "MAN", "BUR", "LGA", "PER", "SNA",
        "LBA", "SIN", "DXB", "KGL", "LAD",
    ]
    sites = []
    for i, code in enumerate(named):
        policy = (
            SitePolicy.WITHDRAW if code in withdrawers else SitePolicy.ABSORB
        )
        sites.append(
            _site(
                code,
                scope=Scope.GLOBAL if i < 18 else Scope.LOCAL,
                n_servers=big.get(code, 2),
                policy=policy,
                reannounce_limit=1 if code in withdrawers else None,
                withdraw_threshold=1.3 if code in withdrawers else 2.0,
                n_transit_providers=well_connected.get(code, 2),
            )
        )
    # Unlisted tiny sites to reach Table 2's 74 observed sites.
    extra_pool = [
        c for c in AIRPORTS
        if c not in named and c not in ("BWI", "SAN")
    ]
    for code in extra_pool[: 74 - len(named)]:
        sites.append(
            _site(code, scope=Scope.LOCAL, n_servers=1,
                  policy=SitePolicy.ABSORB)
        )
    return tuple(sites)


def _k_root_sites() -> tuple[SiteSpec, ...]:
    """K-Root: the sites of Fig. 6b with their documented behaviours.

    K-AMS stays up but absorbs with seconds of latency (Fig. 7);
    K-LHR and K-FRA shed most of their catchment towards K-AMS
    (Figs. 10-11) while still serving "stuck" peers; K-FRA's replies
    collapse onto a single server per event while K-NRT's three
    servers all degrade unevenly (Figs. 12-13).
    """
    named: list[tuple[str, dict]] = [
        ("AMS", dict(n_servers=10, policy=SitePolicy.ABSORB,
                     n_transit_providers=5, route_preference_discount=0.5)),
        ("LHR", dict(n_servers=3, policy=SitePolicy.PARTIAL_WITHDRAW)),
        ("FRA", dict(n_servers=3, policy=SitePolicy.PARTIAL_WITHDRAW,
                     server_behavior=ServerBehavior.SHED_TO_ONE)),
        ("MIA", dict(n_servers=4)),
        ("VIE", dict(n_servers=3)),
        ("LED", dict(n_servers=3)),
        ("NRT", dict(n_servers=3, policy=SitePolicy.ABSORB,
                     server_behavior=ServerBehavior.SKEWED)),
        ("MIL", dict(n_servers=3)),
        ("ZRH", dict(n_servers=3)),
        ("WAW", dict(n_servers=2)),
        ("BNE", dict(n_servers=3)),
        ("PRG", dict(n_servers=3)),
        ("GVA", dict(n_servers=3)),
        ("ATH", dict(n_servers=2)),
        ("MKC", dict(n_servers=2)),
    ]
    local = [
        "RIX", "THR", "BUD", "KAE", "BEG", "HEL", "PLX", "OVB", "POZ",
        "ABO", "AVN", "BCN", "REY", "DOH", "RNO", "DEL", "JNB",
    ]
    sites = [
        _site(code, scope=Scope.GLOBAL, **kwargs) for code, kwargs in named
    ]
    sites.extend(
        _site(code, scope=Scope.LOCAL, n_servers=1) for code in local
    )
    return tuple(sites)


#: Regional site-placement weights per synthetic letter.
_SYNTH_PROFILES: dict[str, dict[str, float]] = {
    "A": {"NA": 0.6, "EU": 0.2, "AS": 0.2},
    "C": {"NA": 0.6, "EU": 0.4},
    "D": {"EU": 0.35, "NA": 0.3, "AS": 0.15, "OC": 0.1, "SA": 0.05,
          "AF": 0.05},
    "F": {"NA": 0.3, "EU": 0.3, "AS": 0.2, "SA": 0.08, "OC": 0.07,
          "AF": 0.05},
    "G": {"NA": 1.0},
    "I": {"EU": 0.7, "NA": 0.1, "AS": 0.1, "AF": 0.05, "OC": 0.05},
    "J": {"NA": 0.4, "EU": 0.3, "AS": 0.2, "OC": 0.05, "SA": 0.05},
    "L": {"NA": 0.25, "EU": 0.3, "AS": 0.2, "SA": 0.1, "OC": 0.05,
          "AF": 0.05, "ME": 0.05},
    "M": {"AS": 0.7, "NA": 0.15, "EU": 0.15},
}


def _synth_sites(
    letter: str,
    count: int,
    n_global: int,
    must_include: tuple[str, ...] = (),
    exclude: tuple[str, ...] = (),
    policy_overrides: dict[str, SitePolicy] | None = None,
    n_servers_global: int = 4,
    n_servers_local: int = 1,
    coupling_overrides: dict[str, float] | None = None,
    server_overrides: dict[str, int] | None = None,
    buffer_ms: float | None = None,
) -> tuple[SiteSpec, ...]:
    """Deterministically synthesise a letter's site list.

    Site codes are drawn without replacement from the airport table,
    weighted by the letter's regional profile; *must_include* pins
    specific metros (e.g. D's Frankfurt and Sydney sites, which the
    paper shows suffering collateral damage).
    """
    profile = _SYNTH_PROFILES[letter]
    # Seeded from the letter itself (not Python's randomised hash), so
    # the registry is identical in every process.
    rng = np.random.default_rng(ord(letter) + 77)
    # Region-major deterministic ordering.
    by_region: dict[str, list[str]] = {}
    for code, ap in AIRPORTS.items():
        by_region.setdefault(ap.region, []).append(code)
    for codes in by_region.values():
        rng.shuffle(codes)
    chosen: list[str] = list(must_include)
    banned = set(exclude)
    regions = sorted(profile)
    weights = np.array([profile[r] for r in regions])
    weights = weights / weights.sum()
    while len(chosen) < count:
        region = regions[rng.choice(len(regions), p=weights)]
        pool = [
            c for c in by_region.get(region, [])
            if c not in chosen and c not in banned
        ]
        if not pool:
            pool = [
                c for codes in by_region.values() for c in codes
                if c not in chosen and c not in banned
            ]
            if not pool:
                raise ValueError(
                    f"airport table too small for {letter} ({count} sites)"
                )
        chosen.append(pool[0])
    overrides = policy_overrides or {}
    couplings = coupling_overrides or {}
    servers = server_overrides or {}
    sites = []
    for i, code in enumerate(chosen):
        is_global = i < n_global
        kwargs = {}
        if code in couplings:
            kwargs["facility_coupling"] = couplings[code]
        default_servers = n_servers_global if is_global else n_servers_local
        if buffer_ms is not None:
            kwargs["buffer_ms"] = buffer_ms
        sites.append(
            _site(
                code,
                scope=Scope.GLOBAL if is_global else Scope.LOCAL,
                n_servers=servers.get(code, default_servers),
                policy=overrides.get(code, SitePolicy.ABSORB),
                **kwargs,
            )
        )
    return tuple(sites)


def _build_letters() -> dict[str, LetterSpec]:
    letters = {}

    def add(spec: LetterSpec) -> None:
        letters[spec.letter] = spec

    add(LetterSpec(
        letter="A", operator="Verisign", reported_sites=5,
        reported_note="(5, 0)", attacked=True,
        rssac_reporting=True, rssac_capture_fraction=1.0,
        rssac_ip_capture_fraction=0.6,
        baseline_qps=40_000.0, probe_interval_s=1800,
        sites=_synth_sites(
            "A", 5, n_global=5, n_servers_global=55,
            must_include=("IAD", "LAX", "FRA", "NRT"),
        ),
    ))
    add(LetterSpec(
        letter="B", operator="USC/ISI", reported_sites=1,
        reported_note="(unicast)", attacked=True,
        rssac_reporting=False, rssac_capture_fraction=0.05,
        rssac_ip_capture_fraction=0.005,
        baseline_qps=35_000.0, probe_interval_s=240,
        sites=(_site("LAX", n_servers=3, policy=SitePolicy.ABSORB,
                     buffer_ms=40.0),),
    ))
    add(LetterSpec(
        letter="C", operator="Cogent", reported_sites=8,
        reported_note="(8, 0)", attacked=True,
        rssac_reporting=False, rssac_capture_fraction=0.3,
        rssac_ip_capture_fraction=0.01,
        baseline_qps=45_000.0, probe_interval_s=240,
        sites=_synth_sites(
            "C", 8, n_global=8, n_servers_global=2,
            must_include=("IAD", "ORD", "LAX", "FRA"),
            policy_overrides={"FRA": SitePolicy.PARTIAL_WITHDRAW},
        ),
    ))
    add(LetterSpec(
        letter="D", operator="U. Maryland", reported_sites=87,
        reported_note="(18, 69)", attacked=False,
        rssac_reporting=False, rssac_capture_fraction=1.0,
        rssac_ip_capture_fraction=0.01,
        baseline_qps=50_000.0, probe_interval_s=240,
        sites=_synth_sites(
            "D", 65, n_global=18, must_include=("FRA", "SYD", "IAD"),
            n_servers_global=4,
            # D's Frankfurt and Sydney sites share much of their
            # ingress with co-located attacked services (section 3.6).
            coupling_overrides={"FRA": 0.55, "SYD": 0.7},
        ),
    ))
    add(LetterSpec(
        letter="E", operator="NASA", reported_sites=12,
        reported_note="(1, 11)", attacked=True,
        rssac_reporting=False, rssac_capture_fraction=0.25,
        rssac_ip_capture_fraction=0.01,
        baseline_qps=45_000.0, probe_interval_s=240,
        sites=_e_root_sites(),
    ))
    add(LetterSpec(
        letter="F", operator="ISC", reported_sites=59,
        reported_note="(5, 54)", attacked=True,
        rssac_reporting=False, rssac_capture_fraction=0.4,
        rssac_ip_capture_fraction=0.01,
        baseline_qps=55_000.0, probe_interval_s=240,
        sites=_synth_sites(
            "F", 52, n_global=5, must_include=("AMS", "FRA", "LHR", "PAO", "ORD"),
            n_servers_global=5, n_servers_local=2,
            policy_overrides={"AMS": SitePolicy.WITHDRAW},
            server_overrides={"AMS": 1},
        ),
    ))
    add(LetterSpec(
        letter="G", operator="U.S. DoD", reported_sites=6,
        reported_note="(6, 0)", attacked=True,
        rssac_reporting=False, rssac_capture_fraction=0.2,
        rssac_ip_capture_fraction=0.01,
        baseline_qps=30_000.0, probe_interval_s=240,
        # G's U.S.-east sites withdraw under stress, shifting mostly-
        # European VPs to the west coast (the Fig. 4 latency step).
        sites=_synth_sites(
            "G", 6, n_global=6, n_servers_global=4,
            must_include=("IAD", "ORD", "DEN", "SEA"),
            policy_overrides={
                "IAD": SitePolicy.WITHDRAW,
                "ORD": SitePolicy.WITHDRAW,
            },
            buffer_ms=80.0,
        ),
    ))
    add(LetterSpec(
        letter="H", operator="ARL", reported_sites=2,
        reported_note="(pri/back)", attacked=True,
        rssac_reporting=True, rssac_capture_fraction=0.575,
        rssac_ip_capture_fraction=0.0005,
        baseline_qps=30_000.0, probe_interval_s=240,
        sites=(
            _site("BWI", n_servers=4, policy=SitePolicy.WITHDRAW,
                  withdraw_threshold=1.5, buffer_ms=60.0),
            _site("SAN", n_servers=4, policy=SitePolicy.ABSORB,
                  initially_announced=False, buffer_ms=60.0),
        ),
    ))
    add(LetterSpec(
        letter="I", operator="Netnod", reported_sites=49,
        reported_note="(48, 0)", attacked=True,
        rssac_reporting=False, rssac_capture_fraction=0.35,
        rssac_ip_capture_fraction=0.01,
        baseline_qps=50_000.0, probe_interval_s=240,
        sites=_synth_sites(
            "I", 48, n_global=48, n_servers_global=5,
            must_include=("ARN", "FRA", "AMS", "LHR"),
        ),
    ))
    add(LetterSpec(
        letter="J", operator="Verisign", reported_sites=98,
        reported_note="(66, 32)", attacked=True,
        rssac_reporting=True, rssac_capture_fraction=0.37,
        rssac_ip_capture_fraction=0.25,
        baseline_qps=50_000.0, probe_interval_s=240,
        sites=_synth_sites(
            "J", 69, n_global=66 * 69 // 98, n_servers_global=6,
            n_servers_local=2,
            must_include=("IAD", "FRA", "AMS", "NRT", "LHR", "SYD"),
            exclude=("HND", "KIX"),
            policy_overrides={"NRT": SitePolicy.PARTIAL_WITHDRAW},
            server_overrides={"NRT": 2},
        ),
    ))
    add(LetterSpec(
        letter="K", operator="RIPE", reported_sites=33,
        reported_note="(15, 18)", attacked=True,
        rssac_reporting=True, rssac_capture_fraction=0.42,
        rssac_ip_capture_fraction=0.0035,
        baseline_qps=40_000.0, probe_interval_s=240,
        sites=_k_root_sites(),
    ))
    add(LetterSpec(
        letter="L", operator="ICANN", reported_sites=144,
        reported_note="(144, 0)", attacked=False,
        rssac_reporting=True, rssac_capture_fraction=1.0,
        rssac_ip_capture_fraction=0.012,
        baseline_qps=60_000.0, probe_interval_s=240,
        sites=_synth_sites(
            "L", 113, n_global=113, n_servers_global=3,
        ),
    ))
    add(LetterSpec(
        letter="M", operator="WIDE", reported_sites=7,
        reported_note="(6, 1)", attacked=False,
        rssac_reporting=False, rssac_capture_fraction=1.0,
        rssac_ip_capture_fraction=0.01,
        baseline_qps=45_000.0, probe_interval_s=240,
        sites=_synth_sites(
            "M", 6, n_global=6, n_servers_global=6,
            must_include=("NRT", "HND", "SFO", "CDG"),
        ),
    ))
    return letters


#: The canonical letter registry, keyed by letter.
LETTERS_SPEC: dict[str, LetterSpec] = _build_letters()

#: Letters the events targeted (D, L and M were not attacked; §2.3).
ATTACKED_LETTERS = tuple(
    spec.letter for spec in LETTERS_SPEC.values() if spec.attacked
)

#: Letters providing RSSAC-002 data at event time (§2.4.2).
RSSAC_REPORTING_LETTERS = tuple(
    spec.letter for spec in LETTERS_SPEC.values() if spec.rssac_reporting
)


def letter_spec(letter: str) -> LetterSpec:
    """Look up a letter's spec, raising for unknown letters."""
    try:
        return LETTERS_SPEC[letter]
    except KeyError:
        raise KeyError(f"unknown root letter {letter!r}") from None
