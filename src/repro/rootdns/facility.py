"""Shared data-centre model for collateral damage (paper section 3.6).

Root sites (and other services, like the .nl TLD's anycast nodes) are
often co-located in shared facilities.  The paper finds end-to-end
evidence that stress on attacked services spilled over to co-located
ones: D-Root's Frankfurt and Sydney sites dipped although D was not
attacked, and two .nl anycast deployments near root sites went almost
silent during the events.

We model a facility as a shared ingress sized for the services it
hosts.  When the aggregate offered load exceeds the facility capacity,
every member suffers extra loss proportional to the overflow, scaled
by a per-member *coupling* factor expressing how much infrastructure
the member shares (an unattacked letter with its own transit sees a
small fraction; a small TLD node behind the same congested port sees
all of it).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class FacilityMember:
    """One service hosted in a facility."""

    label: str
    capacity_qps: float
    coupling: float

    def __post_init__(self) -> None:
        if self.capacity_qps <= 0:
            raise ValueError("member capacity must be positive")
        if not 0.0 <= self.coupling <= 1.0:
            raise ValueError("coupling must be within [0, 1]")


class FacilityRegistry:
    """Tracks which services share facilities and computes spillover.

    *ingress_factor* scales the shared ingress relative to the members'
    aggregate service capacity.  Facilities provision their shared
    paths for normal traffic, not for 100x attacks, so the shared
    ingress is a small fraction of what the servers inside could
    nominally absorb; this factor is what makes a drowning facility
    drown its tenants (Fig. 15's .nl nodes).
    """

    def __init__(self, ingress_factor: float = 1.0) -> None:
        if not 0.0 < ingress_factor <= 1.0:
            raise ValueError("ingress_factor must be within (0, 1]")
        self.ingress_factor = ingress_factor
        self._members: dict[str, dict[str, FacilityMember]] = {}
        self._facility_of: dict[str, str] = {}

    def register(
        self,
        facility: str,
        label: str,
        capacity_qps: float,
        coupling: float,
    ) -> None:
        """Register *label* as a member of *facility*."""
        if label in self._facility_of:
            raise ValueError(f"{label!r} already registered")
        member = FacilityMember(label, capacity_qps, coupling)
        self._members.setdefault(facility, {})[label] = member
        self._facility_of[label] = facility

    @property
    def facilities(self) -> list[str]:
        """All facility codes, in registration order."""
        return list(self._members)

    def members(self, facility: str) -> list[FacilityMember]:
        """Members of one facility."""
        try:
            return list(self._members[facility].values())
        except KeyError:
            raise KeyError(f"unknown facility {facility!r}") from None

    def facility_of(self, label: str) -> str | None:
        """The facility hosting *label*, or ``None``."""
        return self._facility_of.get(label)

    def capacity(self, facility: str) -> float:
        """Shared ingress capacity of *facility*."""
        total = sum(m.capacity_qps for m in self.members(facility))
        return total * self.ingress_factor

    def spillover_layout(
        self,
    ) -> list[tuple[str, float, list[FacilityMember]]]:
        """``(facility, shared capacity, members)`` rows in the exact
        walk order of :meth:`spillover`.

        The segment-batched engine precomputes a label-to-array-slot
        map from this layout so per-bin facility sums become indexed
        adds instead of dict lookups; the capacities here are the same
        floats :meth:`capacity` returns, so replaying the
        :meth:`spillover` arithmetic over the layout is bit-identical.
        """
        return [
            (facility, self.capacity(facility), list(members.values()))
            for facility, members in self._members.items()
        ]

    def spillover(
        self, offered_by_label: dict[str, float]
    ) -> dict[str, float]:
        """Extra loss fraction per member label.

        *offered_by_label* gives the traffic currently arriving for
        each registered member (absent labels count as zero).  Returns
        only members with non-zero spillover.
        """
        extra: dict[str, float] = {}
        for facility, members in self._members.items():
            offered = sum(
                offered_by_label.get(label, 0.0) for label in members
            )
            capacity = self.capacity(facility)
            if offered <= capacity:
                continue
            overflow_loss = 1.0 - capacity / offered
            for label, member in members.items():
                loss = overflow_loss * member.coupling
                if loss > 0.0:
                    extra[label] = min(1.0, loss)
        return extra
