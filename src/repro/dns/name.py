"""DNS domain-name encoding and decoding (RFC 1035 section 3.1).

Names are sequences of labels.  On the wire each label is a length octet
followed by that many bytes; the name ends with a zero-length label.
Decoding supports RFC 1035 message compression (pointer labels), which
real responses use heavily; encoding always emits the uncompressed form,
which is valid and keeps the encoder simple.
"""

from __future__ import annotations

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255

#: Top two bits set in a length octet mark a compression pointer.
_POINTER_MASK = 0xC0


class NameError_(ValueError):
    """Raised for malformed names (wire or presentation form)."""


def split_labels(name: str) -> list[bytes]:
    """Split a presentation-form name into its labels as bytes.

    The root name is spelled ``"."`` or ``""`` and has no labels.
    A single trailing dot is accepted and ignored.
    """
    if name in ("", "."):
        return []
    if name.endswith("."):
        name = name[:-1]
    labels = []
    for part in name.split("."):
        if not part:
            raise NameError_(f"empty label in {name!r}")
        raw = part.encode("ascii", errors="strict")
        if len(raw) > MAX_LABEL_LENGTH:
            raise NameError_(f"label too long in {name!r}: {part!r}")
        labels.append(raw)
    return labels


def encode_name(name: str) -> bytes:
    """Encode a presentation-form name to uncompressed wire form."""
    labels = split_labels(name)
    out = bytearray()
    for label in labels:
        out.append(len(label))
        out.extend(label)
    out.append(0)
    if len(out) > MAX_NAME_LENGTH:
        raise NameError_(f"name too long: {name!r}")
    return bytes(out)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a (possibly compressed) name from *data* at *offset*.

    Returns ``(name, next_offset)`` where *next_offset* is the offset of
    the first byte after the name *in the original (uncompressed) byte
    stream* -- i.e. following a pointer does not advance it.
    """
    labels: list[str] = []
    jumped = False
    next_offset = offset
    seen_pointers: set[int] = set()
    pos = offset
    while True:
        if pos >= len(data):
            raise NameError_("name runs past end of message")
        length = data[pos]
        if length & _POINTER_MASK == _POINTER_MASK:
            if pos + 1 >= len(data):
                raise NameError_("truncated compression pointer")
            target = ((length & ~_POINTER_MASK) << 8) | data[pos + 1]
            if target in seen_pointers:
                raise NameError_("compression pointer loop")
            if target >= pos:
                raise NameError_("forward compression pointer")
            seen_pointers.add(target)
            if not jumped:
                next_offset = pos + 2
                jumped = True
            pos = target
            continue
        if length & _POINTER_MASK:
            raise NameError_(f"reserved label type 0x{length:02x}")
        pos += 1
        if length == 0:
            break
        if pos + length > len(data):
            raise NameError_("label runs past end of message")
        labels.append(data[pos : pos + length].decode("ascii"))
        pos += length
    if not jumped:
        next_offset = pos
    name = ".".join(labels) + "."
    if name == ".":
        return ".", next_offset
    return name, next_offset


def normalize_name(name: str) -> str:
    """Canonical presentation form: lowercase with one trailing dot."""
    labels = split_labels(name)
    if not labels:
        return "."
    return ".".join(label.decode("ascii").lower() for label in labels) + "."
