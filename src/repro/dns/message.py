"""DNS message wire format: header, question, resource records.

Implements enough of RFC 1035 to build and parse the traffic the
reproduction exchanges: standard queries (the attack's fixed-name
queries, baseline resolver queries) and responses carrying TXT records
(the CHAOS ``hostname.bind`` replies the measurement platform parses to
identify anycast sites and servers).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .name import decode_name, encode_name, normalize_name
from .rcode import Opcode, QClass, QType, Rcode

_HEADER = struct.Struct("!HHHHHH")

_FLAG_QR = 0x8000
_FLAG_AA = 0x0400
_FLAG_TC = 0x0200
_FLAG_RD = 0x0100
_FLAG_RA = 0x0080
_OPCODE_SHIFT = 11
_OPCODE_MASK = 0xF
_RCODE_MASK = 0xF


class MessageError(ValueError):
    """Raised when a wire message cannot be parsed."""


@dataclass(frozen=True, slots=True)
class Header:
    """The fixed 12-byte DNS header."""

    msg_id: int
    qr: bool = False
    opcode: Opcode = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = False
    ra: bool = False
    rcode: Rcode = Rcode.NOERROR
    qdcount: int = 0
    ancount: int = 0
    nscount: int = 0
    arcount: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.msg_id <= 0xFFFF:
            raise ValueError(f"message id out of range: {self.msg_id}")

    def encode(self) -> bytes:
        flags = (int(self.opcode) & _OPCODE_MASK) << _OPCODE_SHIFT
        flags |= int(self.rcode) & _RCODE_MASK
        if self.qr:
            flags |= _FLAG_QR
        if self.aa:
            flags |= _FLAG_AA
        if self.tc:
            flags |= _FLAG_TC
        if self.rd:
            flags |= _FLAG_RD
        if self.ra:
            flags |= _FLAG_RA
        return _HEADER.pack(
            self.msg_id,
            flags,
            self.qdcount,
            self.ancount,
            self.nscount,
            self.arcount,
        )

    @classmethod
    def decode(cls, data: bytes) -> "Header":
        if len(data) < _HEADER.size:
            raise MessageError("message shorter than DNS header")
        msg_id, flags, qd, an, ns, ar = _HEADER.unpack_from(data)
        return cls(
            msg_id=msg_id,
            qr=bool(flags & _FLAG_QR),
            opcode=Opcode((flags >> _OPCODE_SHIFT) & _OPCODE_MASK),
            aa=bool(flags & _FLAG_AA),
            tc=bool(flags & _FLAG_TC),
            rd=bool(flags & _FLAG_RD),
            ra=bool(flags & _FLAG_RA),
            rcode=Rcode(flags & _RCODE_MASK),
            qdcount=qd,
            ancount=an,
            nscount=ns,
            arcount=ar,
        )


@dataclass(frozen=True, slots=True)
class Question:
    """One entry of the question section."""

    qname: str
    qtype: QType = QType.A
    qclass: QClass = QClass.IN

    def encode(self) -> bytes:
        return encode_name(self.qname) + struct.pack(
            "!HH", int(self.qtype), int(self.qclass)
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["Question", int]:
        qname, offset = decode_name(data, offset)
        if offset + 4 > len(data):
            raise MessageError("truncated question")
        qtype, qclass = struct.unpack_from("!HH", data, offset)
        return (
            cls(qname=qname, qtype=QType(qtype), qclass=QClass(qclass)),
            offset + 4,
        )


def encode_txt_rdata(strings: list[str]) -> bytes:
    """RDATA of a TXT record: length-prefixed character strings."""
    out = bytearray()
    for text in strings:
        raw = text.encode("ascii")
        if len(raw) > 255:
            raise ValueError(f"TXT string too long: {text!r}")
        out.append(len(raw))
        out.extend(raw)
    return bytes(out)


def decode_txt_rdata(rdata: bytes) -> list[str]:
    """Inverse of :func:`encode_txt_rdata`."""
    strings = []
    pos = 0
    while pos < len(rdata):
        length = rdata[pos]
        pos += 1
        if pos + length > len(rdata):
            raise MessageError("truncated TXT character-string")
        strings.append(rdata[pos : pos + length].decode("ascii"))
        pos += length
    return strings


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """A resource record; RDATA is kept as raw bytes."""

    name: str
    rtype: QType
    rclass: QClass
    ttl: int
    rdata: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 0xFFFFFFFF:
            raise ValueError(f"ttl out of range: {self.ttl}")
        if len(self.rdata) > 0xFFFF:
            raise ValueError("rdata too long")

    def encode(self) -> bytes:
        return (
            encode_name(self.name)
            + struct.pack(
                "!HHIH",
                int(self.rtype),
                int(self.rclass),
                self.ttl,
                len(self.rdata),
            )
            + self.rdata
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["ResourceRecord", int]:
        name, offset = decode_name(data, offset)
        if offset + 10 > len(data):
            raise MessageError("truncated resource record")
        rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
        offset += 10
        if offset + rdlength > len(data):
            raise MessageError("resource record rdata runs past message")
        rdata = data[offset : offset + rdlength]
        return (
            cls(
                name=name,
                rtype=QType(rtype),
                rclass=QClass(rclass),
                ttl=ttl,
                rdata=rdata,
            ),
            offset + rdlength,
        )

    def txt_strings(self) -> list[str]:
        """Decode this record's RDATA as TXT character strings."""
        if self.rtype is not QType.TXT:
            raise ValueError(f"not a TXT record: {self.rtype!r}")
        return decode_txt_rdata(self.rdata)


@dataclass(frozen=True, slots=True)
class Message:
    """A full DNS message: header plus the four record sections."""

    header: Header
    questions: tuple[Question, ...] = ()
    answers: tuple[ResourceRecord, ...] = field(default=())
    authorities: tuple[ResourceRecord, ...] = field(default=())
    additionals: tuple[ResourceRecord, ...] = field(default=())

    def encode(self) -> bytes:
        header = Header(
            msg_id=self.header.msg_id,
            qr=self.header.qr,
            opcode=self.header.opcode,
            aa=self.header.aa,
            tc=self.header.tc,
            rd=self.header.rd,
            ra=self.header.ra,
            rcode=self.header.rcode,
            qdcount=len(self.questions),
            ancount=len(self.answers),
            nscount=len(self.authorities),
            arcount=len(self.additionals),
        )
        parts = [header.encode()]
        parts.extend(q.encode() for q in self.questions)
        for section in (self.answers, self.authorities, self.additionals):
            parts.extend(rr.encode() for rr in section)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        header = Header.decode(data)
        offset = _HEADER.size
        questions = []
        for _ in range(header.qdcount):
            question, offset = Question.decode(data, offset)
            questions.append(question)
        sections: list[list[ResourceRecord]] = []
        for count in (header.ancount, header.nscount, header.arcount):
            records = []
            for _ in range(count):
                record, offset = ResourceRecord.decode(data, offset)
                records.append(record)
            sections.append(records)
        return cls(
            header=header,
            questions=tuple(questions),
            answers=tuple(sections[0]),
            authorities=tuple(sections[1]),
            additionals=tuple(sections[2]),
        )

    @property
    def wire_size(self) -> int:
        """Size of the encoded message in bytes."""
        return len(self.encode())


def make_query(
    msg_id: int,
    qname: str,
    qtype: QType = QType.A,
    qclass: QClass = QClass.IN,
    rd: bool = False,
) -> Message:
    """Build a standard single-question query message."""
    return Message(
        header=Header(msg_id=msg_id, rd=rd, qdcount=1),
        questions=(Question(normalize_name(qname), qtype, qclass),),
    )


def make_response(
    query: Message,
    rcode: Rcode = Rcode.NOERROR,
    answers: tuple[ResourceRecord, ...] = (),
    aa: bool = True,
) -> Message:
    """Build a response echoing *query*'s id and question."""
    return Message(
        header=Header(
            msg_id=query.header.msg_id,
            qr=True,
            opcode=query.header.opcode,
            aa=aa,
            rd=query.header.rd,
            rcode=rcode,
            qdcount=len(query.questions),
            ancount=len(answers),
        ),
        questions=query.questions,
        answers=answers,
    )


def make_txt_response(query: Message, strings: list[str], ttl: int = 0) -> Message:
    """Build a TXT response to *query* (the CHAOS reply shape)."""
    if not query.questions:
        raise ValueError("query carries no question")
    question = query.questions[0]
    record = ResourceRecord(
        name=question.qname,
        rtype=QType.TXT,
        rclass=question.qclass,
        ttl=ttl,
        rdata=encode_txt_rdata(strings),
    )
    return make_response(query, answers=(record,))
