"""CHAOS-class server identification, per root letter.

A CHAOS TXT query for ``hostname.bind`` (RFC 4892) returns an identifier
naming the specific server that answered.  The paper (section 2.1) notes
that each letter follows its own identifier pattern, which -- properly
interpreted -- reveals both the anycast *site* and the individual
*server* behind a site's load balancer.  Prior work validated CHAOS
site-mapping against traceroute [Fan et al. 2013].

This module defines one identifier style per letter (modelled after the
styles the real operators used in 2015), a formatter used by the
simulated servers, and a parser used by the measurement pipeline.  The
parser doubles as the hijack detector: replies that match no known
pattern for the queried letter are candidate third-party interceptions
(paper section 2.4.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .message import Message, make_query, make_txt_response
from .rcode import CHAOS_HOSTNAME_BIND, QClass, QType

#: The 13 root letters.
LETTERS = tuple("ABCDEFGHIJKLM")


@dataclass(frozen=True, slots=True)
class ServerIdentity:
    """A parsed CHAOS identity: which site and which server answered."""

    letter: str
    site: str
    server: int

    def __post_init__(self) -> None:
        if self.letter not in LETTERS:
            raise ValueError(f"unknown letter {self.letter!r}")
        if self.server < 1:
            raise ValueError("server numbers start at 1")

    @property
    def site_label(self) -> str:
        """The paper's normalized ``X-APT`` site label."""
        return f"{self.letter}-{self.site}"

    @property
    def server_label(self) -> str:
        """A label like ``K-FRA-S2`` (paper's Figs. 12-13)."""
        return f"{self.letter}-{self.site}-S{self.server}"


@dataclass(frozen=True, slots=True)
class IdentityStyle:
    """Formatter/parser pair for one letter's CHAOS identifier style."""

    letter: str
    template: str
    pattern: re.Pattern[str]

    def format(self, site: str, server: int) -> str:
        """Render the identity string a server returns."""
        return self.template.format(
            site=site.lower(), SITE=site.upper(), server=server
        )

    def parse(self, text: str) -> ServerIdentity | None:
        """Parse an identity string; ``None`` if it does not match."""
        match = self.pattern.fullmatch(text.strip())
        if match is None:
            return None
        return ServerIdentity(
            letter=self.letter,
            site=match.group("site").upper(),
            server=int(match.group("server")),
        )


def _style(letter: str, template: str, pattern: str) -> IdentityStyle:
    return IdentityStyle(letter, template, re.compile(pattern))

_SITE = r"(?P<site>[A-Za-z]{3})"
_SERVER = r"(?P<server>\d+)"

#: One identifier style per letter, keyed by letter.
IDENTITY_STYLES: dict[str, IdentityStyle] = {
    style.letter: style
    for style in (
        _style("A", "nnn{server}-{site}", rf"nnn{_SERVER}-{_SITE}"),
        _style("B", "b{server}-{site}", rf"b{_SERVER}-{_SITE}"),
        _style(
            "C",
            "{site}{server}.c.root-servers.org",
            rf"{_SITE}{_SERVER}\.c\.root-servers\.org",
        ),
        _style("D", "rootns-{site}{server}", rf"rootns-{_SITE}{_SERVER}"),
        _style("E", "e{server}.{site}.eroot", rf"e{_SERVER}\.{_SITE}\.eroot"),
        _style(
            "F",
            "{site}{server}a.f.root-servers.org",
            rf"{_SITE}{_SERVER}a\.f\.root-servers\.org",
        ),
        _style("G", "groot-{site}-{server}", rf"groot-{_SITE}-{_SERVER}"),
        _style(
            "H",
            "{server:03d}.{site}.h.root-servers.org",
            rf"{_SERVER}\.{_SITE}\.h\.root-servers\.org",
        ),
        _style("I", "s{server}.{site}", rf"s{_SERVER}\.{_SITE}"),
        _style("J", "rootns-{site}{server}.j", rf"rootns-{_SITE}{_SERVER}\.j"),
        _style(
            "K",
            "ns{server}.{site}.k.ripe.net",
            rf"ns{_SERVER}\.{_SITE}\.k\.ripe\.net",
        ),
        _style(
            "L",
            "{site}{server}.l.root-servers.org",
            rf"{_SITE}{_SERVER}\.l\.root-servers\.org",
        ),
        _style(
            "M",
            "m{server}.{site}.m.root-servers.org",
            rf"m{_SERVER}\.{_SITE}\.m\.root-servers\.org",
        ),
    )
}

if set(IDENTITY_STYLES) != set(LETTERS):  # pragma: no cover - table sanity
    raise AssertionError("identity style table incomplete")


def format_identity(letter: str, site: str, server: int) -> str:
    """The CHAOS identity string for *server* at *site* of *letter*."""
    try:
        style = IDENTITY_STYLES[letter]
    except KeyError:
        raise ValueError(f"unknown letter {letter!r}") from None
    return style.format(site, server)


def parse_identity(letter: str, text: str) -> ServerIdentity | None:
    """Parse a CHAOS reply string against *letter*'s known pattern.

    Returns ``None`` when the reply does not match, which the cleaning
    pipeline treats as evidence of interception (section 2.4.1).
    """
    try:
        style = IDENTITY_STYLES[letter]
    except KeyError:
        raise ValueError(f"unknown letter {letter!r}") from None
    return style.parse(text)


def matches_any_letter(text: str) -> str | None:
    """Return the letter whose pattern matches *text*, if any."""
    for letter, style in IDENTITY_STYLES.items():
        if style.parse(text) is not None:
            return letter
    return None


def make_chaos_query(msg_id: int, qname: str = CHAOS_HOSTNAME_BIND) -> Message:
    """The CHAOS TXT query RIPE Atlas sends every probing interval."""
    return make_query(msg_id, qname, qtype=QType.TXT, qclass=QClass.CH)


def make_chaos_reply(query: Message, letter: str, site: str, server: int) -> Message:
    """The TXT response a simulated root server returns to a CHAOS query."""
    return make_txt_response(query, [format_identity(letter, site, server)])


def identity_from_reply(letter: str, reply: Message) -> ServerIdentity | None:
    """Extract and parse the identity carried in a CHAOS TXT *reply*."""
    for record in reply.answers:
        if record.rtype is QType.TXT:
            for text in record.txt_strings():
                identity = parse_identity(letter, text)
                if identity is not None:
                    return identity
    return None
