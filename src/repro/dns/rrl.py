"""Response Rate Limiting (RRL), as deployed by root operators.

Verisign reported that RRL identified duplicated queries and dropped
about 60 % of responses during the events (paper section 2.3).  RRL
tracks (source, qname) tuples over a sliding window and suppresses
responses beyond a per-tuple rate; a configurable "slip" lets every
n-th suppressed response through as a truncated reply.

Two interfaces are provided:

* :class:`ResponseRateLimiter` -- a packet-level limiter for
  fine-grained simulation and testing.
* :func:`suppression_fraction` -- an analytic shortcut used by the
  day-granularity RSSAC-002 collector, giving the fraction of responses
  suppressed for a traffic mix with a given duplicate ratio.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field


class RrlAction(enum.Enum):
    """What the limiter decided for one response."""

    SEND = "send"
    DROP = "drop"
    SLIP = "slip"  # send a truncated response instead of dropping


@dataclass(slots=True)
class _TupleState:
    """Sliding-window state for one (source, qname) tuple."""

    timestamps: deque[float] = field(default_factory=deque)
    suppressed_since_slip: int = 0


class ResponseRateLimiter:
    """Per-(source, qname) response rate limiter.

    Parameters
    ----------
    responses_per_second:
        Allowed responses per tuple per second (BIND's default is 5~ish;
        root operators tune this down for attack traffic).
    window_seconds:
        Length of the sliding accounting window.
    slip:
        Every *slip*-th suppressed response is sent truncated instead of
        dropped (0 disables slip entirely).
    """

    def __init__(
        self,
        responses_per_second: float = 5.0,
        window_seconds: float = 15.0,
        slip: int = 2,
    ) -> None:
        if responses_per_second <= 0:
            raise ValueError("responses_per_second must be positive")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if slip < 0:
            raise ValueError("slip must be non-negative")
        self.responses_per_second = responses_per_second
        self.window_seconds = window_seconds
        self.slip = slip
        self._states: dict[tuple[str, str], _TupleState] = {}
        self.sent = 0
        self.dropped = 0
        self.slipped = 0

    def account(self, source: str, qname: str, now: float) -> RrlAction:
        """Account one response and return the limiter's decision."""
        key = (source, qname)
        state = self._states.get(key)
        if state is None:
            state = _TupleState()
            self._states[key] = state
        horizon = now - self.window_seconds
        while state.timestamps and state.timestamps[0] <= horizon:
            state.timestamps.popleft()
        budget = self.responses_per_second * self.window_seconds
        if len(state.timestamps) < budget:
            state.timestamps.append(now)
            self.sent += 1
            return RrlAction.SEND
        state.suppressed_since_slip += 1
        if self.slip and state.suppressed_since_slip >= self.slip:
            state.suppressed_since_slip = 0
            self.slipped += 1
            return RrlAction.SLIP
        self.dropped += 1
        return RrlAction.DROP

    @property
    def suppression_ratio(self) -> float:
        """Fraction of accounted responses that were not sent in full."""
        total = self.sent + self.dropped + self.slipped
        if total == 0:
            return 0.0
        return (self.dropped + self.slipped) / total


def suppression_fraction(
    duplicate_ratio: float, rrl_effectiveness: float = 0.9
) -> float:
    """Analytic response-suppression fraction for a traffic mix.

    *duplicate_ratio* is the fraction of queries that repeat a
    (source, qname) tuple beyond the allowed rate -- for the 2015 events
    the top 200 sources sent 68 % of queries with fixed names, so the
    duplicate ratio is high.  *rrl_effectiveness* is the fraction of
    those duplicates RRL actually catches.  Verisign reported ~60 %
    response suppression overall (section 2.3); with the event's
    duplicate ratio this calls for effectiveness near 0.9.
    """
    if not 0.0 <= duplicate_ratio <= 1.0:
        raise ValueError("duplicate_ratio must be within [0, 1]")
    if not 0.0 <= rrl_effectiveness <= 1.0:
        raise ValueError("rrl_effectiveness must be within [0, 1]")
    return duplicate_ratio * rrl_effectiveness
