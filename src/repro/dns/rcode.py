"""DNS constants: response codes, opcodes, classes, and record types.

Only the subset exercised by the reproduction is defined: the root
letters answer ordinary IN queries plus CHAOS TXT diagnostic queries
(paper section 2.1), and stressed servers surface SERVFAIL/REFUSED
(the "response error code" outcomes of section 2.4.1).
"""

from __future__ import annotations

import enum


class Rcode(enum.IntEnum):
    """Response codes (RFC 1035 and friends)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


class Opcode(enum.IntEnum):
    """Query opcodes; the reproduction only issues standard queries."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2


class QClass(enum.IntEnum):
    """Query classes; CHAOS (CH) carries the diagnostic queries."""

    IN = 1
    CH = 3
    ANY = 255


class QType(enum.IntEnum):
    """Record types used in the reproduction."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    TXT = 16
    AAAA = 28
    ANY = 255


#: The query names the attack used (paper section 2.3).
ATTACK_QNAME_NOV30 = "www.336901.com."
ATTACK_QNAME_DEC1 = "www.916yy.com."

#: Diagnostic names a CHAOS TXT query may carry (RFC 4892).
CHAOS_HOSTNAME_BIND = "hostname.bind."
CHAOS_ID_SERVER = "id.server."
