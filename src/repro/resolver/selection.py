"""Authority (root letter) selection strategies for resolvers.

Resolvers choose which of the thirteen letters to query.  Production
implementations keep a smoothed RTT per server and prefer the fastest
while still exploring (Yu et al., "Authority Server Selection in DNS
Caching Resolvers" -- the paper's reference [63]); failures are
penalised so traffic drains away from unresponsive letters, which is
the mechanism behind the paper's "letter flips" (section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class Selector:
    """Interface: pick a letter, learn from the outcome."""

    def pick(self, exclude: set[str], rng: np.random.Generator) -> str:
        raise NotImplementedError

    def update(self, letter: str, rtt_ms: float) -> None:
        """Record a successful query."""

    def penalize(self, letter: str) -> None:
        """Record a timeout."""


@dataclass(slots=True)
class SrttSelector(Selector):
    """BIND-style smoothed-RTT selection with decay-driven exploration.

    The chosen letter's SRTT is updated towards the measured RTT; all
    other letters decay slightly so they are re-tried eventually; a
    timeout multiplies the letter's SRTT by a penalty factor.
    """

    letters: tuple[str, ...]
    alpha: float = 0.3
    decay: float = 0.98
    timeout_penalty_ms: float = 2000.0
    initial_ms: float = 100.0
    srtt: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.letters:
            raise ValueError("need at least one letter")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be within (0, 1]")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be within (0, 1]")
        for letter in self.letters:
            self.srtt.setdefault(letter, self.initial_ms)

    def pick(self, exclude: set[str], rng: np.random.Generator) -> str:
        candidates = [L for L in self.letters if L not in exclude]
        if not candidates:
            raise ValueError("every letter excluded")
        return min(candidates, key=lambda L: (self.srtt[L], L))

    def update(self, letter: str, rtt_ms: float) -> None:
        if letter not in self.srtt:
            raise KeyError(f"unknown letter {letter!r}")
        self.srtt[letter] = (
            (1.0 - self.alpha) * self.srtt[letter] + self.alpha * rtt_ms
        )
        for other in self.letters:
            if other != letter:
                self.srtt[other] *= self.decay

    def penalize(self, letter: str) -> None:
        if letter not in self.srtt:
            raise KeyError(f"unknown letter {letter!r}")
        self.srtt[letter] = (
            (1.0 - self.alpha) * self.srtt[letter]
            + self.alpha * self.timeout_penalty_ms
        )


@dataclass(slots=True)
class UniformSelector(Selector):
    """Pick uniformly at random; the no-memory baseline."""

    letters: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.letters:
            raise ValueError("need at least one letter")

    def pick(self, exclude: set[str], rng: np.random.Generator) -> str:
        candidates = [L for L in self.letters if L not in exclude]
        if not candidates:
            raise ValueError("every letter excluded")
        return candidates[int(rng.integers(len(candidates)))]
