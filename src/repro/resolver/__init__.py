"""Recursive resolvers: the redundancy layer above the root letters."""

from .cache import TtlCache
from .experiment import WholeRootConfig, WholeRootOutcome, run_whole_root
from .resolver import (
    Outcome,
    RecursiveResolver,
    Resolution,
    ResolverConfig,
)
from .rootview import QUERY_TIMEOUT_MS, RootSystemView
from .selection import Selector, SrttSelector, UniformSelector

__all__ = [
    "Outcome",
    "QUERY_TIMEOUT_MS",
    "RecursiveResolver",
    "Resolution",
    "ResolverConfig",
    "RootSystemView",
    "Selector",
    "SrttSelector",
    "TtlCache",
    "UniformSelector",
    "WholeRootConfig",
    "WholeRootOutcome",
    "run_whole_root",
]
