"""TTL cache for delegations learned from the root.

Top-level delegations carry long TTLs (commonly one to two days), so
recursive resolvers rarely need the root at all -- the first layer of
the redundancy that kept end users unaware of the 2015 events (paper
sections 2.3 and 3.2.2).
"""

from __future__ import annotations


class TtlCache:
    """A name -> expiry cache with explicit time (no wall clock)."""

    def __init__(self) -> None:
        self._expiry: dict[str, float] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: str, now: float) -> bool:
        """Whether *name* is cached and fresh at *now* (counts stats)."""
        expiry = self._expiry.get(name)
        if expiry is not None and expiry > now:
            self.hits += 1
            return True
        if expiry is not None:
            del self._expiry[name]
        self.misses += 1
        return False

    def put(self, name: str, now: float, ttl: float) -> None:
        """Cache *name* until ``now + ttl``."""
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self._expiry[name] = now + ttl

    def flush(self) -> None:
        """Drop everything (a resolver restart)."""
        self._expiry.clear()

    def __len__(self) -> int:
        return len(self._expiry)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
