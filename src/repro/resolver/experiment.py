"""The whole-root experiment: did end users notice the attack?

The paper deliberately scopes itself to individual anycast services
and leaves "overall responsiveness of the Root DNS" to future work
(sections 3.2.2, 5), while observing the redundancy at work: caching,
retries across letters, and the query-rate/unique-IP bumps at
unattacked L-Root.  This experiment closes that loop: a population of
recursive resolvers rides through the simulated events, and we
measure what their *users* experienced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.results import Series, SeriesBundle
from ..scenario.engine import ScenarioResult
from .resolver import Outcome, RecursiveResolver, ResolverConfig
from .rootview import RootSystemView
from .selection import SrttSelector, UniformSelector


@dataclass(frozen=True, slots=True)
class WholeRootConfig:
    """Population and workload knobs."""

    n_resolvers: int = 150
    queries_per_resolver_per_bin: float = 2.0
    n_tlds: int = 40
    tld_zipf_alpha: float = 1.2
    selection: str = "srtt"  # or "uniform"
    resolver: ResolverConfig = field(default_factory=ResolverConfig)

    def __post_init__(self) -> None:
        if self.n_resolvers < 1:
            raise ValueError("need at least one resolver")
        if self.queries_per_resolver_per_bin <= 0:
            raise ValueError("query rate must be positive")
        if self.n_tlds < 1:
            raise ValueError("need at least one TLD")
        if self.selection not in ("srtt", "uniform"):
            raise ValueError(f"unknown selection {self.selection!r}")


@dataclass(slots=True)
class WholeRootOutcome:
    """Per-bin aggregates of the user experience."""

    hours: np.ndarray
    user_queries: np.ndarray
    cache_hits: np.ndarray
    root_lookups: np.ndarray
    failures: np.ndarray
    total_lookup_latency_ms: np.ndarray
    letter_queries: dict[str, np.ndarray]
    letter_successes: dict[str, np.ndarray]

    @property
    def failure_fraction(self) -> np.ndarray:
        """Failed user queries over all user queries, per bin."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                self.user_queries > 0,
                self.failures / self.user_queries,
                0.0,
            )

    @property
    def mean_lookup_latency_ms(self) -> np.ndarray:
        """Mean root-lookup latency per bin (NaN when no lookups)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                self.root_lookups > 0,
                self.total_lookup_latency_ms / self.root_lookups,
                np.nan,
            )

    def overall_failure_fraction(self) -> float:
        total = self.user_queries.sum()
        return float(self.failures.sum() / total) if total else 0.0

    def letter_share_series(self) -> SeriesBundle:
        """Per-letter share of root queries (the letter-flip view)."""
        totals = sum(self.letter_queries.values())
        series = []
        for letter in sorted(self.letter_queries):
            with np.errstate(divide="ignore", invalid="ignore"):
                share = np.where(
                    totals > 0, self.letter_queries[letter] / totals, 0.0
                )
            series.append(
                Series(name=letter, hours=self.hours, values=share)
            )
        return SeriesBundle(
            title="Root-query share per letter (resolver view)",
            series=tuple(series),
        )


def run_whole_root(
    result: ScenarioResult,
    config: WholeRootConfig,
    rng: np.random.Generator,
) -> WholeRootOutcome:
    """Drive a resolver population through the simulated window."""
    view = RootSystemView(result)
    letters = tuple(result.letters)
    grid = result.grid

    resolvers = []
    for _ in range(config.n_resolvers):
        stub = int(rng.integers(view.n_stubs))
        if config.selection == "srtt":
            selector = SrttSelector(letters=letters)
        else:
            selector = UniformSelector(letters=letters)
        resolvers.append(
            RecursiveResolver(stub, view, selector, config.resolver, rng)
        )

    # Zipf-popular TLDs.
    ranks = np.arange(1, config.n_tlds + 1, dtype=np.float64)
    popularity = ranks**-config.tld_zipf_alpha
    popularity /= popularity.sum()
    tld_names = [f"tld{i:03d}" for i in range(config.n_tlds)]

    n_bins = grid.n_bins
    outcome = WholeRootOutcome(
        hours=grid.hours(),
        user_queries=np.zeros(n_bins),
        cache_hits=np.zeros(n_bins),
        root_lookups=np.zeros(n_bins),
        failures=np.zeros(n_bins),
        total_lookup_latency_ms=np.zeros(n_bins),
        letter_queries={L: np.zeros(n_bins) for L in letters},
        letter_successes={L: np.zeros(n_bins) for L in letters},
    )

    for b in range(n_bins):
        bin_start = grid.bin_start(b)
        for resolver in resolvers:
            n_queries = rng.poisson(config.queries_per_resolver_per_bin)
            if n_queries == 0:
                continue
            offsets = rng.uniform(0, grid.bin_seconds, n_queries)
            tlds = rng.choice(
                config.n_tlds, size=n_queries, p=popularity
            )
            for offset, tld_idx in zip(np.sort(offsets), tlds):
                resolution = resolver.resolve(
                    tld_names[int(tld_idx)], bin_start + float(offset)
                )
                outcome.user_queries[b] += 1
                if resolution.outcome is Outcome.CACHE_HIT:
                    outcome.cache_hits[b] += 1
                    continue
                outcome.root_lookups[b] += 1
                outcome.total_lookup_latency_ms[b] += (
                    resolution.latency_ms
                )
                for letter in resolution.letters_tried:
                    outcome.letter_queries[letter][b] += 1
                if resolution.outcome is Outcome.FAILED:
                    outcome.failures[b] += 1
                else:
                    outcome.letter_successes[
                        resolution.letters_tried[-1]
                    ][b] += 1

    return outcome
