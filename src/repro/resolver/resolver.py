"""A recursive resolver: cache, letter selection, retry.

The DNS protocol's redundancy lives here (paper sections 2.3, 3.2.2,
3.4.1): a resolver that gets no answer from one letter retries at
another, and long-TTL delegations mean most user queries never reach
the root at all.  This is why "there were no known reports of
end-user visible errors" despite letters losing up to ~95 % of
queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .cache import TtlCache
from .rootview import RootSystemView
from .selection import Selector


class Outcome(enum.Enum):
    """How one user query was satisfied."""

    CACHE_HIT = "cache_hit"
    ROOT_OK = "root_ok"
    FAILED = "failed"


@dataclass(frozen=True, slots=True)
class Resolution:
    """The result of resolving one user query."""

    outcome: Outcome
    latency_ms: float
    attempts: int
    letters_tried: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError("latency cannot be negative")


@dataclass(frozen=True, slots=True)
class ResolverConfig:
    """Behavioural knobs of one resolver."""

    max_attempts: int = 4
    delegation_ttl_s: float = 172_800.0  # two days, like .com in 2015

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.delegation_ttl_s <= 0:
            raise ValueError("ttl must be positive")


class RecursiveResolver:
    """One resolver attached to a stub AS."""

    def __init__(
        self,
        stub_index: int,
        view: RootSystemView,
        selector: Selector,
        config: ResolverConfig,
        rng: np.random.Generator,
    ) -> None:
        self.stub_index = stub_index
        self.view = view
        self.selector = selector
        self.config = config
        self.rng = rng
        self.cache = TtlCache()

    def resolve(self, tld: str, timestamp: float) -> Resolution:
        """Resolve one user query for a name under *tld*."""
        if self.cache.get(tld, timestamp):
            return Resolution(
                outcome=Outcome.CACHE_HIT,
                latency_ms=0.0,
                attempts=0,
                letters_tried=(),
            )
        latency = 0.0
        tried: list[str] = []
        for _ in range(self.config.max_attempts):
            letter = self.selector.pick(set(tried), self.rng)
            tried.append(letter)
            ok, rtt = self.view.query(
                letter, self.stub_index, timestamp, self.rng
            )
            latency += rtt
            if ok:
                self.selector.update(letter, rtt)
                self.cache.put(
                    tld, timestamp, self.config.delegation_ttl_s
                )
                return Resolution(
                    outcome=Outcome.ROOT_OK,
                    latency_ms=latency,
                    attempts=len(tried),
                    letters_tried=tuple(tried),
                )
            self.selector.penalize(letter)
        return Resolution(
            outcome=Outcome.FAILED,
            latency_ms=latency,
            attempts=len(tried),
            letters_tried=tuple(tried),
        )
