"""A resolver's-eye view of the simulated root system.

Adapts a :class:`~repro.scenario.engine.ScenarioResult` into a query
interface: "stub AS *i* asks letter *L* at time *t*" returns success
and RTT, derived from the recorded per-bin catchments, per-site loss,
and queueing delay -- the same ground truth the measurement layer
sampled, now driving client traffic.
"""

from __future__ import annotations

import numpy as np

from ..scenario.engine import ScenarioResult
from ..util.geo import haversine_km_vec, propagation_rtt_ms_vec

#: RTT charged for a query that gets no answer (client timeout).
QUERY_TIMEOUT_MS = 1000.0


class RootSystemView:
    """Query interface over a completed scenario."""

    def __init__(self, result: ScenarioResult) -> None:
        self.result = result
        self.grid = result.grid
        self.letters = list(result.letters)
        self._truth = result.truth
        stub_nodes = [
            result.topology.graph.node(a) for a in result.topology.stub_asns
        ]
        stub_lats = np.array([n.location.lat for n in stub_nodes])
        stub_lons = np.array([n.location.lon for n in stub_nodes])
        self.n_stubs = len(stub_nodes)
        # Pre-compute stub-to-site base RTTs per letter.
        self._base_rtt: dict[str, np.ndarray] = {}
        for letter in self.letters:
            dep = result.deployments[letter]
            site_lats = np.array(
                [s.location.lat for s in dep.spec.sites]
            )
            site_lons = np.array(
                [s.location.lon for s in dep.spec.sites]
            )
            distances = haversine_km_vec(
                stub_lats[:, None], stub_lons[:, None],
                site_lats[None, :], site_lons[None, :],
            )
            self._base_rtt[letter] = propagation_rtt_ms_vec(distances)

    def query(
        self,
        letter: str,
        stub_index: int,
        timestamp: float,
        rng: np.random.Generator,
    ) -> tuple[bool, float]:
        """One root query; returns ``(success, rtt_ms)``.

        Failures are charged the client timeout.
        """
        if letter not in self._truth:
            raise KeyError(f"letter {letter!r} not simulated")
        if not 0 <= stub_index < self.n_stubs:
            raise IndexError(f"stub index {stub_index} out of range")
        truth = self._truth[letter]
        bin_index = self.grid.bin_index(timestamp)
        site = truth.stub_site(bin_index, stub_index)
        if site < 0:
            return False, QUERY_TIMEOUT_MS
        loss = float(truth.loss[bin_index, site])
        if rng.random() < loss:
            return False, QUERY_TIMEOUT_MS
        rtt = (
            float(self._base_rtt[letter][stub_index, site])
            + float(truth.delay_ms[bin_index, site])
        )
        return True, min(rtt, QUERY_TIMEOUT_MS)
