"""Fault injection: incidental failure on top of the scripted events.

Declare faults on :class:`~repro.scenario.config.ScenarioConfig` via a
:class:`FaultPlan`; the engine applies them through
:class:`~repro.faults.runtime.FaultRuntime` and reports what degraded
via :class:`~repro.faults.quality.DataQuality` on the result.
"""

from .plan import (
    BgpSessionReset,
    ControllerOutage,
    FaultPlan,
    FaultSpec,
    PeerChurn,
    RssacOutage,
    SiteFailure,
    VpDropout,
)
from .quality import (
    CELL_FAILED,
    DataQuality,
    QualityFlag,
    cell_failed_flag,
    probe_gap_flags,
)
from .runtime import FaultRuntime

__all__ = [
    "BgpSessionReset",
    "CELL_FAILED",
    "ControllerOutage",
    "DataQuality",
    "cell_failed_flag",
    "FaultPlan",
    "FaultRuntime",
    "FaultSpec",
    "PeerChurn",
    "QualityFlag",
    "RssacOutage",
    "SiteFailure",
    "VpDropout",
    "probe_gap_flags",
]
