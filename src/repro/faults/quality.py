"""Data-quality annotations for degraded observations and analyses.

The 2015 inputs the paper works from were full of *incidental* loss:
Atlas probes vanished mid-event, only five letters published
RSSAC-002 data, and BGPmon peers came and went.  When the simulated
substrate reproduces those gaps (``repro.faults``), the analyses must
keep working on what remains -- and say so.  This module defines the
vocabulary for that: a :class:`QualityFlag` names one degraded slice
of data (which metric, which letter, which bins, and why), and a
:class:`DataQuality` report bundles every flag attached to a scenario
run or an analysis result.

Conventions:

* an empty :class:`DataQuality` (the default everywhere) means "no
  known degradation" -- full-fidelity runs carry no flags at all;
* ``metric`` names the data family or analysis: ``"atlas"``,
  ``"rssac"``, ``"bgpmon"``, ``"truth"``, or an analysis name like
  ``"event_size"``;
* ``bins`` is an inclusive ``(first, last)`` span on the scenario's
  :class:`~repro.util.timegrid.TimeGrid`, or ``None`` when the
  degradation is not bin-scoped (e.g. a whole missing report day).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

if TYPE_CHECKING:
    from ..datasets.observations import AtlasDataset

#: Metric name carried by sweep-level quarantine flags: a cell that
#: exhausted its retries is excluded from its point's summary and
#: marked with one of these instead of aborting the whole sweep.
CELL_FAILED = "cell-failed"


@dataclass(frozen=True, slots=True)
class QualityFlag:
    """One degraded slice of data: what is affected, where, and why."""

    metric: str
    detail: str
    letter: str | None = None
    bins: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if not self.metric:
            raise ValueError("a quality flag needs a metric name")
        if not self.detail:
            raise ValueError("a quality flag needs a detail message")
        if self.bins is not None:
            first, last = self.bins
            if first < 0 or last < first:
                raise ValueError(f"invalid bin span {self.bins}")

    def __str__(self) -> str:
        scope = f" {self.letter}" if self.letter else ""
        span = (
            f" [bins {self.bins[0]}-{self.bins[1]}]"
            if self.bins is not None
            else ""
        )
        return f"[{self.metric}]{scope}{span}: {self.detail}"


@dataclass(frozen=True, slots=True)
class DataQuality:
    """Every known degradation of one dataset or analysis result."""

    flags: tuple[QualityFlag, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.flags)

    def __len__(self) -> int:
        return len(self.flags)

    def __iter__(self) -> Iterator[QualityFlag]:
        return iter(self.flags)

    @property
    def degraded(self) -> bool:
        """Whether any data was lost or partial."""
        return bool(self.flags)

    def for_metric(self, metric: str) -> tuple[QualityFlag, ...]:
        """All flags attached to one metric/data family."""
        return tuple(f for f in self.flags if f.metric == metric)

    def for_letter(self, letter: str) -> tuple[QualityFlag, ...]:
        """All flags scoped to one letter (letter-less flags excluded)."""
        return tuple(f for f in self.flags if f.letter == letter)

    def letters(self) -> frozenset[str]:
        """Every letter named by at least one flag."""
        return frozenset(
            f.letter for f in self.flags if f.letter is not None
        )

    def metrics(self) -> frozenset[str]:
        """Every metric named by at least one flag."""
        return frozenset(f.metric for f in self.flags)

    def merged(self, *others: "DataQuality") -> "DataQuality":
        """This report plus every flag of *others* (duplicates kept)."""
        flags = list(self.flags)
        for other in others:
            flags.extend(other.flags)
        return DataQuality(flags=tuple(flags))

    def union(self, *others: "DataQuality") -> "DataQuality":
        """Deduplicating merge: each distinct flag kept once.

        Order is preserved (first occurrence wins), so the result is
        deterministic for a deterministic input order.  This is the
        merge the sweep aggregator uses when folding replicate runs of
        one cell into a summary: a fault that flags every replicate
        identically appears once, not once per seed, while any
        seed-dependent flag (e.g. differing gap spans) is retained
        verbatim.
        """
        seen: dict[QualityFlag, None] = {}
        for report in (self, *others):
            for flag in report.flags:
                seen.setdefault(flag, None)
        return DataQuality(flags=tuple(seen))

    def describe(self) -> str:
        """Human-readable one-line-per-flag rendering."""
        if not self.flags:
            return "data quality: full fidelity (no flags)"
        lines = [f"data quality: {len(self.flags)} flag(s)"]
        lines.extend(f"  ! {flag}" for flag in self.flags)
        return "\n".join(lines)


def cell_failed_flag(index: int, seed: int, reason: str) -> QualityFlag:
    """The flag a quarantined sweep cell leaves on its point summary.

    *reason* is the runner's failure description (already including
    the attempt count); the flag records which replicate is missing so
    a partially-folded summary is never mistaken for a full one.
    """
    return QualityFlag(
        metric=CELL_FAILED,
        detail=(
            f"cell {index} (seed {seed}) {reason}; "
            "replicate excluded from summary"
        ),
    )


def probe_gap_flags(
    dataset: AtlasDataset, letters: Iterable[str], metric: str
) -> tuple[QualityFlag, ...]:
    """Flags for bins in which no VP probed a letter at all.

    Whole-fleet measurement gaps (controller outages, mass probe
    dropout) surface as all-``RESP_NOT_PROBED`` bins; analyses over
    such a dataset are only partial, and flag it with these.
    """
    from ..datasets.observations import RESP_NOT_PROBED

    flags: list[QualityFlag] = []
    for letter in letters:
        obs = dataset.letter(letter)
        probed = (obs.site_idx != RESP_NOT_PROBED).sum(axis=1)
        gaps = np.flatnonzero(probed == 0)
        if gaps.size == 0:
            continue
        flags.append(
            QualityFlag(
                metric=metric,
                letter=letter,
                detail=(
                    f"{gaps.size} bin(s) with no probing VPs; "
                    "series is partial"
                ),
                bins=(int(gaps[0]), int(gaps[-1])),
            )
        )
    return tuple(flags)
