"""Typed fault specifications: what breaks, when, and how badly.

The November 2015 measurements were taken by infrastructure that was
itself collateral damage: Atlas probes vanished mid-event, RSSAC-002
covered only 5 of 13 letters, and BGPmon peers came and went.  A
:class:`FaultPlan` declares such *incidental* failures on top of a
scenario -- one typed spec per fault, each with a start time, a
duration, and a scope -- and the engine's fault runtime
(:mod:`repro.faults.runtime`) perturbs every simulated substrate
accordingly:

* :class:`VpDropout` / :class:`ControllerOutage` -- Atlas VPs that
  stop reporting for a window (probe attrition, paper section 2.1) or
  a whole-fleet measurement outage;
* :class:`SiteFailure` -- unscheduled hardware failure at one site:
  capacity collapses while BGP keeps attracting traffic (the anycast
  black-hole failure mode);
* :class:`BgpSessionReset` -- a session reset at a site's host AS:
  the announcement flaps down and, after route-flap damping clears,
  comes back;
* :class:`PeerChurn` -- BGPmon collector peers down for a window;
* :class:`RssacOutage` -- missing RSSAC-002 report days for a letter.

All times are POSIX seconds on the scenario's
:class:`~repro.util.timegrid.TimeGrid`; randomized scopes (which VPs
drop, which peers churn) are drawn from the scenario's seeded
``RngFactory`` stream, so the same seed and plan reproduce the same
faults bit for bit.  An *empty* plan is free: the engine skips the
fault machinery entirely and produces outputs bit-identical to a
fault-free build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from ..util.timegrid import Interval


def _check_window(start: int, duration_s: int) -> None:
    if duration_s <= 0:
        raise ValueError(f"fault duration must be positive, got {duration_s}")


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be within (0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class VpDropout:
    """A random fraction of Atlas VPs goes silent for a window."""

    start: int
    duration_s: int
    fraction: float = 0.1

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration_s)
        _check_fraction("fraction", self.fraction)

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.start + self.duration_s)


@dataclass(frozen=True, slots=True)
class ControllerOutage:
    """The whole measurement fleet stops reporting for a window."""

    start: int
    duration_s: int

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration_s)

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.start + self.duration_s)


@dataclass(frozen=True, slots=True)
class SiteFailure:
    """Unscheduled hardware failure at one site of one letter.

    *severity* is the fraction of capacity lost; the default 1.0 is a
    dead site that BGP still routes to (queries black-hole), which is
    how anycast hardware failures actually look from outside.
    """

    letter: str
    site: str
    start: int
    duration_s: int
    severity: float = 1.0

    def __post_init__(self) -> None:
        if not self.letter or not self.site:
            raise ValueError("site failure needs a letter and a site code")
        _check_window(self.start, self.duration_s)
        _check_fraction("severity", self.severity)

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.start + self.duration_s)


@dataclass(frozen=True, slots=True)
class BgpSessionReset:
    """A BGP session reset at one site's host AS.

    The site's announcement is withdrawn for *duration_s* seconds --
    the reset itself plus any route-flap damping suppression -- and
    re-announced afterwards.  Both transitions land in the prefix's
    change log, so BGPmon collectors observe the churn.
    """

    letter: str
    site: str
    start: int
    duration_s: int = 600

    def __post_init__(self) -> None:
        if not self.letter or not self.site:
            raise ValueError("session reset needs a letter and a site code")
        _check_window(self.start, self.duration_s)

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.start + self.duration_s)


@dataclass(frozen=True, slots=True)
class PeerChurn:
    """A random fraction of BGPmon collector peers down for a window."""

    start: int
    duration_s: int
    fraction: float = 0.2

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration_s)
        _check_fraction("fraction", self.fraction)

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.start + self.duration_s)


@dataclass(frozen=True, slots=True)
class RssacOutage:
    """One letter's RSSAC-002 reports missing for a window.

    Every report day overlapping the window is dropped from the
    letter's published series, mirroring the best-effort coverage of
    the real RSSAC-002 data (5 of 13 letters at event time).
    """

    letter: str
    start: int
    duration_s: int = 86_400

    def __post_init__(self) -> None:
        if not self.letter:
            raise ValueError("RSSAC outage needs a letter")
        _check_window(self.start, self.duration_s)

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.start + self.duration_s)


FaultSpec = Union[
    VpDropout,
    ControllerOutage,
    SiteFailure,
    BgpSessionReset,
    PeerChurn,
    RssacOutage,
]

_SPEC_TYPES = (
    VpDropout,
    ControllerOutage,
    SiteFailure,
    BgpSessionReset,
    PeerChurn,
    RssacOutage,
)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An ordered bundle of fault specs declared on a scenario.

    Order matters for reproducibility: randomized fault scopes are
    drawn from the seeded fault stream in declaration order.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, _SPEC_TYPES):
                raise TypeError(
                    f"not a fault spec: {spec!r} "
                    f"(expected one of {[t.__name__ for t in _SPEC_TYPES]})"
                )

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def of_type(self, *types: type) -> tuple[FaultSpec, ...]:
        """The specs that are instances of any of *types*, in order."""
        return tuple(s for s in self.specs if isinstance(s, types))

    def letters(self) -> frozenset[str]:
        """Every letter named by a letter-scoped spec."""
        return frozenset(
            s.letter for s in self.specs if hasattr(s, "letter")
        )
