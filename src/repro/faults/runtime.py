"""Applies a :class:`~repro.faults.plan.FaultPlan` to one engine run.

The runtime is built once per ``simulate()`` call, after the substrate
(topology, deployments, VPs, collectors) exists but before the bin
loop starts.  It pre-resolves every spec against the scenario -- which
bins each fault covers, which VPs drop, which peers churn -- drawing
any randomized scope from the dedicated seeded ``"faults"`` stream so
the same seed and plan reproduce the same faults exactly.  The engine
then consults it at four well-defined points:

* :meth:`apply_routing` at the top of each bin (session resets flap
  announcements through the normal :class:`AnycastPrefix` machinery,
  so epoch caching and BGPmon observation keep working unchanged);
* :meth:`capacity` when evaluating each letter's overload (hardware
  failures scale the site capacity vector for the covered bins);
* :meth:`mask_atlas` after probing finishes (VP dropout and controller
  outages blank the affected ``(bin, VP)`` cells post-hoc, leaving the
  batched sampling pass and its RNG draw order untouched);
* :meth:`filter_rssac` when packaging reports (outage days vanish from
  the published series).

Everything the runtime perturbs is recorded as
:class:`~repro.faults.quality.QualityFlag` entries; :meth:`quality`
returns the full :class:`~repro.faults.quality.DataQuality` report the
:class:`~repro.scenario.engine.ScenarioResult` carries.
"""

from __future__ import annotations

import datetime as _dt

from typing import TYPE_CHECKING

import numpy as np

from ..datasets.observations import RESP_NOT_PROBED
from ..util.timegrid import Interval, TimeGrid
from .plan import (
    BgpSessionReset,
    ControllerOutage,
    FaultPlan,
    PeerChurn,
    RssacOutage,
    SiteFailure,
    VpDropout,
)
from .quality import DataQuality, QualityFlag

if TYPE_CHECKING:
    from ..bgpmon.collector import BgpCollectors
    from ..datasets.observations import AtlasDataset
    from ..rootdns.deployment import LetterDeployment
    from ..rssac.reports import DailyReport

#: Residual capacity fraction of a fully failed site -- keeps the
#: overload model's positive-capacity invariant while driving loss to
#: effectively 1 (a black-holed site).
FAILED_CAPACITY_FLOOR = 1e-6


def _day_interval(date: str) -> Interval:
    """The UTC day covered by one ``YYYY-MM-DD`` report date."""
    day = _dt.datetime.strptime(date, "%Y-%m-%d").replace(
        tzinfo=_dt.timezone.utc
    )
    start = int(day.timestamp())
    return Interval(start, start + 86_400)


def _bin_span(bins: np.ndarray) -> tuple[int, int] | None:
    if bins.size == 0:
        return None
    return int(bins[0]), int(bins[-1])


class FaultRuntime:
    """One plan resolved against one scenario's substrate."""

    def __init__(
        self,
        plan: FaultPlan,
        grid: TimeGrid,
        deployments: dict[str, LetterDeployment],
        collectors: BgpCollectors,
        n_vps: int,
        rng: np.random.Generator,
    ) -> None:
        self.plan = plan
        self.grid = grid
        self.deployments = deployments
        self._flags: list[QualityFlag] = []

        # Per-(letter, bin) capacity scale vectors (site order).
        self._cap_scale: dict[tuple[str, int], np.ndarray] = {}
        # Session resets keyed by the bin they begin/end in.
        self._reset_begin: dict[int, list[tuple[str, str]]] = {}
        self._reset_end: dict[int, list[tuple[str, str]]] = {}
        self._reset_down: set[tuple[str, str]] = set()
        # Atlas masks: (bin indices, VP indices or None for the fleet).
        self._atlas_masks: list[tuple[np.ndarray, np.ndarray | None]] = []
        #: Collector-peer outages, consumed by
        #: :meth:`BgpCollectors.route_changes_per_bin`.
        self.peer_outages: tuple[tuple[Interval, frozenset[int]], ...] = ()

        peer_outages: list[tuple[Interval, frozenset[int]]] = []
        for spec in plan:
            if isinstance(spec, SiteFailure):
                self._resolve_site_failure(spec)
            elif isinstance(spec, BgpSessionReset):
                self._resolve_reset(spec)
            elif isinstance(spec, VpDropout):
                n_down = max(1, int(round(spec.fraction * n_vps)))
                vp_idx = np.sort(
                    rng.choice(n_vps, size=min(n_down, n_vps), replace=False)
                )
                self._resolve_atlas_mask(spec, vp_idx)
            elif isinstance(spec, ControllerOutage):
                self._resolve_atlas_mask(spec, None)
            elif isinstance(spec, PeerChurn):
                n_down = max(
                    1, int(round(spec.fraction * len(collectors)))
                )
                down = rng.choice(
                    collectors.peer_asns,
                    size=min(n_down, len(collectors)),
                    replace=False,
                )
                peer_outages.append(
                    (spec.interval, frozenset(int(a) for a in down))
                )
                self._flags.append(
                    QualityFlag(
                        metric="bgpmon",
                        detail=(
                            f"{len(down)}/{len(collectors)} collector "
                            "peers down; route-change counts partial"
                        ),
                        bins=_bin_span(
                            grid.bins_overlapping(spec.interval)
                        ),
                    )
                )
            elif isinstance(spec, RssacOutage):
                self._check_letter(spec)
                # Flags are added per dropped report in filter_rssac,
                # once the concrete report days are known.
        self.peer_outages = tuple(peer_outages)

    def _check_letter(
        self, spec: SiteFailure | BgpSessionReset | RssacOutage
    ) -> None:
        if spec.letter not in self.deployments:
            raise ValueError(
                f"fault {spec!r} names letter {spec.letter!r}, which is "
                f"not simulated (have {sorted(self.deployments)})"
            )

    def _site_index(self, spec: SiteFailure | BgpSessionReset) -> int:
        self._check_letter(spec)
        dep = self.deployments[spec.letter]
        try:
            return dep.site_index[spec.site]
        except KeyError:
            raise ValueError(
                f"fault {spec!r} names site {spec.site!r}, which "
                f"{spec.letter}-Root does not operate "
                f"(have {dep.site_order})"
            ) from None

    def _resolve_site_failure(self, spec: SiteFailure) -> None:
        index = self._site_index(spec)
        dep = self.deployments[spec.letter]
        bins = self.grid.bins_overlapping(spec.interval)
        if bins.size == 0:
            return
        residual = max(1.0 - spec.severity, FAILED_CAPACITY_FLOOR)
        for b in bins:
            key = (spec.letter, int(b))
            scale = self._cap_scale.get(key)
            if scale is None:
                scale = np.ones(len(dep.site_order))
                self._cap_scale[key] = scale
            scale[index] = min(scale[index], residual)
        self._flags.append(
            QualityFlag(
                metric="truth",
                letter=spec.letter,
                detail=(
                    f"site {spec.site} hardware failure "
                    f"({spec.severity:.0%} capacity lost)"
                ),
                bins=_bin_span(bins),
            )
        )

    def _resolve_reset(self, spec: BgpSessionReset) -> None:
        self._site_index(spec)  # scope validation
        bins = self.grid.bins_overlapping(spec.interval)
        if bins.size == 0:
            return
        self._reset_begin.setdefault(int(bins[0]), []).append(
            (spec.letter, spec.site)
        )
        end_bin = int(
            np.ceil(
                (spec.interval.end - self.grid.start)
                / self.grid.bin_seconds
            )
        )
        if end_bin < self.grid.n_bins:
            self._reset_end.setdefault(end_bin, []).append(
                (spec.letter, spec.site)
            )
        self._flags.append(
            QualityFlag(
                metric="routing",
                letter=spec.letter,
                detail=(
                    f"site {spec.site} BGP session reset; announcement "
                    "flapped (incl. damping suppression)"
                ),
                bins=_bin_span(bins),
            )
        )

    def _resolve_atlas_mask(
        self,
        spec: VpDropout | ControllerOutage,
        vp_idx: np.ndarray | None,
    ) -> None:
        bins = self.grid.bins_overlapping(spec.interval)
        if bins.size == 0:
            return
        self._atlas_masks.append((bins, vp_idx))
        what = (
            "controller outage: no VP reported"
            if vp_idx is None
            else f"{vp_idx.size} VP(s) stopped reporting"
        )
        self._flags.append(
            QualityFlag(metric="atlas", detail=what, bins=_bin_span(bins))
        )

    # --- Engine hooks. -------------------------------------------------

    def disruptive_bins(self) -> frozenset[int]:
        """Bins where this runtime perturbs routing or capacity.

        The segment-batched engine (:mod:`repro.scenario.batch`) may
        only batch across bins where :meth:`apply_routing` is a no-op
        and :meth:`capacity` returns *base* unchanged; everything else
        must run through the per-bin reference path.  Atlas masking and
        RSSAC filtering act on packaged outputs after the loop, so
        their bins do not constrain batching.
        """
        bins = set(self._reset_begin) | set(self._reset_end)
        bins.update(b for (_, b) in self._cap_scale)
        return frozenset(bins)

    def apply_routing(self, bin_index: int, timestamp: float) -> None:
        """Flap announcements for session resets scheduled in this bin.

        Ends are processed before begins so back-to-back resets of the
        same site re-announce and immediately withdraw again.
        """
        for letter, site in self._reset_end.get(bin_index, ()):
            key = (letter, site)
            if key in self._reset_down:
                prefix = self.deployments[letter].prefix
                if not prefix.is_announced(site):
                    prefix.announce(site, timestamp)
                self._reset_down.discard(key)
        for letter, site in self._reset_begin.get(bin_index, ()):
            prefix = self.deployments[letter].prefix
            if prefix.is_announced(site):
                prefix.withdraw(site, timestamp)
                self._reset_down.add((letter, site))

    def capacity(
        self, letter: str, bin_index: int, base: np.ndarray
    ) -> np.ndarray:
        """The effective capacity vector for one letter-bin."""
        scale = self._cap_scale.get((letter, bin_index))
        return base if scale is None else base * scale

    def mask_atlas(self, atlas: AtlasDataset) -> None:
        """Blank the observation cells of dropped-out VPs, in place."""
        for bins, vp_idx in self._atlas_masks:
            for obs in atlas.letters.values():
                cells = (
                    (bins, slice(None))
                    if vp_idx is None
                    else np.ix_(bins, vp_idx)
                )
                obs.site_idx[cells] = RESP_NOT_PROBED
                obs.rtt_ms[cells] = np.nan
                obs.server[cells] = 0

    def filter_rssac(
        self, rssac: dict[str, tuple[DailyReport, ...]]
    ) -> dict[str, tuple[DailyReport, ...]]:
        """Drop report days covered by an RSSAC outage; flag each."""
        outages = self.plan.of_type(RssacOutage)
        if not outages:
            return rssac
        filtered: dict[str, tuple[DailyReport, ...]] = {}
        for letter, reports in rssac.items():
            kept: list[DailyReport] = []
            for report in reports:
                hit = any(
                    o.letter == letter
                    and _day_interval(report.date).overlaps(o.interval)
                    for o in outages
                )
                if hit:
                    self._flags.append(
                        QualityFlag(
                            metric="rssac",
                            letter=letter,
                            detail=f"report for {report.date} missing",
                        )
                    )
                else:
                    kept.append(report)
            filtered[letter] = tuple(kept)
        return filtered

    def quality(self) -> DataQuality:
        """The full degradation report for this run."""
        return DataQuality(flags=tuple(self._flags))
