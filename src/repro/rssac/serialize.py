"""RSSAC-002 YAML serialisation.

Real RSSAC-002 advisories are published as per-metric YAML documents
(traffic-volume, traffic-sizes, unique-sources) per letter-day.  This
module renders our :class:`~repro.rssac.reports.DailyReport` objects
in that shape and parses them back, so simulated reports can be
exchanged as files with the same structure operators publish.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import yaml

from .reports import DailyReport

#: Version label embedded in the documents.
RSSAC_VERSION = "rssac002v3"


def report_to_documents(report: DailyReport) -> list[dict]:
    """One letter-day as the per-metric YAML documents."""
    base = {
        "version": RSSAC_VERSION,
        "service": f"{report.letter.lower()}.root-servers.net",
        "start-period": f"{report.date}T00:00:00Z",
        "end-period": f"{report.date}T23:59:59Z",
    }
    # Plain Python scalars only: the reports often carry numpy floats.
    return [
        {
            **base,
            "metric": "traffic-volume",
            "dns-udp-queries-received-ipv4": float(report.queries),
            "dns-udp-responses-sent-ipv4": float(report.responses),
        },
        {
            **base,
            "metric": "traffic-sizes",
            "udp-request-sizes": {
                f"{b}-{b + 15}": float(c)
                for b, c in sorted(report.query_size_hist.items())
            },
            "udp-response-sizes": {
                f"{b}-{b + 15}": float(c)
                for b, c in sorted(report.response_size_hist.items())
            },
        },
        {
            **base,
            "metric": "unique-sources",
            "num-sources-ipv4": float(report.unique_sources),
        },
    ]


def documents_to_report(documents: Iterable[dict]) -> DailyReport:
    """Reassemble a :class:`DailyReport` from its YAML documents."""
    letter = None
    date = None
    queries = responses = unique = 0.0
    query_hist: dict[int, float] = {}
    response_hist: dict[int, float] = {}
    seen_metrics = set()
    for doc in documents:
        if doc.get("version") != RSSAC_VERSION:
            raise ValueError(f"unsupported version {doc.get('version')!r}")
        service = doc["service"]
        letter = service.split(".")[0].upper()
        date = doc["start-period"].split("T")[0]
        metric = doc["metric"]
        seen_metrics.add(metric)
        if metric == "traffic-volume":
            queries = float(doc["dns-udp-queries-received-ipv4"])
            responses = float(doc["dns-udp-responses-sent-ipv4"])
        elif metric == "traffic-sizes":
            query_hist = {
                int(k.split("-")[0]): float(v)
                for k, v in doc["udp-request-sizes"].items()
            }
            response_hist = {
                int(k.split("-")[0]): float(v)
                for k, v in doc["udp-response-sizes"].items()
            }
        elif metric == "unique-sources":
            unique = float(doc["num-sources-ipv4"])
        else:
            raise ValueError(f"unknown metric {metric!r}")
    missing = {"traffic-volume", "traffic-sizes",
               "unique-sources"} - seen_metrics
    if missing:
        raise ValueError(f"missing metrics: {sorted(missing)}")
    return DailyReport(
        letter=letter,
        date=date,
        queries=queries,
        responses=responses,
        unique_sources=unique,
        query_size_hist=query_hist,
        response_size_hist=response_hist,
    )


def save_reports(
    reports: Iterable[DailyReport], path: str | Path
) -> int:
    """Write reports as a multi-document YAML file; returns count."""
    documents = []
    count = 0
    for report in reports:
        documents.extend(report_to_documents(report))
        count += 1
    with open(Path(path), "w", encoding="utf-8") as handle:
        yaml.safe_dump_all(documents, handle, sort_keys=True)
    return count


def load_reports(path: str | Path) -> list[DailyReport]:
    """Read reports written by :func:`save_reports`."""
    with open(Path(path), encoding="utf-8") as handle:
        documents = [d for d in yaml.safe_load_all(handle) if d]
    # Group by (service, date): three documents per report.
    groups: dict[tuple, list[dict]] = {}
    for doc in documents:
        key = (doc["service"], doc["start-period"])
        groups.setdefault(key, []).append(doc)
    return [documents_to_report(group) for _, group in
            sorted(groups.items())]
