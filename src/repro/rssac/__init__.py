"""RSSAC-002 daily reporting simulation."""

from .serialize import (
    RSSAC_VERSION,
    documents_to_report,
    load_reports,
    report_to_documents,
    save_reports,
)
from .reports import (
    BASELINE_UNIQUE_SOURCES,
    DAY_SECONDS,
    FLIP_NEW_SOURCE_FRACTION,
    SIZE_BIN_WIDTH,
    DailyReport,
    DayAccumulator,
    build_baseline_report,
    build_daily_report,
    size_bin,
)

__all__ = [
    "BASELINE_UNIQUE_SOURCES",
    "DAY_SECONDS",
    "DailyReport",
    "DayAccumulator",
    "FLIP_NEW_SOURCE_FRACTION",
    "RSSAC_VERSION",
    "SIZE_BIN_WIDTH",
    "build_baseline_report",
    "build_daily_report",
    "documents_to_report",
    "load_reports",
    "report_to_documents",
    "save_reports",
    "size_bin",
]
