"""RSSAC-002 daily reports (paper section 2.4.2).

RSSAC-002 specifies operationally-relevant daily statistics per root
letter: query and response counts, query/response size histograms in
16-byte bins, and unique-source counts.  At event time only five
letters (A, H, J, K, L) published this data, and the reporting is
best-effort: under stress the measurement pipelines themselves shed
load, so most letters *under-measured* the events (section 3.1 infers
a 6x gap between directly observed traffic and the likely true size).

Modelled effects:

* ``rssac_capture_fraction`` -- share of accepted event traffic the
  letter's measurement pipeline managed to count;
* ``rssac_ip_capture_fraction`` -- share of traffic the (costlier)
  unique-source counter sampled;
* response-rate limiting -- suppresses ~60 % of responses to the
  event's highly duplicated queries (section 2.3);
* letter flips -- resolvers failing at attacked letters retry at
  others, raising both query counts and unique counts at unattacked
  letters (L-Root's 1.66x query rise, section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..attack.botnet import expected_unique_sources
from ..dns.rrl import suppression_fraction
from ..rootdns.letters import LetterSpec

#: RSSAC-002 size histogram bin width, bytes.
SIZE_BIN_WIDTH = 16

#: Seconds per reporting day.
DAY_SECONDS = 86_400.0

#: Resolvers that normally query a given letter in a day (drives the
#: baseline unique-source counts of Table 3: 2.8-5.4 M).
BASELINE_UNIQUE_SOURCES = 2.9e6

#: Fraction of retried (letter-flip) queries that come from resolvers
#: new to the receiving letter.
FLIP_NEW_SOURCE_FRACTION = 0.25

#: Typical DNS payload sizes for legitimate traffic.  Real root query
#: streams mix longer names and EDNS options, landing in the 48-63 B
#: bin -- distinct from the events' short fixed names (32-47 B on
#: Nov 30, 16-31 B on Dec 1), which is how §3.1 spots the attack.
BASELINE_QUERY_PAYLOAD = 55
BASELINE_RESPONSE_PAYLOAD = 615


def size_bin(payload_bytes: float) -> int:
    """Left edge of the 16-byte RSSAC-002 size bin for a payload."""
    if payload_bytes < 0:
        raise ValueError("payload size cannot be negative")
    return int(payload_bytes // SIZE_BIN_WIDTH) * SIZE_BIN_WIDTH


@dataclass(frozen=True, slots=True)
class DailyReport:
    """One letter-day of RSSAC-002 statistics."""

    letter: str
    date: str
    queries: float
    responses: float
    unique_sources: float
    query_size_hist: dict[int, float] = field(default_factory=dict)
    response_size_hist: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.queries < 0 or self.responses < 0:
            raise ValueError("counts cannot be negative")

    @property
    def mean_qps(self) -> float:
        """Mean query rate over the day."""
        return self.queries / DAY_SECONDS

    @property
    def mean_rps(self) -> float:
        """Mean response rate over the day."""
        return self.responses / DAY_SECONDS

    def dominant_query_bin(self) -> int | None:
        """The most-populated query size bin (attack identification:
        section 3.1 spots the events by unusually popular bins)."""
        if not self.query_size_hist:
            return None
        return max(self.query_size_hist, key=self.query_size_hist.get)


@dataclass(slots=True)
class DayAccumulator:
    """Per-letter traffic accumulated over one simulated day."""

    legit_queries: float = 0.0
    spill_queries: float = 0.0
    attack_accepted: float = 0.0
    attack_query_payload: int = 0
    attack_response_payload: int = 0

    def add_bin(
        self,
        legit_accepted: float,
        spill_accepted: float,
        attack_accepted: float,
        bin_seconds: float,
        attack_query_payload: int | None = None,
        attack_response_payload: int | None = None,
    ) -> None:
        """Accumulate one bin of accepted traffic (rates in q/s)."""
        self.legit_queries += legit_accepted * bin_seconds
        self.spill_queries += spill_accepted * bin_seconds
        self.attack_accepted += attack_accepted * bin_seconds
        if attack_query_payload is not None:
            self.attack_query_payload = attack_query_payload
        if attack_response_payload is not None:
            self.attack_response_payload = attack_response_payload

    def add_bins(
        self,
        legit_accepted: np.ndarray,
        spill_accepted: np.ndarray,
        attack_accepted: np.ndarray,
        bin_seconds: float,
        attack_query_payloads: np.ndarray | None = None,
        attack_response_payloads: np.ndarray | None = None,
    ) -> None:
        """Fold a contiguous run of bins, one :meth:`add_bin` each.

        The payload arrays use ``-1`` for "no attack payload this
        bin".  Accumulation stays a sequential per-bin ``+=`` so the
        floating-point fold order -- and therefore every counter --
        is bit-identical to per-bin calls.
        """
        for i in range(legit_accepted.shape[0]):
            self.legit_queries += float(legit_accepted[i]) * bin_seconds
            self.spill_queries += float(spill_accepted[i]) * bin_seconds
            self.attack_accepted += float(attack_accepted[i]) * bin_seconds
            if (
                attack_query_payloads is not None
                and attack_query_payloads[i] >= 0
            ):
                self.attack_query_payload = int(attack_query_payloads[i])
            if (
                attack_response_payloads is not None
                and attack_response_payloads[i] >= 0
            ):
                self.attack_response_payload = int(attack_response_payloads[i])


def build_daily_report(
    spec: LetterSpec,
    date: str,
    acc: DayAccumulator,
    duplicate_ratio: float,
    spoof_pool_size: int,
    rng: np.random.Generator | None = None,
) -> DailyReport:
    """Turn one day's accumulated traffic into an RSSAC-002 report."""
    noise = 1.0
    if rng is not None:
        noise = float(np.exp(rng.normal(0.0, 0.01)))

    captured_attack = acc.attack_accepted * spec.rssac_capture_fraction
    legit_total = (acc.legit_queries + acc.spill_queries) * noise
    queries = legit_total + captured_attack

    # Responses: legit answered in full; attack responses suppressed by
    # response-rate limiting on the duplicated fixed-name queries.
    suppressed = suppression_fraction(duplicate_ratio)
    responses = legit_total + captured_attack * (1.0 - suppressed)

    # Unique sources: regular resolvers, plus spoofed attack addresses
    # (sub-sampled by the unique-counting pipeline), plus resolvers new
    # to this letter arriving through letter flips.
    attack_counted = acc.attack_accepted * spec.rssac_ip_capture_fraction
    unique = (
        BASELINE_UNIQUE_SOURCES * (spec.baseline_qps / 40_000.0) * noise
        + expected_unique_sources(attack_counted, spoof_pool_size)
        + acc.spill_queries * FLIP_NEW_SOURCE_FRACTION
    )

    query_hist = {size_bin(BASELINE_QUERY_PAYLOAD): legit_total}
    response_hist = {size_bin(BASELINE_RESPONSE_PAYLOAD): legit_total}
    if captured_attack > 0:
        qbin = size_bin(acc.attack_query_payload)
        rbin = size_bin(acc.attack_response_payload)
        query_hist[qbin] = query_hist.get(qbin, 0.0) + captured_attack
        response_hist[rbin] = response_hist.get(rbin, 0.0) + (
            captured_attack * (1.0 - suppressed)
        )

    return DailyReport(
        letter=spec.letter,
        date=date,
        queries=queries,
        responses=responses,
        unique_sources=unique,
        query_size_hist=query_hist,
        response_size_hist=response_hist,
    )


def build_baseline_report(
    spec: LetterSpec, date: str, rng: np.random.Generator
) -> DailyReport:
    """A quiet-day report (the 7-day pre-event baseline of Table 3)."""
    acc = DayAccumulator()
    acc.legit_queries = spec.baseline_qps * DAY_SECONDS
    return build_daily_report(
        spec,
        date,
        acc,
        duplicate_ratio=0.0,
        spoof_pool_size=2**31,
        rng=rng,
    )
