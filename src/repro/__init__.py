"""Reproduction of "Anycast vs. DDoS: Evaluating the November 2015
Root DNS Event" (IMC 2016).

The package simulates every substrate the paper's measurement study
depends on -- BGP anycast routing, the 13 root letter deployments, the
botnet events of 2015-11-30/12-01, RIPE-Atlas-style probing, RSSAC-002
reporting, and BGPmon collectors -- and reimplements the paper's full
analysis pipeline over the resulting data.

Quick start::

    from repro import ScenarioConfig, simulate
    from repro.core import reachability_figure

    result = simulate(ScenarioConfig(seed=42, n_stubs=400, n_vps=800))
    print(reachability_figure(result.atlas).render())
"""

from .faults import (
    BgpSessionReset,
    ControllerOutage,
    DataQuality,
    FaultPlan,
    PeerChurn,
    QualityFlag,
    RssacOutage,
    SiteFailure,
    VpDropout,
)
from .scenario import (
    ScenarioConfig,
    ScenarioResult,
    june2016_config,
    nov2015_config,
    quiet_config,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "BgpSessionReset",
    "ControllerOutage",
    "DataQuality",
    "FaultPlan",
    "PeerChurn",
    "QualityFlag",
    "RssacOutage",
    "ScenarioConfig",
    "ScenarioResult",
    "SiteFailure",
    "VpDropout",
    "__version__",
    "june2016_config",
    "nov2015_config",
    "quiet_config",
    "simulate",
]
